"""The asyncio client: many trackers over one service connection.

:class:`ServiceClient` owns the socket and one reader task that demuxes
incoming records by their session-id prefix into per-session queues.
:class:`AsyncTracker` is the per-session facade over one of those queues
— the tracker control interface of the paper (``start`` / ``resume`` /
``break_before_line`` / ``get_global_variables`` ...) with every control
call a coroutine, so a grading script can drive dozens of inferiors
concurrently from one thread::

    client = await ServiceClient.connect(host, port)
    a = await client.open_tracker("submission_a.py")
    b = await client.open_tracker("submission_b.py")
    await asyncio.gather(a.start(), b.start())

Deadline semantics mirror the blocking client
(:class:`~repro.mi.client.MIClient`): a run-control call with a
``timeout`` first *interrupts* the inferior when the deadline passes (the
service answers with ``*stopped,reason="interrupted"``, so the call still
returns a pause) and raises
:class:`~repro.core.errors.ControlTimeout` only when the interrupt itself
goes unanswered for the grace period.

**Reconnection.** A dropped TCP connection no longer kills the trackers
riding on it: the client reconnects with bounded backoff (``reconnect``
policy), re-authenticates, and re-attaches every open session via
``-session-attach`` — the service has been holding the sessions detached
(for its ``detach_grace``) and flushes any records produced in the gap,
including the answer of a command that was in flight when the connection
died. A call that was awaiting a reply simply keeps awaiting; the caller
never notices beyond the delay. Only when every reconnect attempt fails
(or the service refuses the attach) do pending calls fail with the usual
typed :class:`~repro.core.errors.ServerCrashError`.

Service-level rejections arrive as typed errors —
:class:`~repro.service.manager.ServiceDraining` (with ``retry_after``),
:class:`~repro.service.manager.SessionOverloaded`,
:class:`~repro.service.manager.ProgramQuarantined`,
:class:`~repro.service.manager.ServiceBusy`,
:class:`~repro.service.manager.ServiceAuthError` — so callers can
distinguish "back off and retry" from "give up".
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import (
    ControlTimeout,
    ProtocolError,
    ServerCrashError,
    TrackerError,
)
from repro.core.state import Frame, Variable, frame_from_dict, variable_from_dict
from repro.core.supervision import BackoffPolicy
from repro.mi import protocol
from repro.mi.transport import _ASYNC_LINE_LIMIT, SPAWN_TIMEOUT
from repro.service.manager import (
    SESSION_RESURRECTED,
    ProgramQuarantined,
    ServiceAuthError,
    ServiceBusy,
    ServiceDraining,
    SessionOverloaded,
)
from repro.subproc.limits import ResourceLimits

#: Grace period after an interrupt before ``ControlTimeout`` (seconds).
INTERRUPT_GRACE = 5.0

#: Default reconnect schedule after a TCP drop (bounded backoff).
DEFAULT_RECONNECT = BackoffPolicy(
    max_restarts=5, initial_delay=0.05, max_delay=1.0
)

#: Sentinel queued to every session when the connection drops for good.
_CLOSED = object()


def _client_ssl_context(tls_ca: Optional[str]) -> Any:
    """Client-side TLS context, verifying against ``tls_ca`` when given.

    With a CA bundle (typically the server's own self-signed certificate)
    the chain is verified against exactly that file; hostname checking is
    kept off because self-signed deployment certificates rarely carry the
    right SAN — the chain pin is the trust anchor. Without ``tls_ca`` the
    system trust store applies in full, hostname check included.
    """
    import ssl

    if tls_ca:
        context = ssl.create_default_context(cafile=tls_ca)
        context.check_hostname = False
        return context
    return ssl.create_default_context()


def _typed_error(payload: Any) -> TrackerError:
    """Map a service ``^error`` message onto the typed error hierarchy."""
    message = str(payload)
    retry_after = protocol.parse_retry_after(message)
    if "draining" in message:
        return ServiceDraining(message, retry_after=retry_after)
    if "overloaded" in message:
        return SessionOverloaded(message, retry_after=retry_after)
    if "quarantined" in message:
        return ProgramQuarantined(message)
    if "at capacity" in message:
        return ServiceBusy(message)
    if (
        "authentication required" in message
        or "invalid service token" in message
    ):
        return ServiceAuthError(message)
    return TrackerError(message)


class ServiceClient:
    """One connection to a :class:`~repro.service.server.TrackerService`."""

    def __init__(self) -> None:
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        self._token: Optional[str] = None
        self._ssl: Any = None
        self._reconnect_policy: Optional[BackoffPolicy] = DEFAULT_RECONNECT
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional["asyncio.Task[None]"] = None
        self._queues: Dict[str, "asyncio.Queue"] = {}
        self._control: "asyncio.Queue" = asyncio.Queue()
        #: serializes id-less request/reply (opens, stats) — their replies
        #: are only attributable by arrival order
        self._control_lock = asyncio.Lock()
        #: set while a live, authenticated connection is up; cleared
        #: during reconnection so sends park instead of failing
        self._ready = asyncio.Event()
        #: open trackers by session id, for re-attach after reconnect
        self._trackers: Dict[str, "AsyncTracker"] = {}
        #: connections established over this client's lifetime (1 = the
        #: original; each successful reconnect adds one)
        self.connections = 0
        self._closed = False

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        token: Optional[str] = None,
        tls: bool = False,
        tls_ca: Optional[str] = None,
        reconnect: Optional[BackoffPolicy] = DEFAULT_RECONNECT,
    ) -> "ServiceClient":
        """Connect, verify the greeting, authenticate if needed.

        ``reconnect`` bounds the transparent-reconnect backoff after a
        TCP drop; ``None`` disables reconnection (a drop fails all
        pending calls immediately, the pre-reconnect behavior).

        ``tls`` wraps the connection in TLS; ``tls_ca`` pins the CA
        bundle (or self-signed server certificate) used for verification
        — without it the system store decides, which rejects the
        self-signed certificates ``repro serve --tls-cert`` typically
        runs with.
        """
        client = cls()
        client._host = host
        client._port = port
        client._token = token
        if tls or tls_ca:
            client._ssl = _client_ssl_context(tls_ca)
        client._reconnect_policy = reconnect
        await client._establish()
        client._ready.set()
        client._reader_task = asyncio.ensure_future(client._run())
        return client

    # ------------------------------------------------------------------
    # Connection establishment and supervision
    # ------------------------------------------------------------------

    async def _establish(self) -> None:
        """Open a socket, consume the greeting, authenticate.

        All reads are direct (the pump is not running), so greeting and
        auth replies cannot be misrouted into session queues.
        """
        reader, writer = await asyncio.open_connection(
            self._host, self._port, limit=_ASYNC_LINE_LIMIT, ssl=self._ssl
        )
        try:
            greeting = await self._read_direct(reader, SPAWN_TIMEOUT)
            if greeting.kind != "done" or "service" not in (
                greeting.payload or {}
            ):
                raise ProtocolError(
                    f"unexpected service greeting: {greeting.payload!r}"
                )
            if self._token is not None:
                writer.write(
                    (
                        protocol.format_command(
                            "-service-auth", [self._token]
                        )
                        + "\n"
                    ).encode("utf-8")
                )
                await writer.drain()
                reply = await self._read_direct(reader, SPAWN_TIMEOUT)
                if reply.kind == "error":
                    raise ServiceAuthError(str(reply.payload))
        except BaseException:
            writer.close()
            raise
        self._reader = reader
        self._writer = writer
        self.connections += 1

    @staticmethod
    async def _read_direct(
        reader: asyncio.StreamReader, timeout: float
    ) -> protocol.Record:
        """One parsed record straight off ``reader`` (no demux running)."""
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise asyncio.TimeoutError("service setup went unanswered")
            raw = await asyncio.wait_for(reader.readline(), remaining)
            if not raw:
                raise ServerCrashError(
                    "the tracker service closed the connection during "
                    "setup",
                    exit_code=None,
                    stderr_tail=[],
                )
            line = raw.decode("utf-8", "replace").strip()
            if not line:
                continue
            try:
                return protocol.parse_record(line)
            except ProtocolError:
                continue

    async def _run(self) -> None:
        """The supervisor: pump records, reconnect on drop, finalize."""
        while True:
            await self._read_loop()
            if self._closed:
                break
            # Connection lost: fail control waiters fast (their replies
            # are unattributable across a reconnect), keep session
            # waiters parked (the service holds their sessions and will
            # flush the backlog after re-attach).
            self._ready.clear()
            stale_control = self._control
            self._control = asyncio.Queue()
            stale_control.put_nowait(_CLOSED)
            if self._reconnect_policy is None:
                break
            if not await self._reconnect():
                break
        self._finalize()

    async def _read_loop(self) -> None:
        reader = self._reader
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", "replace").rstrip("\n")
                if not line.strip():
                    continue
                try:
                    record = protocol.parse_record(line)
                except ProtocolError:
                    continue  # tolerate noise on the shared pipe
                self._demux(record)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    def _demux(self, record: protocol.Record) -> None:
        if record.session is None:
            self._control.put_nowait(record)
        else:
            self._queue_for(record.session).put_nowait(record)

    async def _reconnect(self) -> bool:
        """Bounded-backoff reconnect + re-attach; whether it succeeded."""
        delays = [0.0] + list(self._reconnect_policy.delays())
        for delay in delays:
            if delay:
                await asyncio.sleep(delay)
            if self._closed:
                return False
            try:
                await self._establish()
                await self._reattach()
            except ServiceAuthError:
                return False  # the token is wrong; retrying won't help
            except (
                OSError,
                TrackerError,
                asyncio.TimeoutError,
            ):
                if self._writer is not None:
                    self._writer.close()
                    self._writer = None
                continue
            self._ready.set()
            return True
        return False

    async def _reattach(self) -> None:
        """Re-adopt every open session on the fresh connection.

        Runs before the pump restarts, reading directly: attach replies
        are id-less, backlog records are session-tagged and demuxed into
        their queues (where the in-flight waiters from before the drop
        are still listening).
        """
        for sid in list(self._trackers):
            tracker = self._trackers.get(sid)
            if tracker is None or tracker._closed:
                continue
            self._writer.write(
                (
                    protocol.format_command("-session-attach", [sid])
                    + "\n"
                ).encode("utf-8")
            )
            await self._writer.drain()
            while True:
                record = await self._read_direct(
                    self._reader, SPAWN_TIMEOUT
                )
                if record.session is None and record.kind in (
                    "done",
                    "error",
                ):
                    break
                self._demux(record)
            if record.kind == "error":
                message = str(record.payload)
                if "another connection" in message:
                    # The service has not yet noticed the old connection
                    # died; retry the whole attempt after a backoff step.
                    raise TrackerError(message)
                # The session is gone (reaped, drained, or closed):
                # fail its waiters, keep the rest of the reconnect.
                self._trackers.pop(sid, None)
                self._queue_for(sid).put_nowait(_CLOSED)
                continue
            payload = record.payload or {}
            tracker._note_attach(payload)

    def _finalize(self) -> None:
        self._closed = True
        self._control.put_nowait(_CLOSED)
        for queue in self._queues.values():
            queue.put_nowait(_CLOSED)
        self._ready.set()  # unblock parked senders; they see _closed

    # ------------------------------------------------------------------
    # Demux plumbing
    # ------------------------------------------------------------------

    def _queue_for(self, session_id: str) -> "asyncio.Queue":
        queue = self._queues.get(session_id)
        if queue is None:
            queue = self._queues[session_id] = asyncio.Queue()
        return queue

    async def _next(
        self, queue: "asyncio.Queue", timeout: Optional[float]
    ) -> Optional[protocol.Record]:
        """Next record from ``queue``; ``None`` when ``timeout`` expires."""
        try:
            if timeout is None:
                record = await queue.get()
            else:
                record = await asyncio.wait_for(queue.get(), timeout)
        except asyncio.TimeoutError:
            return None
        if record is _CLOSED:
            queue.put_nowait(_CLOSED)  # keep later reads failing fast
            raise ServerCrashError(
                "the tracker service connection closed",
                exit_code=None,
                stderr_tail=[],
            )
        return record

    # ------------------------------------------------------------------
    # The control channel (id-less request/reply)
    # ------------------------------------------------------------------

    async def _send_line(self, line: str) -> None:
        if not self._ready.is_set() and not self._closed:
            await self._ready.wait()  # park while a reconnect is running
        if self._closed or self._writer is None:
            raise ServerCrashError(
                "the tracker service connection closed",
                exit_code=None,
                stderr_tail=[],
            )
        try:
            self._writer.write((line + "\n").encode("utf-8"))
            await self._writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError) as error:
            raise ServerCrashError(
                f"the tracker service connection dropped mid-send "
                f"({error})",
                exit_code=None,
                stderr_tail=[],
            ) from error

    async def _control_request(
        self, line: Optional[str], timeout: float = SPAWN_TIMEOUT
    ) -> Any:
        """Send an id-less command (or just await a reply); its payload."""
        async with self._control_lock:
            # Capture the queue: a reconnect swaps self._control, and a
            # waiter must fail fast on its own (pre-drop) queue rather
            # than silently migrate to the new connection's replies.
            queue = self._control
            if line is not None:
                await self._send_line(line)
                if queue is not self._control:
                    queue = self._control  # send parked across a swap
            while True:
                record = await self._next(queue, timeout)
                if record is None:
                    raise ControlTimeout(
                        "the tracker service did not answer within "
                        f"{timeout:.2f}s"
                    )
                if record.kind == "done":
                    return record.payload
                if record.kind == "error":
                    raise _typed_error(record.payload)
                # stream/notify noise on the control channel: skip

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    async def open_tracker(
        self,
        program: str,
        args: Optional[List[str]] = None,
        *,
        limits: Optional[ResourceLimits] = None,
        timeout: float = SPAWN_TIMEOUT,
    ) -> "AsyncTracker":
        """Open a session and wrap it in an :class:`AsyncTracker`."""
        options: Dict[str, Any] = {}
        if limits is not None:
            if limits.address_space is not None:
                options["as"] = limits.address_space
            if limits.cpu_seconds is not None:
                options["cpu"] = limits.cpu_seconds
            if limits.file_size is not None:
                options["fsize"] = limits.file_size
        payload = await self._control_request(
            protocol.format_command(
                "-session-open", [program] + list(args or []), options
            ),
            timeout=timeout,
        )
        session_id = payload["session"]
        tracker = AsyncTracker(
            self, session_id, self._queue_for(session_id)
        )
        tracker._pid = payload.get("pid")
        tracker._epoch = payload.get("epoch", 1)
        self._trackers[session_id] = tracker
        return tracker

    async def service_stats(self) -> Dict[str, Any]:
        return await self._control_request(
            protocol.format_command("-service-stats")
        )

    async def close(self) -> None:
        """Drop the connection (the service closes or detaches sessions)."""
        self._closed = True
        self._ready.set()
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        self._finalize()

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


class AsyncTracker:
    """The paper's tracker control interface, as coroutines, per session.

    Obtained from :meth:`ServiceClient.open_tracker`; all methods must be
    awaited on the same event loop as the client.
    """

    def __init__(
        self,
        client: ServiceClient,
        session_id: str,
        queue: "asyncio.Queue",
    ):
        self.client = client
        self.session_id = session_id
        self._queue = queue
        #: everything the inferior printed, in arrival order
        self.console: List[str] = []
        #: async notifications (heap events etc.), in arrival order
        self.notifications: List[protocol.Record] = []
        self._exit_code: Optional[int] = None
        self._last_stop: Optional[Dict[str, Any]] = None
        self._pid: Optional[int] = None
        self._epoch: int = 1
        self._degraded: bool = False
        self._resurrections: int = 0
        self._closed = False

    # -- crash-only introspection ---------------------------------------

    @property
    def pid(self) -> Optional[int]:
        """The child server's pid (changes across resurrections)."""
        return self._pid

    @property
    def epoch(self) -> int:
        """The session epoch: 1 + the number of resurrections seen."""
        return self._epoch

    @property
    def degraded(self) -> bool:
        """The last resurrection lost the execution position."""
        return self._degraded

    @property
    def resurrections(self) -> int:
        """``=session-resurrected`` notifications observed so far."""
        return self._resurrections

    def _note_attach(self, payload: Dict[str, Any]) -> None:
        self._epoch = payload.get("epoch", self._epoch)
        self._degraded = payload.get("degraded", self._degraded)
        self._pid = payload.get("pid", self._pid)

    # -- record plumbing -------------------------------------------------

    async def _send(
        self,
        name: str,
        args: Optional[List[str]] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> None:
        await self.client._send_line(
            protocol.format_command(
                name, args, options, session=self.session_id
            )
        )

    def _absorb(self, record: protocol.Record) -> None:
        if record.kind == "stream":
            self.console.append(record.payload)
        elif record.kind == "notify":
            if record.notify_name == SESSION_RESURRECTED:
                payload = record.payload or {}
                self._resurrections += 1
                self._note_attach(payload)
            self.notifications.append(record)

    async def execute(
        self,
        name: str,
        args: Optional[List[str]] = None,
        options: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = SPAWN_TIMEOUT,
    ) -> Any:
        """One synchronous command round trip; the ``^done`` payload."""
        await self._send(name, args, options)
        while True:
            record = await self.client._next(self._queue, timeout)
            if record is None:
                raise ControlTimeout(
                    f"{name} went unanswered for {timeout:.2f}s"
                )
            if record.kind == "done":
                return record.payload
            if record.kind == "error":
                raise _typed_error(record.payload)
            self._absorb(record)

    async def _run_control(
        self,
        name: str,
        timeout: Optional[float] = None,
        grace: float = INTERRUPT_GRACE,
    ) -> Dict[str, Any]:
        """An exec command: block (asynchronously) until ``*stopped``."""
        await self._send(name)
        loop = asyncio.get_event_loop()
        deadline = None if timeout is None else loop.time() + timeout
        interrupted_at: Optional[float] = None
        while True:
            if interrupted_at is not None:
                slice_timeout: Optional[float] = (
                    interrupted_at + grace - loop.time()
                )
                if slice_timeout <= 0:
                    raise ControlTimeout(
                        f"the inferior did not pause within {timeout}s and "
                        "the interrupt went unanswered for the grace period"
                    )
            elif deadline is not None:
                slice_timeout = max(deadline - loop.time(), 0.001)
            else:
                slice_timeout = None
            record = await self.client._next(self._queue, slice_timeout)
            if record is None:
                if interrupted_at is None:
                    interrupted_at = loop.time()
                    await self.interrupt()
                continue
            if record.kind == "running":
                pass  # the dialogue opener; *stopped follows eventually
            elif record.kind == "stopped":
                payload = record.payload or {}
                self._last_stop = payload
                if payload.get("reason") == "exited":
                    self._exit_code = payload.get("exitcode")
                return payload
            elif record.kind == "error":
                raise _typed_error(record.payload)
            elif record.kind == "done":
                continue  # stale interrupt ack
            else:
                self._absorb(record)

    async def interrupt(self) -> None:
        """Fire-and-forget: pause the running inferior."""
        await self._send("-exec-interrupt")

    # -- run control -----------------------------------------------------

    async def start(
        self, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        return await self._run_control("-exec-run", timeout)

    async def resume(
        self, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        return await self._run_control("-exec-continue", timeout)

    async def step(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return await self._run_control("-exec-step", timeout)

    async def next(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return await self._run_control("-exec-next", timeout)

    async def finish(
        self, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        return await self._run_control("-exec-finish", timeout)

    # -- control points --------------------------------------------------

    async def break_before_line(
        self,
        line: int,
        filename: Optional[str] = None,
        maxdepth: Optional[int] = None,
    ) -> int:
        location = f"{filename}:{line}" if filename else str(line)
        return await self._break_insert(location, maxdepth)

    async def break_before_func(
        self, name: str, maxdepth: Optional[int] = None
    ) -> int:
        return await self._break_insert(name, maxdepth)

    async def _break_insert(
        self, location: str, maxdepth: Optional[int]
    ) -> int:
        options = {} if maxdepth is None else {"maxdepth": maxdepth}
        payload = await self.execute("-break-insert", [location], options)
        return payload["number"]

    async def watch(
        self, name: str, maxdepth: Optional[int] = None
    ) -> int:
        options = {} if maxdepth is None else {"maxdepth": maxdepth}
        payload = await self.execute("-break-watch", [name], options)
        return payload["number"]

    async def track_function(
        self, name: str, maxdepth: Optional[int] = None
    ) -> int:
        options = {} if maxdepth is None else {"maxdepth": maxdepth}
        payload = await self.execute("-track-function", [name], options)
        return payload["number"]

    async def delete_breakpoint(self, number: int) -> None:
        await self.execute("-break-delete", [str(number)])

    # -- inspection ------------------------------------------------------

    async def get_position(self) -> Tuple[str, Optional[int]]:
        payload = await self.execute("-inferior-position")
        return payload["file"], payload["line"]

    async def get_current_frame(self) -> Frame:
        return frame_from_dict(await self.execute("-stack-list-frames"))

    async def get_global_variables(self) -> Dict[str, Variable]:
        payload = await self.execute("-data-list-globals")
        return {
            name: variable_from_dict(data)
            for name, data in payload.items()
        }

    def get_output(self) -> str:
        """Everything the inferior printed so far (already received)."""
        return "".join(self.console)

    def get_exit_code(self) -> Optional[int]:
        """The inferior's exit code, once a stop reported it."""
        return self._exit_code

    @property
    def last_stop(self) -> Optional[Dict[str, Any]]:
        """The most recent ``*stopped`` payload."""
        return self._last_stop

    # -- teardown --------------------------------------------------------

    async def close(self) -> None:
        """End the session (idempotent); its child may be pool-reused."""
        if self._closed:
            return
        self._closed = True
        self.client._trackers.pop(self.session_id, None)
        try:
            await self.execute("-session-close")
        except (TrackerError, ServerCrashError, ControlTimeout):
            pass

    async def __aenter__(self) -> "AsyncTracker":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
