"""The asyncio client: many trackers over one service connection.

:class:`ServiceClient` owns the socket and one reader task that demuxes
incoming records by their session-id prefix into per-session queues.
:class:`AsyncTracker` is the per-session facade over one of those queues
— the tracker control interface of the paper (``start`` / ``resume`` /
``break_before_line`` / ``get_global_variables`` ...) with every control
call a coroutine, so a grading script can drive dozens of inferiors
concurrently from one thread::

    client = await ServiceClient.connect(host, port)
    a = await client.open_tracker("submission_a.py")
    b = await client.open_tracker("submission_b.py")
    await asyncio.gather(a.start(), b.start())

Deadline semantics mirror the blocking client
(:class:`~repro.mi.client.MIClient`): a run-control call with a
``timeout`` first *interrupts* the inferior when the deadline passes (the
service answers with ``*stopped,reason="interrupted"``, so the call still
returns a pause) and raises
:class:`~repro.core.errors.ControlTimeout` only when the interrupt itself
goes unanswered for the grace period.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import (
    ControlTimeout,
    ProtocolError,
    ServerCrashError,
    TrackerError,
)
from repro.core.state import Frame, Variable, frame_from_dict, variable_from_dict
from repro.mi import protocol
from repro.mi.transport import _ASYNC_LINE_LIMIT, SPAWN_TIMEOUT
from repro.subproc.limits import ResourceLimits

#: Grace period after an interrupt before ``ControlTimeout`` (seconds).
INTERRUPT_GRACE = 5.0

#: Sentinel queued to every session when the connection drops.
_CLOSED = object()


class ServiceClient:
    """One connection to a :class:`~repro.service.server.TrackerService`."""

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional["asyncio.Task[None]"] = None
        self._queues: Dict[str, "asyncio.Queue"] = {}
        self._control: "asyncio.Queue" = asyncio.Queue()
        #: serializes id-less request/reply (opens, stats) — their replies
        #: are only attributable by arrival order
        self._control_lock = asyncio.Lock()
        self._closed = False

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(
            host, port, limit=_ASYNC_LINE_LIMIT
        )
        client._reader_task = asyncio.ensure_future(client._pump())
        greeting = await client._control_request(None, timeout=SPAWN_TIMEOUT)
        if "service" not in (greeting or {}):
            await client.close()
            raise ProtocolError(f"unexpected service greeting: {greeting!r}")
        return client

    # ------------------------------------------------------------------
    # Demux
    # ------------------------------------------------------------------

    def _queue_for(self, session_id: str) -> "asyncio.Queue":
        queue = self._queues.get(session_id)
        if queue is None:
            queue = self._queues[session_id] = asyncio.Queue()
        return queue

    async def _pump(self) -> None:
        try:
            while True:
                raw = await self._reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", "replace").rstrip("\n")
                if not line.strip():
                    continue
                try:
                    record = protocol.parse_record(line)
                except ProtocolError:
                    continue  # tolerate noise on the shared pipe
                if record.session is None:
                    self._control.put_nowait(record)
                else:
                    self._queue_for(record.session).put_nowait(record)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            self._closed = True
            self._control.put_nowait(_CLOSED)
            for queue in self._queues.values():
                queue.put_nowait(_CLOSED)

    async def _next(
        self, queue: "asyncio.Queue", timeout: Optional[float]
    ) -> Optional[protocol.Record]:
        """Next record from ``queue``; ``None`` when ``timeout`` expires."""
        try:
            if timeout is None:
                record = await queue.get()
            else:
                record = await asyncio.wait_for(queue.get(), timeout)
        except asyncio.TimeoutError:
            return None
        if record is _CLOSED:
            queue.put_nowait(_CLOSED)  # keep later reads failing fast
            raise ServerCrashError(
                "the tracker service connection closed",
                exit_code=None,
                stderr_tail=[],
            )
        return record

    # ------------------------------------------------------------------
    # The control channel (id-less request/reply)
    # ------------------------------------------------------------------

    async def _send_line(self, line: str) -> None:
        if self._closed or self._writer is None:
            raise ServerCrashError(
                "the tracker service connection closed",
                exit_code=None,
                stderr_tail=[],
            )
        self._writer.write((line + "\n").encode("utf-8"))
        await self._writer.drain()

    async def _control_request(
        self, line: Optional[str], timeout: float = SPAWN_TIMEOUT
    ) -> Any:
        """Send an id-less command (or just await a reply); its payload."""
        async with self._control_lock:
            if line is not None:
                await self._send_line(line)
            while True:
                record = await self._next(self._control, timeout)
                if record is None:
                    raise ControlTimeout(
                        "the tracker service did not answer within "
                        f"{timeout:.2f}s"
                    )
                if record.kind == "done":
                    return record.payload
                if record.kind == "error":
                    raise TrackerError(str(record.payload))
                # stream/notify noise on the control channel: skip

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    async def open_tracker(
        self,
        program: str,
        args: Optional[List[str]] = None,
        *,
        limits: Optional[ResourceLimits] = None,
        timeout: float = SPAWN_TIMEOUT,
    ) -> "AsyncTracker":
        """Open a session and wrap it in an :class:`AsyncTracker`."""
        options: Dict[str, Any] = {}
        if limits is not None:
            if limits.address_space is not None:
                options["as"] = limits.address_space
            if limits.cpu_seconds is not None:
                options["cpu"] = limits.cpu_seconds
            if limits.file_size is not None:
                options["fsize"] = limits.file_size
        payload = await self._control_request(
            protocol.format_command(
                "-session-open", [program] + list(args or []), options
            ),
            timeout=timeout,
        )
        session_id = payload["session"]
        return AsyncTracker(self, session_id, self._queue_for(session_id))

    async def service_stats(self) -> Dict[str, Any]:
        return await self._control_request(
            protocol.format_command("-service-stats")
        )

    async def close(self) -> None:
        """Drop the connection (the service closes our sessions)."""
        self._closed = True
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


class AsyncTracker:
    """The paper's tracker control interface, as coroutines, per session.

    Obtained from :meth:`ServiceClient.open_tracker`; all methods must be
    awaited on the same event loop as the client.
    """

    def __init__(
        self,
        client: ServiceClient,
        session_id: str,
        queue: "asyncio.Queue",
    ):
        self.client = client
        self.session_id = session_id
        self._queue = queue
        #: everything the inferior printed, in arrival order
        self.console: List[str] = []
        #: async notifications (heap events etc.), in arrival order
        self.notifications: List[protocol.Record] = []
        self._exit_code: Optional[int] = None
        self._last_stop: Optional[Dict[str, Any]] = None
        self._closed = False

    # -- record plumbing -------------------------------------------------

    async def _send(
        self,
        name: str,
        args: Optional[List[str]] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> None:
        await self.client._send_line(
            protocol.format_command(
                name, args, options, session=self.session_id
            )
        )

    def _absorb(self, record: protocol.Record) -> None:
        if record.kind == "stream":
            self.console.append(record.payload)
        elif record.kind == "notify":
            self.notifications.append(record)

    async def execute(
        self,
        name: str,
        args: Optional[List[str]] = None,
        options: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = SPAWN_TIMEOUT,
    ) -> Any:
        """One synchronous command round trip; the ``^done`` payload."""
        await self._send(name, args, options)
        while True:
            record = await self.client._next(self._queue, timeout)
            if record is None:
                raise ControlTimeout(
                    f"{name} went unanswered for {timeout:.2f}s"
                )
            if record.kind == "done":
                return record.payload
            if record.kind == "error":
                raise TrackerError(str(record.payload))
            self._absorb(record)

    async def _run_control(
        self,
        name: str,
        timeout: Optional[float] = None,
        grace: float = INTERRUPT_GRACE,
    ) -> Dict[str, Any]:
        """An exec command: block (asynchronously) until ``*stopped``."""
        await self._send(name)
        loop = asyncio.get_event_loop()
        deadline = None if timeout is None else loop.time() + timeout
        interrupted_at: Optional[float] = None
        while True:
            if interrupted_at is not None:
                slice_timeout: Optional[float] = (
                    interrupted_at + grace - loop.time()
                )
                if slice_timeout <= 0:
                    raise ControlTimeout(
                        f"the inferior did not pause within {timeout}s and "
                        "the interrupt went unanswered for the grace period"
                    )
            elif deadline is not None:
                slice_timeout = max(deadline - loop.time(), 0.001)
            else:
                slice_timeout = None
            record = await self.client._next(self._queue, slice_timeout)
            if record is None:
                if interrupted_at is None:
                    interrupted_at = loop.time()
                    await self.interrupt()
                continue
            if record.kind == "running":
                pass  # the dialogue opener; *stopped follows eventually
            elif record.kind == "stopped":
                payload = record.payload or {}
                self._last_stop = payload
                if payload.get("reason") == "exited":
                    self._exit_code = payload.get("exitcode")
                return payload
            elif record.kind == "error":
                raise TrackerError(str(record.payload))
            elif record.kind == "done":
                continue  # stale interrupt ack
            else:
                self._absorb(record)

    async def interrupt(self) -> None:
        """Fire-and-forget: pause the running inferior."""
        await self._send("-exec-interrupt")

    # -- run control -----------------------------------------------------

    async def start(
        self, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        return await self._run_control("-exec-run", timeout)

    async def resume(
        self, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        return await self._run_control("-exec-continue", timeout)

    async def step(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return await self._run_control("-exec-step", timeout)

    async def next(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return await self._run_control("-exec-next", timeout)

    async def finish(
        self, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        return await self._run_control("-exec-finish", timeout)

    # -- control points --------------------------------------------------

    async def break_before_line(
        self,
        line: int,
        filename: Optional[str] = None,
        maxdepth: Optional[int] = None,
    ) -> int:
        location = f"{filename}:{line}" if filename else str(line)
        return await self._break_insert(location, maxdepth)

    async def break_before_func(
        self, name: str, maxdepth: Optional[int] = None
    ) -> int:
        return await self._break_insert(name, maxdepth)

    async def _break_insert(
        self, location: str, maxdepth: Optional[int]
    ) -> int:
        options = {} if maxdepth is None else {"maxdepth": maxdepth}
        payload = await self.execute("-break-insert", [location], options)
        return payload["number"]

    async def watch(
        self, name: str, maxdepth: Optional[int] = None
    ) -> int:
        options = {} if maxdepth is None else {"maxdepth": maxdepth}
        payload = await self.execute("-break-watch", [name], options)
        return payload["number"]

    async def track_function(
        self, name: str, maxdepth: Optional[int] = None
    ) -> int:
        options = {} if maxdepth is None else {"maxdepth": maxdepth}
        payload = await self.execute("-track-function", [name], options)
        return payload["number"]

    async def delete_breakpoint(self, number: int) -> None:
        await self.execute("-break-delete", [str(number)])

    # -- inspection ------------------------------------------------------

    async def get_position(self) -> Tuple[str, Optional[int]]:
        payload = await self.execute("-inferior-position")
        return payload["file"], payload["line"]

    async def get_current_frame(self) -> Frame:
        return frame_from_dict(await self.execute("-stack-list-frames"))

    async def get_global_variables(self) -> Dict[str, Variable]:
        payload = await self.execute("-data-list-globals")
        return {
            name: variable_from_dict(data)
            for name, data in payload.items()
        }

    def get_output(self) -> str:
        """Everything the inferior printed so far (already received)."""
        return "".join(self.console)

    def get_exit_code(self) -> Optional[int]:
        """The inferior's exit code, once a stop reported it."""
        return self._exit_code

    @property
    def last_stop(self) -> Optional[Dict[str, Any]]:
        """The most recent ``*stopped`` payload."""
        return self._last_stop

    # -- teardown --------------------------------------------------------

    async def close(self) -> None:
        """End the session (idempotent); its child may be pool-reused."""
        if self._closed:
            return
        self._closed = True
        try:
            await self.execute("-session-close")
        except (TrackerError, ServerCrashError, ControlTimeout):
            pass

    async def __aenter__(self) -> "AsyncTracker":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
