"""Pause reasons: why a control call returned.

Control-interface functions (``start``, ``resume``, ``next``, ``step``)
return only when the inferior is paused or terminated. The tracker records
*why* it paused in :attr:`Tracker.pause_reason`, which tools dispatch on —
e.g. the recursive-call visualizer of the paper (Listing 6) distinguishes
``CALL`` from ``RETURN`` events of a tracked function.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional


class PauseReasonType(enum.Enum):
    """The five pause causes enumerated in Section II-B1 of the paper."""

    #: A watched variable has been modified.
    WATCH = "watch"
    #: A tracked function has been entered.
    CALL = "call"
    #: A tracked function is about to return.
    RETURN = "return"
    #: A line or function-entry breakpoint has been hit.
    BREAKPOINT = "breakpoint"
    #: The end of a single-stepping command (start/next/step) was reached.
    STEP = "step"
    #: The inferior terminated (exit code available).
    EXIT = "exit"
    #: The supervisor interrupted the inferior (control-call deadline).
    INTERRUPT = "interrupt"
    #: A control-call deadline expired and the stall detector found every
    #: inferior thread blocked on synchronization primitives — a probable
    #: deadlock. ``details`` carries the lock-wait graph.
    DEADLOCK_SUSPECTED = "deadlock-suspected"


@dataclass
class PauseReason:
    """Why the inferior paused, with event-specific details.

    Attributes:
        type: the pause cause.
        function: for ``CALL``/``RETURN``/function ``BREAKPOINT``: the
            function's name.
        variable: for ``WATCH``: identifier of the modified variable.
        old_value: for ``WATCH``: rendered previous value.
        new_value: for ``WATCH``: rendered new value.
        return_value: for ``RETURN``: the value being returned, already
            converted to the abstract state model when available.
        line: for line ``BREAKPOINT`` and ``STEP``: the source line at which
            the inferior is paused.
        thread: index of the inferior thread that triggered the pause
            (0 = the main inferior thread; ``None`` on single-threaded
            backends that predate the thread dimension).
        thread_name: name of that thread, when known.
        details: event-specific structured payload — for
            ``DEADLOCK_SUSPECTED``, the lock-wait graph
            (``{"threads": [...], "edges": [...], "cycle": [...]}``).
    """

    type: PauseReasonType
    function: Optional[str] = None
    variable: Optional[str] = None
    old_value: Any = None
    new_value: Any = None
    return_value: Any = None
    line: Optional[int] = None
    thread: Optional[int] = None
    thread_name: Optional[str] = None
    details: Optional[Dict[str, Any]] = None

    def __str__(self) -> str:
        parts = [self.type.name]
        if self.function:
            parts.append(f"function={self.function}")
        if self.variable:
            parts.append(f"variable={self.variable}")
        if self.line is not None:
            parts.append(f"line={self.line}")
        if self.thread is not None:
            parts.append(f"thread={self.thread}")
        return f"PauseReason({', '.join(parts)})"
