"""Language-agnostic, serializable representation of a paused program's state.

This module implements the class diagram of Section II-B2 of the paper:
``Frame`` holds ``Variable`` instances, each of which wraps a ``Value``.
A ``Value`` carries an :class:`AbstractType` describing the *nature* of its
``content``, a :class:`Location` describing where it conceptually lives
(stack, heap, global storage), an ``address`` in the inferior's memory, and a
``language_type`` string using the inferior language's own terminology
(e.g. ``"char*"`` for a C string, ``"tuple"`` for a Python tuple).

All classes in this module are plain data and round-trip through JSON via
:func:`value_to_dict` / :func:`value_from_dict` and friends, so state can
cross process boundaries (the GDB-style tracker pipes it from the debug
server) and feed web front-ends.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


class AbstractType(enum.Enum):
    """The nature of a :class:`Value`, shared by every inferior language.

    The mapping from concrete language types follows the paper:

    - ``PRIMITIVE``: Python ``int``/``float``/``str``/``bool``; C ``int``,
      ``long``, ``double``, ``float``, ``char`` and ``char*``.
    - ``REF``: C pointers, Python variables and attributes (every Python
      variable is conceptually a reference into the heap).
    - ``LIST``: C arrays, Python lists and tuples.
    - ``DICT``: Python dictionaries.
    - ``STRUCT``: C structures and Python instances not covered above.
    - ``NONE``: the Python ``None`` instance.
    - ``INVALID``: C invalid pointers (dangling, uninitialized, freed).
    - ``FUNCTION``: C function pointers and Python functions.
    """

    PRIMITIVE = "primitive"
    REF = "ref"
    LIST = "list"
    DICT = "dict"
    STRUCT = "struct"
    NONE = "none"
    INVALID = "invalid"
    FUNCTION = "function"


class Location(enum.Enum):
    """Where a :class:`Value` lies in the *conceptual* memory of a program.

    "Conceptual" means, e.g., that every Python variable is a ``REF`` value in
    the stack pointing at an object in the heap, even though CPython does not
    literally segregate memory that way.
    """

    STACK = "stack"
    HEAP = "heap"
    GLOBAL = "global"
    REGISTER = "register"
    UNKNOWN = "unknown"


@dataclass(eq=False)  # identity equality/hash: Values are usable as DICT keys
class Value:
    """A single value in the inferior, in the language-agnostic model.

    Attributes:
        abstract_type: nature of the value; dictates the type of ``content``.
        content: payload, whose shape depends on ``abstract_type``:
            ``PRIMITIVE`` -> Python primitive; ``REF`` -> ``Value``;
            ``LIST`` -> tuple of ``Value`` (tuple for immutability);
            ``DICT`` -> dict mapping ``Value`` keys to ``Value``;
            ``STRUCT`` -> dict mapping field-name ``str`` to ``Value``;
            ``NONE``/``INVALID`` -> ``None``; ``FUNCTION`` -> function name.
        location: conceptual memory region holding the value.
        address: concrete address of the value in the inferior's memory, or
            ``None`` when meaningless (e.g. for ``REF`` values).
        language_type: the type name in the inferior language's terminology.
        truncated: the capture layer cut this value short (container
            elements dropped, string shortened, or nesting depth capped by
            :class:`repro.pytracker.introspect.CaptureLimits`); ``content``
            is a prefix of the real value, not all of it.
    """

    abstract_type: AbstractType
    content: Any
    location: Location = Location.UNKNOWN
    address: Optional[int] = None
    language_type: str = ""
    truncated: bool = False

    def __post_init__(self) -> None:
        _check_content(self.abstract_type, self.content)

    # -- convenience accessors -------------------------------------------

    def deref(self) -> "Value":
        """Follow a ``REF`` value to its target.

        Raises:
            ValueError: if this value is not a ``REF``.
        """
        if self.abstract_type is not AbstractType.REF:
            raise ValueError(f"cannot deref a {self.abstract_type.name} value")
        return self.content

    def elements(self) -> Tuple["Value", ...]:
        """Return the elements of a ``LIST`` value.

        Raises:
            ValueError: if this value is not a ``LIST``.
        """
        if self.abstract_type is not AbstractType.LIST:
            raise ValueError(
                f"cannot take elements of a {self.abstract_type.name} value"
            )
        return self.content

    def fields(self) -> Dict[str, "Value"]:
        """Return the named fields of a ``STRUCT`` value.

        Raises:
            ValueError: if this value is not a ``STRUCT``.
        """
        if self.abstract_type is not AbstractType.STRUCT:
            raise ValueError(
                f"cannot take fields of a {self.abstract_type.name} value"
            )
        return self.content

    def is_valid(self) -> bool:
        """Whether the value may safely be inspected (not ``INVALID``)."""
        return self.abstract_type is not AbstractType.INVALID

    def walk(self) -> Iterator["Value"]:
        """Yield this value and every value reachable from it, depth-first.

        Shared sub-values are yielded once per reaching path; cycles are cut
        by never revisiting an already-yielded object identity.
        """
        seen: set = set()
        stack: List[Value] = [self]
        while stack:
            value = stack.pop()
            if id(value) in seen:
                continue
            seen.add(id(value))
            yield value
            if value.abstract_type is AbstractType.REF:
                stack.append(value.content)
            elif value.abstract_type is AbstractType.LIST:
                stack.extend(value.content)
            elif value.abstract_type is AbstractType.DICT:
                for key, item in value.content.items():
                    stack.append(key)
                    stack.append(item)
            elif value.abstract_type is AbstractType.STRUCT:
                stack.extend(value.content.values())

    def render(self) -> str:
        """A compact, human-readable rendering used by the bundled tools.

        Cyclic value graphs are legal in the model (see :meth:`walk` and
        :func:`value_to_dict`, which both cut back-edges); a back-edge
        renders as ``<...>``. Sharing that is not cyclic renders fully.
        """
        return self._render(set())

    def _render(self, active: set) -> str:
        marker = id(self)
        if marker in active:
            return "<...>"
        active.add(marker)
        try:
            kind = self.abstract_type
            if kind is AbstractType.PRIMITIVE:
                if self.truncated:
                    return repr(self.content) + "..."
                return repr(self.content)
            if kind is AbstractType.REF:
                target = self.content
                if target.address is not None:
                    return f"&{target.address:#x}"
                return f"&({target._render(active)})"
            if kind is AbstractType.LIST:
                parts = [v._render(active) for v in self.content]
                if self.truncated:
                    parts.append("...")
                return "[" + ", ".join(parts) + "]"
            if kind is AbstractType.DICT:
                parts = [
                    f"{k._render(active)}: {v._render(active)}"
                    for k, v in self.content.items()
                ]
                if self.truncated:
                    parts.append("...")
                return "{" + ", ".join(parts) + "}"
            if kind is AbstractType.STRUCT:
                parts = [
                    f".{name}={v._render(active)}"
                    for name, v in self.content.items()
                ]
                if self.truncated:
                    parts.append("...")
                return "{" + ", ".join(parts) + "}"
            if kind is AbstractType.NONE:
                return "None"
            if kind is AbstractType.INVALID:
                return "<invalid>"
            return f"<function {self.content}>"
        finally:
            active.discard(marker)


def _check_content(abstract_type: AbstractType, content: Any) -> None:
    """Validate the (abstract_type, content) pairing of a :class:`Value`."""
    if abstract_type is AbstractType.REF:
        if not isinstance(content, Value):
            raise TypeError("REF content must be a Value")
    elif abstract_type is AbstractType.LIST:
        if not isinstance(content, tuple) or not all(
            isinstance(v, Value) for v in content
        ):
            raise TypeError("LIST content must be a tuple of Value")
    elif abstract_type is AbstractType.DICT:
        if not isinstance(content, dict) or not all(
            isinstance(k, Value) and isinstance(v, Value)
            for k, v in content.items()
        ):
            raise TypeError("DICT content must map Value to Value")
    elif abstract_type is AbstractType.STRUCT:
        if not isinstance(content, dict) or not all(
            isinstance(k, str) and isinstance(v, Value)
            for k, v in content.items()
        ):
            raise TypeError("STRUCT content must map str to Value")
    elif abstract_type in (AbstractType.NONE, AbstractType.INVALID):
        if content is not None:
            raise TypeError(f"{abstract_type.name} content must be None")
    elif abstract_type is AbstractType.FUNCTION:
        if not isinstance(content, str):
            raise TypeError("FUNCTION content must be the function name")
    elif abstract_type is AbstractType.PRIMITIVE:
        if not isinstance(content, (int, float, str, bool, bytes)):
            raise TypeError(
                "PRIMITIVE content must be a Python primitive, got "
                f"{type(content).__name__}"
            )


@dataclass
class Variable:
    """A named variable in some scope of the inferior.

    Attributes:
        name: the variable's name in the source program.
        value: the variable's current :class:`Value`.
        scope: ``"local"``, ``"global"``, ``"argument"`` or ``"register"``.
    """

    name: str
    value: Value
    scope: str = "local"


@dataclass
class Frame:
    """One stack frame of a paused inferior.

    Frames form a singly linked list from the innermost (current) frame to
    the outermost via ``parent``. ``depth`` is 0 for the program entry frame
    and grows with each call, matching the ``maxdepth`` semantics of the
    control interface.
    """

    name: str
    depth: int
    variables: Dict[str, Variable] = field(default_factory=dict)
    parent: Optional["Frame"] = None
    line: Optional[int] = None
    filename: str = ""
    #: Index of the inferior thread this frame belongs to (0 = the main
    #: inferior thread). ``None`` on single-threaded captures.
    thread: Optional[int] = None

    def lookup(self, variable_name: str) -> Optional[Variable]:
        """Find a variable by name in this frame only."""
        return self.variables.get(variable_name)

    def stack(self) -> List["Frame"]:
        """All frames from this one up to the entry frame, innermost first."""
        frames: List[Frame] = []
        frame: Optional[Frame] = self
        while frame is not None:
            frames.append(frame)
            frame = frame.parent
        return frames

    def __iter__(self) -> Iterator[Variable]:
        return iter(self.variables.values())


def value_to_python(value: Value, _seen: Optional[set] = None) -> Any:
    """Project a :class:`Value` onto plain Python data, chasing references.

    The projection is language-neutral: a C ``int*`` pointing at a heap
    array and a Python list both come back as a Python list, so values from
    different trackers can be compared directly (the basis of the
    equivalence-testing tool). Cycles collapse to the string ``"..."``.
    """
    if _seen is None:
        _seen = set()
    if id(value) in _seen:
        return "..."
    _seen.add(id(value))
    try:
        kind = value.abstract_type
        if kind is AbstractType.PRIMITIVE:
            return value.content
        if kind is AbstractType.NONE:
            return None
        if kind is AbstractType.INVALID:
            return "<invalid>"
        if kind is AbstractType.FUNCTION:
            return f"<function {value.content}>"
        if kind is AbstractType.REF:
            return value_to_python(value.content, _seen)
        if kind is AbstractType.LIST:
            return [value_to_python(v, _seen) for v in value.content]
        if kind is AbstractType.DICT:
            return {
                _freeze(value_to_python(k, _seen)): value_to_python(v, _seen)
                for k, v in value.content.items()
            }
        return {
            name: value_to_python(v, _seen) for name, v in value.content.items()
        }
    finally:
        _seen.discard(id(value))


def _freeze(key: Any) -> Any:
    """Make a projected dict key hashable."""
    if isinstance(key, list):
        return tuple(_freeze(item) for item in key)
    if isinstance(key, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in key.items()))
    return key


# ---------------------------------------------------------------------------
# JSON (de)serialization.
#
# DICT values may have non-string keys, so they are encoded as a list of
# [key, value] pairs. Every dict below uses plain strings and JSON scalars
# only, so ``json.dumps`` works directly on the result.
# ---------------------------------------------------------------------------


def value_to_dict(value: Value) -> Dict[str, Any]:
    """Encode a :class:`Value` (recursively) as a JSON-serializable dict.

    Cyclic value graphs (a list containing itself, via REFs) are legal in
    the model — decoded Python Tutor heaps produce them — but JSON trees
    are not: the back-edge is cut and serialized as an ``INVALID`` value
    that keeps the target's address, so a viewer can still show where the
    cycle pointed.
    """
    return _value_to_dict(value, set())


def _value_to_dict(value: Value, active: set) -> Dict[str, Any]:
    kind = value.abstract_type
    marker = id(value)
    if marker in active:
        return {
            "abstract_type": AbstractType.INVALID.value,
            "content": None,
            "location": value.location.value,
            "address": value.address,
            "language_type": value.language_type,
        }
    active.add(marker)
    try:
        content: Any
        if kind is AbstractType.REF:
            content = _value_to_dict(value.content, active)
        elif kind is AbstractType.LIST:
            content = [_value_to_dict(v, active) for v in value.content]
        elif kind is AbstractType.DICT:
            content = [
                [_value_to_dict(k, active), _value_to_dict(v, active)]
                for k, v in value.content.items()
            ]
        elif kind is AbstractType.STRUCT:
            content = {
                name: _value_to_dict(v, active)
                for name, v in value.content.items()
            }
        elif kind is AbstractType.PRIMITIVE and isinstance(value.content, bytes):
            content = {"__bytes__": value.content.decode("latin-1")}
        else:
            content = value.content
    finally:
        active.discard(marker)
    encoded = {
        "abstract_type": kind.value,
        "content": content,
        "location": value.location.value,
        "address": value.address,
        "language_type": value.language_type,
    }
    if value.truncated:
        # Only encoded when set: keeps timeline deltas and pre-existing
        # serialized state byte-compatible for the common full capture.
        encoded["truncated"] = True
    return encoded


def value_from_dict(data: Dict[str, Any]) -> Value:
    """Decode the output of :func:`value_to_dict` back into a :class:`Value`."""
    kind = AbstractType(data["abstract_type"])
    raw = data["content"]
    content: Any
    if kind is AbstractType.REF:
        content = value_from_dict(raw)
    elif kind is AbstractType.LIST:
        content = tuple(value_from_dict(v) for v in raw)
    elif kind is AbstractType.DICT:
        content = {
            _HashableValueKey.wrap(value_from_dict(k)): value_from_dict(v)
            for k, v in raw
        }
    elif kind is AbstractType.STRUCT:
        content = {name: value_from_dict(v) for name, v in raw.items()}
    elif kind is AbstractType.PRIMITIVE and isinstance(raw, dict):
        content = raw["__bytes__"].encode("latin-1")
    else:
        content = raw
    return Value(
        abstract_type=kind,
        content=content,
        location=Location(data["location"]),
        address=data["address"],
        language_type=data["language_type"],
        truncated=bool(data.get("truncated", False)),
    )


class _HashableValueKey(Value):
    """A :class:`Value` usable as a dict key after deserialization.

    In-process trackers build DICT contents keyed by the live ``Value``
    objects (identity hashing works there). After a round-trip through JSON
    the keys are fresh objects, so we give them structural hashing based on
    the rendered form, which is stable and cheap for the small dictionaries
    found in teaching programs.
    """

    @classmethod
    def wrap(cls, value: Value) -> "_HashableValueKey":
        wrapped = cls.__new__(cls)
        wrapped.abstract_type = value.abstract_type
        wrapped.content = value.content
        wrapped.location = value.location
        wrapped.address = value.address
        wrapped.language_type = value.language_type
        wrapped.truncated = value.truncated
        return wrapped

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return hash((self.abstract_type, self.render()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Value):
            return NotImplemented
        return (
            self.abstract_type is other.abstract_type
            and self.render() == other.render()
        )


def variable_to_dict(variable: Variable) -> Dict[str, Any]:
    """Encode a :class:`Variable` as a JSON-serializable dict."""
    return {
        "name": variable.name,
        "value": value_to_dict(variable.value),
        "scope": variable.scope,
    }


def variable_from_dict(data: Dict[str, Any]) -> Variable:
    """Decode the output of :func:`variable_to_dict`."""
    return Variable(
        name=data["name"],
        value=value_from_dict(data["value"]),
        scope=data["scope"],
    )


def frame_to_dict(frame: Frame) -> Dict[str, Any]:
    """Encode a :class:`Frame` *and its parents* as a JSON-serializable dict."""
    encoded = {
        "name": frame.name,
        "depth": frame.depth,
        "variables": {
            name: variable_to_dict(var)
            for name, var in frame.variables.items()
        },
        "parent": frame_to_dict(frame.parent) if frame.parent else None,
        "line": frame.line,
        "filename": frame.filename,
    }
    if frame.thread is not None:
        # Only encoded when set, like Value.truncated: single-threaded
        # captures and old recordings stay byte-compatible.
        encoded["thread"] = frame.thread
    return encoded


def frame_from_dict(data: Dict[str, Any]) -> Frame:
    """Decode the output of :func:`frame_to_dict`."""
    return Frame(
        name=data["name"],
        depth=data["depth"],
        variables={
            name: variable_from_dict(var)
            for name, var in data["variables"].items()
        },
        parent=frame_from_dict(data["parent"]) if data["parent"] else None,
        line=data["line"],
        filename=data["filename"],
        thread=data.get("thread"),
    )
