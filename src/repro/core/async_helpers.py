"""Asynchronous helpers over the synchronous control interface.

The paper (§V) notes that the control interface is deliberately synchronous
— "it is quite easy in Python to make it asynchronous, hence the choice.
Though we may provide some API helpers to make it easier." These are those
helpers:

- :class:`AsyncTracker` wraps any tracker and turns every control call into
  a future, so a GUI event loop can issue ``resume()`` without blocking and
  react when the pause lands.
- :func:`run_with_callbacks` drives a tracker to completion, invoking a
  callback per pause — the shape most visualization tools want, with the
  control loop factored out.

Only control calls are routed to the worker thread (they are the blocking
ones); inspection calls remain direct because they are fast and only legal
while the inferior is paused anyway.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import Callable, Dict, Optional

from repro.core.pause import PauseReason, PauseReasonType
from repro.core.tracker import Tracker


class AsyncTracker:
    """Future-based facade over a tracker's control interface.

    Example::

        async_tracker = AsyncTracker(init_tracker("python"))
        async_tracker.tracker.load_program("prog.py")
        future = async_tracker.start()
        ...                      # stay responsive here
        reason = future.result() # the pause has landed

    All control calls execute in order on one worker thread, preserving the
    tracker's single-controller assumption.
    """

    def __init__(self, tracker: Tracker):
        self.tracker = tracker
        self._work: "queue.Queue" = queue.Queue()
        self._worker = threading.Thread(
            target=self._run_worker, name="repro-async-control", daemon=True
        )
        self._worker.start()

    # -- async control ----------------------------------------------------

    def start(self) -> "Future[Optional[PauseReason]]":
        return self._submit(self.tracker.start)

    def resume(self) -> "Future[Optional[PauseReason]]":
        return self._submit(self.tracker.resume)

    def next(self) -> "Future[Optional[PauseReason]]":
        return self._submit(self.tracker.next)

    def step(self) -> "Future[Optional[PauseReason]]":
        return self._submit(self.tracker.step)

    def finish(self) -> "Future[Optional[PauseReason]]":
        return self._submit(self.tracker.finish)

    def close(self) -> None:
        """Terminate the inferior and stop the worker thread."""
        terminate_future = self._submit(self.tracker.terminate)
        terminate_future.result(timeout=10)
        self._work.put(None)
        self._worker.join(timeout=5)

    # -- plumbing -----------------------------------------------------------

    def _submit(self, control: Callable[[], None]) -> "Future":
        future: Future = Future()
        self._work.put((control, future))
        return future

    def _run_worker(self) -> None:
        while True:
            item = self._work.get()
            if item is None:
                return
            control, future = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                control()
            except BaseException as error:
                future.set_exception(error)
            else:
                future.set_result(self.tracker.pause_reason)

    def __enter__(self) -> "AsyncTracker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_with_callbacks(
    tracker: Tracker,
    on_pause: Optional[Callable[[Tracker, PauseReason], None]] = None,
    handlers: Optional[
        Dict[PauseReasonType, Callable[[Tracker, PauseReason], None]]
    ] = None,
    max_pauses: int = 100_000,
) -> Optional[int]:
    """Drive a loaded tracker to completion, dispatching on pause reasons.

    Args:
        tracker: a tracker with the program already loaded (not started).
        on_pause: called at every pause (after any specific handler).
        handlers: per-:class:`PauseReasonType` callbacks.
        max_pauses: safety bound.

    Returns:
        The inferior's exit code.
    """
    handlers = handlers or {}
    tracker.start()
    pauses = 0
    while tracker.get_exit_code() is None and pauses < max_pauses:
        tracker.resume()
        pauses += 1
        reason = tracker.pause_reason
        if reason is None or tracker.get_exit_code() is not None:
            break
        specific = handlers.get(reason.type)
        if specific is not None:
            specific(tracker, reason)
        if on_pause is not None:
            on_pause(tracker, reason)
    return tracker.get_exit_code()
