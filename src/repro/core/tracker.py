"""The abstract tracker: EasyTracker's control and inspection interfaces.

A *tracker* runs an inferior program, pauses it at control points, and
exposes its paused state through the language-agnostic model of
:mod:`repro.core.state`. Two complete implementations ship with the library
(:class:`repro.pytracker.PythonTracker` and
:class:`repro.gdbtracker.GDBTracker`) plus a trace-replay tracker
(:class:`repro.pytutor.PTTracker`).

Every function of the control interface **returns only when the inferior is
paused or terminated** — this synchronous contract is what makes tool
scripts simple imperative loops.

**Canonical control-call signature.** Every control call of every backend
shares one signature, defined here once (backends implement only the
``_``-prefixed hooks and never re-declare it)::

    start(*, timeout=None, record=None)
    resume(*, timeout=None, record=None)
    next(*, timeout=None, record=None)
    step(*, timeout=None, record=None)
    finish(*, timeout=None, record=None)

``timeout`` is the supervision deadline in seconds (defaulting to
:attr:`Tracker.default_timeout`); ``record`` overrides the timeline
recorder for this one pause (``True`` forces a snapshot, ``False``
suppresses one, ``None`` defers to :meth:`enable_recording`). Both are
keyword-only; passing ``timeout`` positionally still works through a
:class:`DeprecationWarning` shim one release long.
"""

from __future__ import annotations

import contextlib
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import (
    AlreadyTerminatedError,
    BackendUnavailableError,
    NotPausedError,
    NotStartedError,
    TrackerError,
)
from repro.core.pause import PauseReason, PauseReasonType
from repro.core.state import Frame, Variable
from repro.core.supervision import Deadline, SupervisionEvent
from repro.core.timeline import (
    StateSnapshot,
    Timeline,
    TimelineRecorder,
    scan_backward,
    scan_forward,
)


@dataclass
class LineBreakpoint:
    """A pause request before executing a given source line.

    ``thread`` restricts the breakpoint to one inferior thread index
    (0 = the main inferior thread); ``None`` matches any thread.
    """

    line: int
    filename: Optional[str] = None
    maxdepth: Optional[int] = None
    enabled: bool = True
    thread: Optional[int] = None


@dataclass
class FunctionBreakpoint:
    """A pause request just before entering a given function.

    Pausing "before entering" still guarantees that the callee's arguments
    are initialized and inspectable, per the paper's contract for
    ``break_before_func``.
    """

    function: str
    maxdepth: Optional[int] = None
    enabled: bool = True
    thread: Optional[int] = None


@dataclass
class TrackedFunction:
    """A request to pause at both entry and exit of every call of a function."""

    function: str
    maxdepth: Optional[int] = None
    enabled: bool = True
    thread: Optional[int] = None


@dataclass
class Watchpoint:
    """A pause request triggered by modification of a variable.

    ``variable_id`` uses the syntax ``name`` for a global or current-frame
    variable, or ``function:name`` to watch ``name`` within ``function``.
    A thread-scoped watch (``thread`` set) is sampled only on events from
    that thread.
    """

    variable_id: str
    maxdepth: Optional[int] = None
    enabled: bool = True
    thread: Optional[int] = None

    def split(self) -> Tuple[Optional[str], str]:
        """Return ``(function_or_None, variable_name)``.

        Tolerates an empty function part (``":x"``), extra colons in the
        variable name (``"f:x:y"``), and colons inside brackets or quotes
        (``'d[":k"]'``); see :func:`repro.core.engine.split_variable_id`.
        """
        from repro.core.engine import split_variable_id

        return split_variable_id(self.variable_id)


class Tracker:
    """Abstract base of all trackers.

    Subclasses implement the ``_``-prefixed hooks; this base class owns the
    control-point registries, lifecycle state checks, and the pause-reason
    bookkeeping, so the three implementations expose identical behaviour at
    the edges of the API.
    """

    #: Human-readable backend name ("python", "GDB", "pt").
    backend = "abstract"

    def __init__(self) -> None:
        from repro.core.engine import ControlPointEngine

        self._program: Optional[str] = None
        self._program_args: List[str] = []
        self._started = False
        self._terminated = False
        self._exit_code: Optional[int] = None
        self._pause_reason: Optional[PauseReason] = None
        #: Default deadline (seconds) applied to every control call that
        #: does not pass an explicit ``timeout=``; ``None`` = wait forever.
        self.default_timeout: Optional[float] = None
        #: Supervision health: "ok", "invalid" (wedged inferior abandoned)
        #: or "unavailable" (backend crash-recovery exhausted).
        self.health: str = "ok"
        #: The deadline of the control call currently in flight (set by
        #: the public control methods, read by deadline-aware backends).
        self._control_deadline: Optional[Deadline] = None
        self._supervision_events: List[SupervisionEvent] = []
        self._supervision_listeners: List[
            Callable[[SupervisionEvent], None]
        ] = []
        #: The shared indexed decision core; owns the registries below.
        self.engine = ControlPointEngine()
        self.line_breakpoints: List[LineBreakpoint] = self.engine.line_breakpoints
        self.function_breakpoints: List[FunctionBreakpoint] = (
            self.engine.function_breakpoints
        )
        self.tracked_functions: List[TrackedFunction] = (
            self.engine.tracked_functions
        )
        self.watchpoints: List[Watchpoint] = self.engine.watchpoints
        #: Line about to be executed when paused (used by the bundled tools).
        self.next_lineno: Optional[int] = None
        #: Line that was last executed before the pause.
        self.last_lineno: Optional[int] = None
        #: Timeline recorder installed by :meth:`enable_recording`.
        self._recorder: Optional[TimelineRecorder] = None
        #: Record-time inverted index (:class:`repro.core.tracestore
        #: .TraceIndex`), maintained from the codec's own diff patches.
        self._trace_index: Optional[Any] = None
        #: Disk-backed store (:class:`repro.core.tracestore.TraceStore`)
        #: when recording to a ``.tracedir/``; sealed on :meth:`terminate`.
        self._trace_store: Optional[Any] = None
        #: Global timeline index while rewound into history; ``None`` when
        #: the tracker is live at the newest state (the normal case).
        self._replay_cursor: Optional[int] = None

    # ------------------------------------------------------------------
    # Program lifecycle
    # ------------------------------------------------------------------

    def load_program(self, path: str, args: Optional[List[str]] = None) -> None:
        """Load the inferior program from ``path`` without running it.

        Args:
            path: source file of the inferior (``.py``, ``.c``, ``.s`` ...).
            args: command-line arguments passed to the inferior.
        """
        self._program = path
        self._program_args = list(args or [])
        self._load_program(path, self._program_args)

    def start(self, *args: Any, timeout: Optional[float] = None,
              record: Optional[bool] = None) -> None:
        """Begin executing the inferior and pause before its first line.

        Like every control call, returns once the inferior is paused (at its
        first executable line) or has terminated (empty program). See the
        module docstring for the canonical signature shared by all control
        calls: ``timeout`` is the supervision deadline (on expiry the
        supervisor interrupts the inferior so the call still returns
        paused; :class:`ControlTimeout` is raised only if the interrupt
        fails), ``record`` overrides timeline recording for this pause.
        """
        timeout = self._keyword_only_timeout("start", args, timeout)
        if self._program is None:
            raise NotStartedError("load_program must be called before start")
        if self._started:
            raise NotStartedError("the inferior has already been started")
        self._started = True
        with self._supervised(timeout):
            self._start()
        self._after_control(record)

    def resume(self, *args: Any, timeout: Optional[float] = None,
               record: Optional[bool] = None) -> None:
        """Resume until the next control point or termination."""
        self._control("resume", self._resume, args, timeout, record)

    def next(self, *args: Any, timeout: Optional[float] = None,
             record: Optional[bool] = None) -> None:
        """Execute the current line, stepping *over* function calls."""
        self._control("next", self._next, args, timeout, record)

    def step(self, *args: Any, timeout: Optional[float] = None,
             record: Optional[bool] = None) -> None:
        """Execute the current line, stepping *into* function calls."""
        self._control("step", self._step, args, timeout, record)

    def finish(self, *args: Any, timeout: Optional[float] = None,
               record: Optional[bool] = None) -> None:
        """Run until the current function returns (pause at the return)."""
        self._control("finish", self._finish, args, timeout, record)

    def _control(
        self,
        name: str,
        hook: Callable[[], None],
        args: Tuple[Any, ...],
        timeout: Optional[float],
        record: Optional[bool],
    ) -> None:
        """One forward control call: shim, rewind routing, hook, record."""
        timeout = self._keyword_only_timeout(name, args, timeout)
        if self._replay_cursor is not None:
            # Rewound into history: the call moves through *recorded*
            # pauses until it reaches the newest snapshot, then goes live.
            self._seek_timeline(
                scan_forward(self._require_timeline(), self._timeline_position(), name)
            )
            return
        self._require_running()
        with self._supervised(timeout):
            hook()
        self._after_control(record)

    def _keyword_only_timeout(
        self, name: str, args: Tuple[Any, ...], timeout: Optional[float]
    ) -> Optional[float]:
        """Deprecation shim for the pre-redesign positional ``timeout``."""
        if not args:
            return timeout
        if len(args) > 1 or timeout is not None:
            raise TypeError(
                f"{name}() takes no positional arguments beyond the "
                "deprecated positional timeout"
            )
        warnings.warn(
            f"passing the timeout positionally to {name}() is deprecated; "
            f"use {name}(timeout=...)",
            DeprecationWarning,
            stacklevel=3,
        )
        return args[0]

    def _after_control(self, record: Optional[bool]) -> None:
        """Snapshot the pause a control call just returned from."""
        recorder = self._recorder
        if recorder is None:
            return
        if record is None:
            record = recorder.enabled
        if record:
            recorder.record()

    @contextlib.contextmanager
    def _supervised(self, timeout: Optional[float]):
        """Install the control-call deadline for the duration of a hook.

        Deadline-aware backends read :attr:`_control_deadline` inside
        their blocking waits; backends that never block (trace replay)
        simply ignore it, which is correct — they cannot hang.
        """
        effective = timeout if timeout is not None else self.default_timeout
        self._control_deadline = (
            Deadline(effective) if effective is not None else None
        )
        try:
            yield
        finally:
            self._control_deadline = None

    def terminate(self) -> None:
        """Kill the inferior and release all tracker resources.

        Safe to call at any point, including after normal termination.
        A ``tracedir=`` recording is sealed here (manifest + index written),
        so the directory is openable with ``TimelineView.open`` afterwards.
        """
        if not self._terminated:
            if self._trace_store is not None:
                self._trace_store.close()
            self._terminate()
            self._terminated = True

    def get_exit_code(self) -> Optional[int]:
        """Exit code of the inferior, or ``None`` while it is still alive.

        The typical tool control loop is
        ``while tracker.get_exit_code() is None: ...``.
        """
        return self._exit_code

    # ------------------------------------------------------------------
    # Control points
    # ------------------------------------------------------------------

    def break_before_line(
        self,
        line: int,
        filename: Optional[str] = None,
        maxdepth: Optional[int] = None,
        thread: Optional[int] = None,
    ) -> LineBreakpoint:
        """Pause the inferior just before executing ``line``.

        Args:
            line: 1-based source line number.
            filename: restrict to a file; defaults to the main program file.
            maxdepth: only pause if the current frame depth is at most this
                value (frame depth 0 is the program entry frame).
            thread: only pause when the line executes on this inferior
                thread index (0 = main); ``None`` matches any thread.
        """
        breakpoint_ = LineBreakpoint(
            line=line, filename=filename, maxdepth=maxdepth, thread=thread
        )
        self.line_breakpoints.append(breakpoint_)
        self._control_points_changed()
        return breakpoint_

    def break_before_func(
        self,
        function: str,
        maxdepth: Optional[int] = None,
        thread: Optional[int] = None,
    ) -> FunctionBreakpoint:
        """Pause just before entering ``function`` (arguments initialized)."""
        breakpoint_ = FunctionBreakpoint(
            function=function, maxdepth=maxdepth, thread=thread
        )
        self.function_breakpoints.append(breakpoint_)
        self._control_points_changed()
        return breakpoint_

    def track_function(
        self,
        function: str,
        maxdepth: Optional[int] = None,
        thread: Optional[int] = None,
    ) -> TrackedFunction:
        """Pause at the beginning and end of every execution of ``function``.

        The entry pause happens just *after* entering (locals exist), the
        exit pause just *before* returning (the return value is available in
        :attr:`pause_reason`).
        """
        tracked = TrackedFunction(
            function=function, maxdepth=maxdepth, thread=thread
        )
        self.tracked_functions.append(tracked)
        self._control_points_changed()
        return tracked

    def watch(
        self,
        variable_id: str,
        maxdepth: Optional[int] = None,
        thread: Optional[int] = None,
    ) -> Watchpoint:
        """Pause every time the variable ``variable_id`` is modified.

        ``variable_id`` is either a plain name (global or any frame) or
        ``"function:name"`` to scope the watch to one function's local.
        """
        watchpoint = Watchpoint(
            variable_id=variable_id, maxdepth=maxdepth, thread=thread
        )
        self.watchpoints.append(watchpoint)
        self._control_points_changed()
        return watchpoint

    def clear_control_points(self) -> None:
        """Remove every breakpoint, tracked function and watchpoint."""
        self.engine.clear()
        self._control_points_changed()

    # ------------------------------------------------------------------
    # Timeline recording & reverse control (time travel)
    # ------------------------------------------------------------------

    def enable_recording(
        self,
        keyframe_interval: int = 16,
        max_snapshots: Optional[int] = None,
        tracedir: Optional[str] = None,
        index: bool = True,
    ) -> TimelineRecorder:
        """Record a :class:`StateSnapshot` at every pause from now on.

        Args:
            keyframe_interval: store a full keyframe every this many
                snapshots; in between, structural deltas.
            max_snapshots: ring-buffer bound on *in-memory* snapshots
                (``None`` = unbounded). With ``tracedir`` set, eviction
                spills segments to disk instead of dropping them, so
                every snapshot stays reachable.
            tracedir: record into a disk-backed ``.tracedir/`` at this
                path (created if needed). Sealed on :meth:`terminate`;
                reopen later with ``TimelineView.open(tracedir)``.
            index: maintain the inverted trace index incrementally at
                record time (variable changes, call/return ranges, pause
                reasons), fed by the same diff patches the delta codec
                computes. Turn off to shave recording overhead when the
                recording will never be queried.

        Returns the recorder; its :attr:`TimelineRecorder.timeline` is also
        reachable as :attr:`timeline`. If the inferior is already paused,
        the current state becomes the first snapshot immediately.
        """
        self._recorder = TimelineRecorder(
            self, keyframe_interval=keyframe_interval,
            max_snapshots=max_snapshots,
        )
        timeline = self._recorder.timeline
        self._trace_index = None
        self._trace_store = None
        if index:
            from repro.core.tracestore import TraceIndex

            self._trace_index = TraceIndex()
            timeline.add_append_listener(self._trace_index.observe)
            timeline.add_drop_listener(self._trace_index.forget)
        if tracedir is not None:
            from repro.core.tracestore import TraceStore

            self._trace_store = TraceStore(
                tracedir, timeline, index=self._trace_index
            )
        if self._started:
            self._recorder.record()
        return self._recorder

    def timeline_view(self) -> "Any":
        """The unified query/navigation view over this tracker's recording.

        Returns a :class:`repro.core.tracestore.TimelineView` bound to
        this tracker: its queries (``history``, ``calls``, ``where``,
        ``changes_between``) read the recording — using the record-time
        index when one is maintained — and its navigation calls
        (``goto``, ``backward_*``) move this tracker's time-travel
        cursor. This is the one object that owns a recording; the old
        ``Tracker.goto`` / ``Tracker.backward_*`` methods are deprecated
        shims over it.

        Raises:
            TrackerError: recording was never enabled.
        """
        from repro.core.tracestore import TimelineView

        return TimelineView(
            self._require_timeline(), index=self._trace_index, tracker=self
        )

    def timeline_query(self, text: str) -> Dict[str, Any]:
        """Run one trace-query expression against the recording.

        Convenience over ``timeline_view().query(text)`` returning the
        structured dict form; remote backends override this to evaluate
        the query server-side (``-timeline-query``) so the recording
        never crosses the pipe.
        """
        return self.timeline_view().query(text).to_dict()

    def disable_recording(self) -> None:
        """Stop recording; the timeline so far stays navigable."""
        if self._recorder is not None:
            self._recorder.enabled = False

    @property
    def timeline(self) -> Optional[Timeline]:
        """The recorded timeline, or ``None`` if recording was never on."""
        return self._recorder.timeline if self._recorder is not None else None

    def _deprecated_navigation(self, name: str) -> None:
        warnings.warn(
            f"Tracker.{name}() is deprecated; use "
            f"tracker.timeline_view().{name}() — TimelineView is the one "
            "object that owns a recording",
            DeprecationWarning,
            stacklevel=3,
        )

    def backward_step(self) -> None:
        """Rewind to the previous recorded pause.

        .. deprecated::
            Use :meth:`timeline_view` and
            :meth:`TimelineView.backward_step`; the navigation surface
            lives on the view that owns the recording.

        Reverse control calls are backend-agnostic: they never touch the
        (forward-only) inferior but replay the recorded timeline, so they
        work identically on every backend with recording enabled. While
        rewound, inspection serves the recorded snapshot and forward
        control calls move through recorded pauses until they reach the
        newest snapshot — where the live inferior still sits — and control
        goes live again.

        Raises:
            NotPausedError: already at the oldest retained snapshot.
            TrackerError: recording was never enabled.
        """
        self._deprecated_navigation("backward_step")
        self._backward("step")

    def backward_next(self) -> None:
        """Rewind to the previous pause at the same depth or shallower.

        .. deprecated:: use ``timeline_view().backward_next()``.
        """
        self._deprecated_navigation("backward_next")
        self._backward("next")

    def backward_finish(self) -> None:
        """Rewind to the previous pause in a caller (shallower depth).

        .. deprecated:: use ``timeline_view().backward_finish()``.
        """
        self._deprecated_navigation("backward_finish")
        self._backward("finish")

    def backward_resume(self) -> None:
        """Rewind to the previous control-point pause (breakpoint, watch,
        tracked call/return), or to the oldest snapshot if none.

        .. deprecated:: use ``timeline_view().backward_resume()``.
        """
        self._deprecated_navigation("backward_resume")
        self._backward("resume")

    def goto(self, index: int) -> StateSnapshot:
        """Jump to the recorded snapshot at global ``index``.

        .. deprecated:: use ``timeline_view().goto(index)``.

        Negative indexes count from the newest snapshot (``goto(-1)`` is
        the newest, i.e. back to live). Returns the snapshot landed on.
        """
        self._deprecated_navigation("goto")
        return self._goto(index)

    def _goto(self, index: int) -> StateSnapshot:
        """Navigation core behind :meth:`TimelineView.goto`.

        The reachable window floor is :attr:`Timeline.first_index`, so a
        spilled (``tracedir``) recording can jump to evicted snapshots —
        they load back lazily from disk.
        """
        timeline = self._require_timeline()
        if index < 0:
            index += len(timeline)
        if not timeline.first_index <= index < len(timeline):
            raise TrackerError(
                f"goto({index}): outside the retained window "
                f"[{timeline.first_index}, {len(timeline)})"
            )
        self._seek_timeline(index)
        return timeline.snapshot(index)

    def _backward(self, mode: str) -> None:
        timeline = self._require_timeline()
        current = self._timeline_position()
        if current <= timeline.first_index:
            raise NotPausedError("already at the oldest recorded snapshot")
        self._seek_timeline(scan_backward(timeline, current, mode))

    def _require_timeline(self) -> Timeline:
        timeline = self.timeline
        if timeline is None or timeline.retained == 0:
            raise TrackerError(
                "no timeline recorded; call enable_recording() before "
                "running the inferior"
            )
        return timeline

    def _timeline_position(self) -> int:
        """Global index of the snapshot describing the current state."""
        if self._replay_cursor is not None:
            return self._replay_cursor
        return len(self._require_timeline()) - 1

    def _seek_timeline(self, index: int) -> None:
        """Move the time-travel cursor; at the newest snapshot, go live."""
        timeline = self._require_timeline()
        snapshot = timeline.snapshot(index)
        self._replay_cursor = None if index >= len(timeline) - 1 else index
        self._apply_snapshot_pause(snapshot)

    def _apply_snapshot_pause(self, snapshot: StateSnapshot) -> None:
        """Make the lifecycle state reflect a (re)played snapshot."""
        self._exit_code = snapshot.exit_code
        self._pause_reason = snapshot.reason or PauseReason(
            type=PauseReasonType.STEP, line=snapshot.line
        )
        self.last_lineno = self.next_lineno
        self.next_lineno = snapshot.line

    def _replay_snapshot(self) -> Optional[StateSnapshot]:
        """The snapshot inspection should serve, or ``None`` when live."""
        if self._replay_cursor is None:
            return None
        return self._require_timeline().snapshot(self._replay_cursor)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def pause_reason(self) -> Optional[PauseReason]:
        """Why the last control call paused, or ``None`` before ``start``."""
        return self._pause_reason

    def get_stats(self):
        """Observability counters for this tracker (a ``TrackerStats``).

        Available at any point in the lifecycle; counters accumulate from
        ``start`` until termination. Remote backends may override this to
        merge in server-side counters.
        """
        return self.engine.stats

    # ------------------------------------------------------------------
    # Supervision events
    # ------------------------------------------------------------------

    def drain_supervision_events(self) -> List[SupervisionEvent]:
        """Supervision events since the last drain (restarts, wedges...)."""
        events = self._supervision_events
        self._supervision_events = []
        return events

    def add_supervision_listener(
        self, listener: Callable[[SupervisionEvent], None]
    ) -> None:
        """Also deliver every supervision event to ``listener``."""
        self._supervision_listeners.append(listener)

    def _emit_supervision_event(self, event: SupervisionEvent) -> None:
        self._supervision_events.append(event)
        for listener in self._supervision_listeners:
            listener(event)

    def snapshot(self) -> StateSnapshot:
        """The unified inspection call: everything about the paused state.

        One :class:`StateSnapshot` bundles what previously took the
        ``get_frames`` / ``get_global_variables`` / ``get_position`` /
        ``get_source_lines`` quartet (which remain as thin views over the
        same data). The snapshot is immutable and serializable — the same
        type the timeline recorder stores — so it can be kept, diffed and
        shipped across processes. While rewound into history, this returns
        the recorded snapshot at the cursor.
        """
        replayed = self._replay_snapshot()
        if replayed is not None:
            return replayed
        if not self._started:
            raise NotStartedError("call start() first")
        return StateSnapshot.capture(self)

    def get_current_frame(self) -> Frame:
        """The innermost frame of the paused inferior (parents linked)."""
        replayed = self._replay_snapshot()
        if replayed is not None:
            if replayed.frame is None:
                raise NotPausedError("this snapshot recorded no frames")
            return replayed.frame
        self._require_paused()
        return self._get_current_frame()

    def get_frames(self) -> List[Frame]:
        """All frames, innermost first (a convenience over the parent chain)."""
        return self.get_current_frame().stack()

    def get_global_variables(self) -> Dict[str, Variable]:
        """The inferior's global variables."""
        replayed = self._replay_snapshot()
        if replayed is not None:
            return dict(replayed.globals)
        self._require_paused()
        return self._get_global_variables()

    def get_variable(
        self, name: str, function: Optional[str] = None
    ) -> Optional[Variable]:
        """Look up one variable by name.

        Args:
            name: variable name.
            function: if given, search the innermost frame executing that
                function; otherwise search the current frame then globals.

        Returns:
            The variable, or ``None`` if no such name is visible.
        """
        if self._replay_cursor is None:
            self._require_paused()
        if function is not None:
            for frame in self.get_frames():
                if frame.name == function:
                    return frame.lookup(name)
            return None
        found = self.get_current_frame().lookup(name)
        if found is not None:
            return found
        return self.get_global_variables().get(name)

    def get_position(self) -> Tuple[str, Optional[int]]:
        """``(filename, next line to execute)`` of the paused inferior."""
        replayed = self._replay_snapshot()
        if replayed is not None:
            return replayed.position()
        self._require_paused()
        return self._get_position()

    # ------------------------------------------------------------------
    # Thread & asyncio inspection
    # ------------------------------------------------------------------

    def get_threads(self) -> List[Any]:
        """All inferior threads as :class:`repro.core.threads.ThreadInfo`.

        Single-threaded backends report exactly one entry — thread 0,
        the main inferior thread — so tools can iterate unconditionally.
        Multi-thread backends override this with the live registry.
        """
        from repro.core.threads import THREAD_FINISHED, THREAD_PAUSED, ThreadInfo

        state = THREAD_PAUSED if self._exit_code is None else THREAD_FINISHED
        function = line = filename = None
        if self._started and self._exit_code is None:
            try:
                frame = self.get_current_frame()
            except TrackerError:
                frame = None
            if frame is not None:
                function, line = frame.name, frame.line
                filename = frame.filename
        return [
            ThreadInfo(
                id=0,
                name="main",
                state=state,
                function=function,
                line=line,
                filename=filename,
            )
        ]

    def get_thread_frames(self, thread: int) -> List[Frame]:
        """Frames of one inferior thread, innermost first.

        ``thread`` is the stable index reported by :meth:`get_threads`.
        The base implementation serves only thread 0 (the main thread's
        frames are the ordinary ``get_frames`` result).
        """
        if thread != 0:
            raise TrackerError(
                f"no inferior thread {thread} (this backend tracks only "
                "the main thread)"
            )
        return self.get_frames()

    def get_tasks(self) -> List[Any]:
        """The inferior's asyncio tasks with await chains.

        Returns a list of :class:`repro.core.threads.TaskInfo`; empty when
        the inferior runs no event loop or the backend cannot see one
        (in-process Python backends override this with live enumeration).
        """
        return []

    def get_source_lines(self) -> List[str]:
        """The source text of the main program file, one string per line."""
        if self._program is None:
            raise NotStartedError("no program loaded")
        with open(self._program, "r", encoding="utf-8") as source:
            return source.read().splitlines()

    # ------------------------------------------------------------------
    # Backend hooks
    # ------------------------------------------------------------------

    def _load_program(self, path: str, args: List[str]) -> None:
        raise NotImplementedError

    def _start(self) -> None:
        raise NotImplementedError

    def _resume(self) -> None:
        raise NotImplementedError

    def _next(self) -> None:
        raise NotImplementedError

    def _step(self) -> None:
        raise NotImplementedError

    def _finish(self) -> None:
        raise NotImplementedError

    def _terminate(self) -> None:
        raise NotImplementedError

    def _get_current_frame(self) -> Frame:
        raise NotImplementedError

    def _get_global_variables(self) -> Dict[str, Variable]:
        raise NotImplementedError

    def _get_position(self) -> Tuple[str, Optional[int]]:
        raise NotImplementedError

    def _control_points_changed(self) -> None:
        """Notify the backend that control points were added or removed.

        The base implementation invalidates the engine's compiled indexes;
        overrides must call ``super()._control_points_changed()``.
        """
        self.engine.mark_dirty()

    # ------------------------------------------------------------------
    # State checks
    # ------------------------------------------------------------------

    def _require_running(self) -> None:
        if not self._started:
            raise NotStartedError("call start() first")
        if self.health != "ok":
            raise BackendUnavailableError(
                f"the tracker is {self.health}; no further control is "
                "possible (terminate() and create a fresh tracker)"
            )
        if self._exit_code is not None or self._terminated:
            raise AlreadyTerminatedError("the inferior has terminated")

    def _require_paused(self) -> None:
        if not self._started:
            raise NotStartedError("call start() first")
        if self._exit_code is not None and not self._allows_post_exit_inspection():
            raise NotPausedError("the inferior has terminated")

    def _allows_post_exit_inspection(self) -> bool:
        """Whether inspection after exit is supported (trace replay is)."""
        return False

    # Depth filtering shared by all backends ----------------------------

    @staticmethod
    def _depth_allows(maxdepth: Optional[int], depth: int) -> bool:
        """The paper's maxdepth semantics: pause only at depth <= maxdepth."""
        return maxdepth is None or depth <= maxdepth
