"""Thread and asyncio-task inspection models.

The paper's state model (Section II-B2) describes one frame chain — a
single-threaded inferior. This module adds the *thread dimension* every
backend now carries: :class:`ThreadInfo` describes one inferior thread
(its stable index, name, scheduling state and current position) and
:class:`TaskInfo` describes one asyncio task (name, state and the chain
of coroutines it is awaiting through).

Thread indexes are small stable integers assigned in registration order —
index 0 is always the thread that executes the program's module code —
so they survive serialization and are meaningful across the MI
(``-thread-info``) and DAP (``threads``) boundaries, unlike OS idents
which are reused and process-specific.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "TaskInfo",
    "ThreadInfo",
    "task_from_dict",
    "task_to_dict",
    "thread_from_dict",
    "thread_to_dict",
]

#: ``ThreadInfo.state`` values.
THREAD_RUNNING = "running"
THREAD_PAUSED = "paused"  # the thread that reported the current pause
THREAD_PARKED = "parked"  # stopped at a boundary by the all-stop barrier
THREAD_BLOCKED = "blocked"  # waiting on a lock/join, per the stall sampler
THREAD_FINISHED = "finished"


@dataclass
class ThreadInfo:
    """One inferior thread, as the inspection API reports it.

    Attributes:
        id: stable small integer index (0 = the main inferior thread).
        name: the thread's name (``threading.Thread.name`` for Python
            inferiors).
        state: scheduling state — ``"paused"`` (owns the current pause),
            ``"parked"`` (stopped by the all-stop barrier), ``"running"``,
            ``"blocked"`` (stall sampler found it waiting on a lock) or
            ``"finished"``.
        function: innermost inferior function currently executing, when
            a frame sample is available.
        line: current source line of that frame.
        filename: file of that frame.
        daemon: the thread's daemon flag, when known.
    """

    id: int
    name: str = ""
    state: str = THREAD_RUNNING
    function: Optional[str] = None
    line: Optional[int] = None
    filename: Optional[str] = None
    daemon: Optional[bool] = None

    def __str__(self) -> str:
        where = ""
        if self.function is not None:
            where = f" at {self.function}:{self.line}"
        return f"Thread {self.id} ({self.name}) [{self.state}]{where}"


@dataclass
class TaskInfo:
    """One asyncio task of the inferior, with its await chain.

    Attributes:
        name: the task's name (``Task.get_name()``).
        state: ``"pending"``, ``"done"`` or ``"cancelled"``.
        coroutine: qualified name of the task's outermost coroutine.
        awaiting: coroutine names from the outermost frame down to the
            suspension point — the await chain, outermost first.
        line: source line where the innermost coroutine is suspended,
            when known.
    """

    name: str
    state: str = "pending"
    coroutine: str = ""
    awaiting: List[str] = field(default_factory=list)
    line: Optional[int] = None

    def __str__(self) -> str:
        chain = " -> ".join(self.awaiting) if self.awaiting else "?"
        return f"Task {self.name} [{self.state}] awaiting {chain}"


def thread_to_dict(info: ThreadInfo) -> Dict[str, Any]:
    """Encode a :class:`ThreadInfo` as a JSON-serializable dict."""
    return {
        "id": info.id,
        "name": info.name,
        "state": info.state,
        "function": info.function,
        "line": info.line,
        "filename": info.filename,
        "daemon": info.daemon,
    }


def thread_from_dict(data: Dict[str, Any]) -> ThreadInfo:
    """Decode the output of :func:`thread_to_dict`."""
    return ThreadInfo(
        id=int(data["id"]),
        name=data.get("name", ""),
        state=data.get("state", THREAD_RUNNING),
        function=data.get("function"),
        line=data.get("line"),
        filename=data.get("filename"),
        daemon=data.get("daemon"),
    )


def task_to_dict(info: TaskInfo) -> Dict[str, Any]:
    """Encode a :class:`TaskInfo` as a JSON-serializable dict."""
    return {
        "name": info.name,
        "state": info.state,
        "coroutine": info.coroutine,
        "awaiting": list(info.awaiting),
        "line": info.line,
    }


def task_from_dict(data: Dict[str, Any]) -> TaskInfo:
    """Decode the output of :func:`task_to_dict`."""
    return TaskInfo(
        name=data["name"],
        state=data.get("state", "pending"),
        coroutine=data.get("coroutine", ""),
        awaiting=list(data.get("awaiting", [])),
        line=data.get("line"),
    )
