"""The omniscient, queryable trace store: ask questions of a recording.

PR 3's timelines answer "what was the state at pause k?"; this module
answers the converse family — "when did ``x`` last change?", "which calls
of ``f`` returned INVALID?", "every snapshot where ``len(heap) > 100``" —
the hypothesis-testing workflow of *Tracers for debugging and program
exploration* and the omniscient navigation of *SpaceTime Programming*.

Three layers, all built on the delta codec the timeline already ships:

- :class:`TraceIndex` — an inverted index (variable → sorted snapshot
  indices where it changed, function → call/return ranges with rendered
  return values, pause reason → indices) maintained *incrementally at
  record time* by inspecting the same :func:`diff_tree` patches the
  timeline computes for storage. No second pass over state: the recorder
  registers a :meth:`Timeline.add_append_listener` hook and reads the
  patch that was going to be stored anyway.

- :class:`SegmentSpool` / :class:`TraceStore` — a disk-backed
  ``.tracedir/`` layout (``manifest.json`` + per-segment blob files, read
  back through ``mmap``) that recordings spill into: with a spool
  attached, ``max_snapshots`` ring-buffer eviction *moves* keyframe-led
  segments to disk instead of dropping them, and reconstruction loads
  them back lazily on query or ``goto``.

- :class:`TimelineView` — the unified query API over live, replay, and
  on-disk recordings: ``history("x")``, ``calls("f", returned=...)``,
  ``where(predicate)``, ``changes_between(i, j)``, ``at(k)``, plus the
  navigation calls (``goto`` / ``backward_*``) that used to be sprayed
  across :class:`Tracker`. Obtain one with ``tracker.timeline_view()``
  or ``TimelineView.open(path)`` (a ``.timeline.json``, a PT trace, or a
  ``.tracedir/``).

A small expression grammar (:func:`parse_query`) backs the CLI and the MI
``-timeline-query`` command: ``x changed``, ``f() == INVALID``,
``len(heap) > 100``, ``x >= 7``. Queries that the index can answer are
pushed down to it; value predicates fall back to a streaming
reconstruction scan.
"""

from __future__ import annotations

import json
import mmap
import os
import re
from bisect import bisect_right, insort
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

from repro.core.errors import TraceStoreError, TrackerError
from repro.core.state import AbstractType, value_from_dict
from repro.core.timeline import (
    EVENT_CALL,
    EVENT_EXIT,
    EVENT_RETURN,
    StateSnapshot,
    Timeline,
    diff_tree,
    load_timeline,
    trees_equal,
)

MANIFEST_NAME = "manifest.json"
TRACEDIR_FORMAT = "repro-tracedir"
TRACEDIR_VERSION = 1


# ---------------------------------------------------------------------------
# Change extraction: which variables does one delta patch touch?
# ---------------------------------------------------------------------------
#
# Variable ids use the watchpoint grammar: a plain name is a global, a
# ``function:name`` id is a local of ``function``. The fast path reads the
# patch alone (its ``set``/``del``/``sub`` keys *are* the changed names);
# only when the innermost frame's identity shifts (a call or return
# re-roots the frame chain, so the structural diff compares unrelated
# frames) does extraction fall back to comparing the two flattened
# variable maps — still only the visible variables, never the inferior.


def _flatten_frame_vars(frame_tree: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """``function:name`` → value tree over a whole frame chain.

    Innermost occurrence wins for recursive frames, matching
    :meth:`StateSnapshot.lookup`.
    """
    flat: Dict[str, Any] = {}
    while frame_tree:
        name = frame_tree.get("name") or "?"
        for var, data in (frame_tree.get("variables") or {}).items():
            flat.setdefault(f"{name}:{var}", (data or {}).get("value"))
        frame_tree = frame_tree.get("parent")
    return flat


def _flatten_vars(tree: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """All visible variables of a snapshot tree, by variable id."""
    if not tree:
        return {}
    flat = _flatten_frame_vars(tree.get("frame"))
    for var, data in (tree.get("globals") or {}).items():
        flat.setdefault(var, (data or {}).get("value"))
    return flat


def _map_diff(old: Dict[str, Any], new: Dict[str, Any]) -> Set[str]:
    changed = set()
    for key in old.keys() | new.keys():
        if key not in old or key not in new:
            changed.add(key)
        elif not trees_equal(old[key], new[key]):
            changed.add(key)
    return changed


def _dict_patch_keys(patch: Any) -> Optional[Set[str]]:
    """Changed keys named by a dict patch, or ``None`` if unreadable."""
    if not isinstance(patch, dict) or "$d" not in patch:
        return None
    edit = patch["$d"]
    keys: Set[str] = set(edit.get("set", {}))
    keys.update(edit.get("del", ()))
    keys.update(edit.get("sub", {}))
    return keys


def _frame_changes(
    prev: Optional[Dict[str, Any]],
    new: Optional[Dict[str, Any]],
    patch: Any,
) -> Set[str]:
    if patch is None:
        return set()
    if (
        prev is None
        or new is None
        or not isinstance(patch, dict)
        or "$d" not in patch
    ):
        # The chain was re-rooted (call/return/exit): structural patch
        # keys compare unrelated frames, so diff the flattened maps.
        return _map_diff(_flatten_frame_vars(prev), _flatten_frame_vars(new))
    edit = patch["$d"]
    sub = edit.get("sub", {})
    if "name" in sub or "depth" in sub or edit.get("set") or edit.get("del"):
        return _map_diff(_flatten_frame_vars(prev), _flatten_frame_vars(new))
    changed: Set[str] = set()
    variables = sub.get("variables")
    if variables is not None:
        names = _dict_patch_keys(variables)
        if names is None:
            return _map_diff(
                _flatten_frame_vars(prev), _flatten_frame_vars(new)
            )
        frame_name = new.get("name") or "?"
        changed.update(f"{frame_name}:{name}" for name in names)
    parent = sub.get("parent")
    if parent is not None:
        changed |= _frame_changes(
            prev.get("parent"), new.get("parent"), parent
        )
    return changed


def changed_variable_ids(
    prev_tree: Optional[Dict[str, Any]],
    tree: Dict[str, Any],
    patch: Any,
) -> Set[str]:
    """Variable ids whose value differs between two snapshot trees.

    ``patch`` is the :func:`diff_tree` of ``prev_tree`` against ``tree``
    (the one the timeline computed for storage); pass ``None`` with
    ``prev_tree=None`` for the first snapshot, where every visible
    variable counts as newly changed.
    """
    if prev_tree is None:
        return set(_flatten_vars(tree))
    if patch is None:
        return set()
    if not isinstance(patch, dict) or "$d" not in patch:
        return _map_diff(_flatten_vars(prev_tree), _flatten_vars(tree))
    sub = patch["$d"].get("sub", {})
    changed: Set[str] = set()
    if "globals" in sub:
        names = _dict_patch_keys(sub["globals"])
        if names is None:
            changed |= _map_diff(
                prev_tree.get("globals") or {}, tree.get("globals") or {}
            )
        else:
            changed |= names
    if "frame" in sub:
        changed |= _frame_changes(
            prev_tree.get("frame"), tree.get("frame"), sub["frame"]
        )
    return changed


def _render_value_tree(data: Any) -> Optional[str]:
    """Human rendering of a serialized value tree, references chased."""
    if data is None:
        return None
    try:
        value = value_from_dict(data)
    except (KeyError, TypeError, ValueError):
        return None
    seen = 0
    while value.abstract_type is AbstractType.REF and seen < 64:
        value = value.content
        seen += 1
    return value.render()


def _render_reason_payload(payload: Any) -> Optional[str]:
    """Rendered form of a pause reason's return-value payload."""
    if payload is None:
        return None
    if isinstance(payload, dict) and "$value" in payload:
        return _render_value_tree(payload["$value"])
    return str(payload)


# ---------------------------------------------------------------------------
# TraceIndex: the inverted index
# ---------------------------------------------------------------------------


class TraceIndex:
    """Inverted index over a recording, maintained incrementally.

    Three maps, all keyed for the query API:

    - variable id → sorted snapshot indices where its value changed
      (plain names are globals, ``function:name`` ids are locals);
    - function name → call records (``call``/``return`` snapshot indices
      plus the rendered return value), in call order;
    - pause-reason type → sorted snapshot indices.

    Fed by :meth:`observe` — from a :meth:`Timeline.add_append_listener`
    hook at record time, or by :meth:`TimelineView.ensure_index` scanning
    an already-stored recording (both paths see identical patches, so the
    resulting indexes are identical).
    """

    VERSION = 1

    def __init__(self) -> None:
        self._changes: Dict[str, List[int]] = {}
        #: basename → variable ids, so ``history("x")`` finds ``f:x`` too.
        self._basenames: Dict[str, Set[str]] = {}
        self._calls: Dict[str, List[Dict[str, Any]]] = {}
        self._open_calls: Dict[str, List[int]] = {}
        self._reasons: Dict[str, List[int]] = {}
        self._observed = 0
        #: undo journal for ``drop_last`` (index, var ids, reason, call op)
        self._journal: Optional[
            Tuple[int, Set[str], str, Optional[Tuple[str, str]]]
        ] = None

    # -- maintenance -----------------------------------------------------

    def observe(
        self,
        index: int,
        prev_tree: Optional[Dict[str, Any]],
        tree: Dict[str, Any],
        patch: Any,
    ) -> None:
        """Ingest one appended snapshot (tree + the stored delta patch)."""
        event = tree.get("event")
        frame = tree.get("frame")
        if event == EVENT_EXIT and frame is None:
            changed: Set[str] = set()
        else:
            changed = changed_variable_ids(prev_tree, tree, patch)
        for name in changed:
            self._changes.setdefault(name, []).append(index)
            base = name.rsplit(":", 1)[-1]
            self._basenames.setdefault(base, set()).add(name)
        reason = (tree.get("reason") or {}).get("type") or "step"
        self._reasons.setdefault(reason, []).append(index)
        call_op = self._observe_call(index, tree, event)
        self._observed = max(self._observed, index + 1)
        self._journal = (index, changed, reason, call_op)

    def _observe_call(
        self, index: int, tree: Dict[str, Any], event: Optional[str]
    ) -> Optional[Tuple[str, str]]:
        func = tree.get("func_name")
        if not func or event not in (EVENT_CALL, EVENT_RETURN):
            return None
        records = self._calls.setdefault(func, [])
        if event == EVENT_CALL:
            records.append(
                {
                    "function": func,
                    "call": index,
                    "return": None,
                    "returned": None,
                    "depth": tree.get("depth", 0),
                }
            )
            self._open_calls.setdefault(func, []).append(len(records) - 1)
            return ("call", func)
        open_stack = self._open_calls.get(func)
        if open_stack:
            record = records[open_stack.pop()]
        else:
            # Recording started mid-run: a return with no recorded call.
            record = {
                "function": func,
                "call": None,
                "return": None,
                "returned": None,
                "depth": tree.get("depth", 0),
            }
            records.append(record)
        record["return"] = index
        record["returned"] = _render_reason_payload(
            (tree.get("reason") or {}).get("return_value")
        )
        return ("return", func)

    def forget(self, index: int) -> bool:
        """Undo the most recent :meth:`observe` (``drop_last`` support)."""
        if self._journal is None or self._journal[0] != index:
            return False
        _, changed, reason, call_op = self._journal
        for name in changed:
            indices = self._changes.get(name)
            if indices and indices[-1] == index:
                indices.pop()
                if not indices:
                    del self._changes[name]
                    base = name.rsplit(":", 1)[-1]
                    self._basenames.get(base, set()).discard(name)
        indices = self._reasons.get(reason)
        if indices and indices[-1] == index:
            indices.pop()
        if call_op is not None:
            kind, func = call_op
            records = self._calls.get(func, [])
            if kind == "call" and records and records[-1].get("call") == index:
                records.pop()
                stack = self._open_calls.get(func)
                if stack and stack[-1] == len(records):
                    stack.pop()
            elif kind == "return":
                for position in range(len(records) - 1, -1, -1):
                    record = records[position]
                    if record.get("return") == index:
                        if record.get("call") is None:
                            records.pop(position)
                        else:
                            record["return"] = None
                            record["returned"] = None
                            self._open_calls.setdefault(func, []).append(
                                position
                            )
                        break
        self._journal = None
        return True

    # -- queries ---------------------------------------------------------

    @property
    def observed(self) -> int:
        """One past the highest snapshot index this index has ingested."""
        return self._observed

    def change_indices(self, name: str) -> List[int]:
        """Sorted snapshot indices where variable ``name`` changed.

        A plain name matches the global *and* any local of that name; a
        qualified ``function:name`` id matches exactly.
        """
        if ":" in name:
            return list(self._changes.get(name, ()))
        ids = set(self._basenames.get(name, ()))
        ids.add(name)
        merged: List[int] = []
        for var_id in ids:
            for index in self._changes.get(var_id, ()):
                insort(merged, index)
        # de-duplicate (an id set may alias, and merged inserts keep order)
        deduped: List[int] = []
        for index in merged:
            if not deduped or deduped[-1] != index:
                deduped.append(index)
        return deduped

    def call_records(self, function: str) -> List[Dict[str, Any]]:
        """Call records of ``function``, in call order (copies)."""
        return [dict(record) for record in self._calls.get(function, ())]

    def reason_indices(self, reason: str) -> List[int]:
        """Sorted snapshot indices paused for ``reason`` (type value)."""
        return list(self._reasons.get(reason, ()))

    def variables(self) -> List[str]:
        """Every indexed variable id, sorted."""
        return sorted(self._changes)

    def functions(self) -> List[str]:
        """Every function with recorded call/return pauses, sorted."""
        return sorted(self._calls)

    # -- (de)serialization ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.VERSION,
            "observed": self._observed,
            "changes": self._changes,
            "calls": self._calls,
            "open_calls": self._open_calls,
            "reasons": self._reasons,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceIndex":
        index = cls()
        try:
            index._observed = int(data.get("observed", 0))
            index._changes = {
                name: [int(i) for i in indices]
                for name, indices in data.get("changes", {}).items()
            }
            index._calls = {
                func: [dict(record) for record in records]
                for func, records in data.get("calls", {}).items()
            }
            index._open_calls = {
                func: [int(i) for i in stack]
                for func, stack in data.get("open_calls", {}).items()
            }
            index._reasons = {
                reason: [int(i) for i in indices]
                for reason, indices in data.get("reasons", {}).items()
            }
        except (TypeError, ValueError, AttributeError) as error:
            raise TraceStoreError(f"corrupt trace index: {error}") from error
        for name in index._changes:
            base = name.rsplit(":", 1)[-1]
            index._basenames.setdefault(base, set()).add(name)
        return index


# ---------------------------------------------------------------------------
# SegmentSpool: the .tracedir/ disk layout
# ---------------------------------------------------------------------------


class SegmentSpool:
    """Disk half of the trace store: ``manifest.json`` + segment blobs.

    Layout of a ``.tracedir/``::

        manifest.json        {format, version, count, timeline: {...},
                              segments: [{file, base, count}, ...],
                              index: {...} | null}
        segment-00000.json   {"key": <full tree>, "deltas": [patch, ...]}
        segment-00001.json   ...

    Each segment file is a keyframe-led segment exactly as the in-memory
    timeline stores it; files are read back through ``mmap`` and parsed
    lazily, with a small LRU of decoded segments, so opening a 10k-pause
    recording costs one manifest read until a query touches history.
    """

    _CACHE_SEGMENTS = 4

    def __init__(self, path: str, create: bool = False) -> None:
        self.path = path
        self._segments: List[Dict[str, Any]] = []
        self._meta: Dict[str, Any] = {}
        self._index_data: Optional[Dict[str, Any]] = None
        self._count = 0
        self._cache: "OrderedDict[int, Tuple[int, Dict[str, Any]]]" = (
            OrderedDict()
        )
        if create:
            os.makedirs(path, exist_ok=True)
            self._write_manifest()
        else:
            self._read_manifest()

    # -- manifest --------------------------------------------------------

    @classmethod
    def open(cls, path: str) -> "SegmentSpool":
        """Open an existing ``.tracedir/`` (typed errors on corruption)."""
        return cls(path, create=False)

    def _manifest_path(self) -> str:
        return os.path.join(self.path, MANIFEST_NAME)

    def _read_manifest(self) -> None:
        manifest_path = self._manifest_path()
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except OSError as error:
            raise TraceStoreError(
                f"cannot open trace store {self.path!r}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise TraceStoreError(
                f"corrupt trace-store manifest {manifest_path!r}: {error}"
            ) from error
        if not isinstance(manifest, dict) or manifest.get("format") != TRACEDIR_FORMAT:
            raise TraceStoreError(
                f"{manifest_path!r} is not a repro trace-store manifest"
            )
        try:
            self._segments = [
                {
                    "file": str(entry["file"]),
                    "base": int(entry["base"]),
                    "count": int(entry["count"]),
                }
                for entry in manifest.get("segments", [])
            ]
            self._count = int(manifest.get("count", 0))
        except (KeyError, TypeError, ValueError) as error:
            raise TraceStoreError(
                f"corrupt trace-store manifest {manifest_path!r}: {error}"
            ) from error
        self._meta = dict(manifest.get("timeline") or {})
        index_data = manifest.get("index")
        self._index_data = index_data if isinstance(index_data, dict) else None

    def _write_manifest(self) -> None:
        manifest = {
            "format": TRACEDIR_FORMAT,
            "version": TRACEDIR_VERSION,
            "count": self._count,
            "timeline": self._meta,
            "segments": self._segments,
            "index": self._index_data,
        }
        path = self._manifest_path()
        temp = path + ".tmp"
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, separators=(",", ":"))
        os.replace(temp, path)

    # -- record side -----------------------------------------------------

    def spill(self, segment: Dict[str, Any], base: int) -> None:
        """Persist one evicted segment (called by :meth:`Timeline._evict`)."""
        count = 1 + len(segment["deltas"])
        filename = f"segment-{len(self._segments):05d}.json"
        with open(
            os.path.join(self.path, filename), "w", encoding="utf-8"
        ) as handle:
            json.dump(segment, handle, separators=(",", ":"))
        self._segments.append(
            {"file": filename, "base": base, "count": count}
        )
        self._count = max(self._count, base + count)
        self._write_manifest()

    def finalize(
        self, timeline: Timeline, index: Optional[TraceIndex]
    ) -> None:
        """Flush the timeline's in-memory tail and seal the manifest.

        After this, :meth:`open` / :meth:`TimelineView.open` see the full
        recording (spilled segments + tail) plus the serialized index.
        """
        base = timeline.start_index
        for segment in timeline._segments:
            self.spill(segment, base)
            base += 1 + len(segment["deltas"])
        self._count = max(self._count, len(timeline))
        self._meta = {
            "program": timeline.program,
            "backend": timeline.backend,
            "source": timeline.source,
            "keyframe_interval": timeline.keyframe_interval,
            "max_snapshots": timeline.max_snapshots,
        }
        self._index_data = index.to_dict() if index is not None else None
        self._write_manifest()

    # -- read side -------------------------------------------------------

    @property
    def first_index(self) -> Optional[int]:
        """Global index of the oldest spilled snapshot (None if empty)."""
        return self._segments[0]["base"] if self._segments else None

    @property
    def count(self) -> int:
        return self._count

    @property
    def timeline_meta(self) -> Dict[str, Any]:
        return dict(self._meta)

    @property
    def index_data(self) -> Optional[Dict[str, Any]]:
        return self._index_data

    def load(self, global_index: int) -> Tuple[int, Dict[str, Any]]:
        """``(base, segment)`` of the spilled segment holding an index."""
        bases = [entry["base"] for entry in self._segments]
        position = bisect_right(bases, global_index) - 1
        if position < 0:
            raise TraceStoreError(
                f"snapshot {global_index} precedes the spilled window"
            )
        entry = self._segments[position]
        if global_index >= entry["base"] + entry["count"]:
            raise TraceStoreError(
                f"snapshot {global_index} falls in a gap of the spilled "
                f"window (segment {entry['file']} ends at "
                f"{entry['base'] + entry['count'] - 1})"
            )
        cached = self._cache.get(position)
        if cached is not None:
            self._cache.move_to_end(position)
            return cached
        segment = self._read_segment(entry["file"])
        self._cache[position] = (entry["base"], segment)
        while len(self._cache) > self._CACHE_SEGMENTS:
            self._cache.popitem(last=False)
        return entry["base"], segment

    def _read_segment(self, filename: str) -> Dict[str, Any]:
        path = os.path.join(self.path, filename)
        try:
            with open(path, "rb") as handle:
                with mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                ) as mapped:
                    segment = json.loads(mapped[:])
        except (OSError, ValueError) as error:
            raise TraceStoreError(
                f"corrupt trace-store segment {path!r}: {error}"
            ) from error
        if (
            not isinstance(segment, dict)
            or "key" not in segment
            or not isinstance(segment.get("deltas"), list)
        ):
            raise TraceStoreError(
                f"corrupt trace-store segment {path!r}: not a segment blob"
            )
        return segment

    def all_segments(self) -> List[Dict[str, Any]]:
        """Every spilled segment, decoded, oldest first (for full dumps)."""
        return [
            self._read_segment(entry["file"]) for entry in self._segments
        ]


def open_spooled_timeline(path: str) -> Timeline:
    """A lazily-loading :class:`Timeline` over a ``.tracedir/``.

    Nothing is held in memory: every reconstruction goes through the
    spool's segment cache. The timeline is read-only (it was sealed by
    :meth:`TraceStore.close`).
    """
    spool = SegmentSpool.open(path)
    meta = spool.timeline_meta
    timeline = Timeline(
        keyframe_interval=int(meta.get("keyframe_interval") or 16),
        max_snapshots=meta.get("max_snapshots"),
        program=meta.get("program") or "",
        source=meta.get("source") or "",
        backend=meta.get("backend") or "",
    )
    timeline._count = spool.count
    timeline._start_index = spool.count
    timeline.attach_spool(spool)
    if timeline.retained == 0:
        raise TraceStoreError(f"trace store {path!r} holds no snapshots")
    return timeline


class TraceStore:
    """Record-side orchestration: spool + index attached to one timeline.

    Created by :meth:`Tracker.enable_recording(tracedir=...)`; eviction
    from the timeline's ring buffer spills into the store as the run
    proceeds, and :meth:`close` seals the directory (tail segments +
    manifest + serialized index) for later :meth:`TimelineView.open`.
    """

    def __init__(
        self,
        path: str,
        timeline: Timeline,
        index: Optional[TraceIndex] = None,
    ) -> None:
        self.path = path
        self.timeline = timeline
        self.index = index
        self.spool = SegmentSpool(path, create=True)
        timeline.attach_spool(self.spool)
        self._closed = False

    def close(self) -> str:
        """Seal the store; returns its path. Idempotent.

        The timeline's in-memory tail is handed to the spool, so after
        closing, every reconstruction (and ``to_dict``) reads from disk —
        no segment is counted twice.
        """
        if not self._closed:
            self.spool.finalize(self.timeline, self.index)
            self.timeline._segments = []
            self.timeline._start_index = self.timeline._count
            self.timeline._cursor = None
            self._closed = True
        return self.path


# ---------------------------------------------------------------------------
# The query grammar
# ---------------------------------------------------------------------------

_IDENT = r"[A-Za-z_][A-Za-z_0-9]*(?::[A-Za-z_][A-Za-z_0-9]*)?"
_OPS = ("==", "!=", "<=", ">=", "<", ">")
_QUERY_PATTERNS = [
    (
        "changed",
        re.compile(rf"^\s*(?P<name>{_IDENT})\s+changed\s*$"),
    ),
    (
        "calls",
        re.compile(
            rf"^\s*(?P<name>{_IDENT})\s*\(\s*\)\s*"
            r"(?P<op>==|!=|<=|>=|<|>)\s*(?P<lit>.+?)\s*$"
        ),
    ),
    (
        "len",
        re.compile(
            rf"^\s*len\s*\(\s*(?P<name>{_IDENT})\s*\)\s*"
            r"(?P<op>==|!=|<=|>=|<|>)\s*(?P<lit>.+?)\s*$"
        ),
    ),
    (
        "var",
        re.compile(
            rf"^\s*(?P<name>{_IDENT})\s*"
            r"(?P<op>==|!=|<=|>=|<|>)\s*(?P<lit>.+?)\s*$"
        ),
    ),
]


@dataclass
class Query:
    """A parsed trace query (see :func:`parse_query`)."""

    kind: str  # "changed" | "calls" | "len" | "var"
    name: str
    op: Optional[str] = None
    literal: Optional[str] = None
    text: str = ""


def parse_query(text: str) -> Query:
    """Parse one query expression.

    Grammar::

        <var> changed                   when did <var> change?
        <func>() <op> <literal>         calls of <func> by return value
        len(<var>) <op> <number>        aggregate-size predicate
        <var> <op> <literal>            value predicate

    ``<op>`` is one of ``== != < <= > >=``; ``<var>`` is a global name or
    a ``function:name`` local id; literals are numbers, quoted strings,
    or bare words (``INVALID`` matches invalid values).
    """
    for kind, pattern in _QUERY_PATTERNS:
        match = pattern.match(text)
        if match is not None:
            groups = match.groupdict()
            return Query(
                kind=kind,
                name=groups["name"],
                op=groups.get("op"),
                literal=groups.get("lit"),
                text=text.strip(),
            )
    raise TraceStoreError(
        f"cannot parse query {text!r} (expected '<var> changed', "
        "'<func>() == <value>', 'len(<var>) > N', or '<var> <op> <value>')"
    )


def _strip_quotes(text: str) -> str:
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    return text


def _as_number(text: Optional[str]) -> Optional[float]:
    if text is None:
        return None
    try:
        return float(text)
    except ValueError:
        return None


def _compare(actual: Optional[str], op: str, literal: str) -> bool:
    """Compare a rendered value against a query literal.

    Numbers compare numerically; everything else compares as strings
    after quote normalization (so ``'abc'`` matches ``"abc"`` and the
    rendered ``'abc'`` alike). The bare word ``INVALID`` matches the
    rendering of invalid values.
    """
    if actual is None:
        return False
    literal = literal.strip()
    if literal.upper() == "INVALID":
        literal = "<invalid>"
    actual_number = _as_number(actual)
    literal_number = _as_number(_strip_quotes(literal))
    if actual_number is not None and literal_number is not None:
        left, right = actual_number, literal_number
    else:
        left, right = _strip_quotes(actual), _strip_quotes(literal)
        if op not in ("==", "!="):
            # Ordered comparison needs numbers on both sides.
            return False
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


# ---------------------------------------------------------------------------
# TimelineView: the unified query API
# ---------------------------------------------------------------------------


@dataclass
class ChangeEvent:
    """One value-change event of a variable (a ``history()`` element)."""

    index: int
    variable: str
    value: Optional[str]
    line: Optional[int]
    function: Optional[str]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "variable": self.variable,
            "value": self.value,
            "line": self.line,
            "function": self.function,
        }


@dataclass
class CallRecord:
    """One recorded call of a tracked function (a ``calls()`` element)."""

    function: str
    call_index: Optional[int]
    return_index: Optional[int]
    returned: Optional[str]
    depth: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "function": self.function,
            "call_index": self.call_index,
            "return_index": self.return_index,
            "returned": self.returned,
            "depth": self.depth,
        }


@dataclass
class QueryResult:
    """Structured result of :meth:`TimelineView.query` (CLI/MI payload)."""

    kind: str
    text: str
    matches: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "query": self.text, "matches": self.matches}

    @property
    def indices(self) -> List[int]:
        seen: List[int] = []
        for match in self.matches:
            for key in ("index", "return_index", "call_index"):
                value = match.get(key)
                if value is not None:
                    if not seen or seen[-1] != value:
                        seen.append(value)
                    break
        return seen


class TimelineView:
    """One object that owns a recording: query it, navigate it.

    Unifies the three places a recording can live:

    - **live**: ``tracker.timeline_view()`` over the recorder's timeline
      (bound to the tracker, so the navigation calls move its time-travel
      cursor);
    - **replay**: the same call on a :class:`ReplayTracker`;
    - **on disk**: ``TimelineView.open(path)`` over a ``.timeline.json``,
      a PT trace, or a spilled ``.tracedir/`` (loaded lazily).

    Queries use the :class:`TraceIndex` when one was maintained at record
    time (or persisted in the tracedir manifest); otherwise
    :meth:`ensure_index` builds one by scanning the recording once.
    """

    def __init__(
        self,
        timeline: Timeline,
        index: Optional[TraceIndex] = None,
        tracker: Optional[Any] = None,
    ) -> None:
        if timeline is None:
            raise TrackerError(
                "no timeline recorded; call enable_recording() first"
            )
        self.timeline = timeline
        self._index = index
        self._tracker = tracker

    @classmethod
    def open(cls, path: str) -> "TimelineView":
        """Open a saved recording: ``.timeline.json``, PT trace, or
        ``.tracedir/`` (whose persisted index is reused)."""
        if os.path.isdir(path):
            timeline = open_spooled_timeline(path)
            index_data = timeline.spool.index_data
            index = (
                TraceIndex.from_dict(index_data)
                if index_data is not None
                else None
            )
            return cls(timeline, index=index)
        if not os.path.exists(path):
            raise TraceStoreError(f"no such recording: {path}")
        return cls(load_timeline(path))

    # -- geometry --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.timeline)

    @property
    def first_index(self) -> int:
        """Oldest reconstructable snapshot index."""
        return self.timeline.first_index

    @property
    def last_index(self) -> int:
        """Newest snapshot index."""
        return len(self.timeline) - 1

    def at(self, index: int) -> StateSnapshot:
        """The :class:`StateSnapshot` at global ``index`` (negatives ok)."""
        return self.timeline.snapshot(index)

    # -- index -----------------------------------------------------------

    def ensure_index(self) -> TraceIndex:
        """The recording's :class:`TraceIndex`, building it if absent.

        The build replays the stored delta stream once (same patches the
        record-time maintenance saw), so a scan-built index is identical
        to an incrementally-maintained one.
        """
        index = self._index
        if index is not None and index.observed >= len(self.timeline):
            return index
        if index is None:
            index = TraceIndex()
        previous: Optional[Dict[str, Any]] = None
        start = max(self.first_index, index.observed)
        if start > self.first_index:
            previous = self.timeline._tree_at(start - 1)
        elif start > 0:
            # The window was ring-evicted: treat the oldest retained
            # snapshot as the first observation.
            previous = None
        for position in range(start, len(self.timeline)):
            tree = self.timeline._tree_at(position)
            patch = diff_tree(previous, tree) if previous is not None else None
            index.observe(position, previous, tree, patch)
            previous = tree
        self._index = index
        return index

    @property
    def index(self) -> Optional[TraceIndex]:
        """The index if one exists (``None`` before :meth:`ensure_index`)."""
        return self._index

    # -- queries ---------------------------------------------------------

    def history(self, name: str) -> List[ChangeEvent]:
        """Every recorded value change of variable ``name``, in order.

        A plain name covers the global and any same-named local; use the
        watchpoint grammar (``function:name``) to scope to one function.
        The first snapshot where a variable is visible counts as its
        first change.
        """
        function, var = self._split_id(name)
        events: List[ChangeEvent] = []
        for position in self.ensure_index().change_indices(name):
            snapshot = self.at(position)
            variable = snapshot.lookup(var, function)
            rendered = None
            if variable is not None:
                rendered = _render_value_tree_from_value(variable.value)
            events.append(
                ChangeEvent(
                    index=position,
                    variable=name,
                    value=rendered,
                    line=snapshot.line,
                    function=snapshot.func_name,
                )
            )
        return events

    def last_change(self, name: str) -> Optional[ChangeEvent]:
        """The most recent change of ``name`` ("when did x last change?")."""
        events = self.history(name)
        return events[-1] if events else None

    def calls(
        self, function: str, returned: Optional[str] = None
    ) -> List[CallRecord]:
        """Recorded calls of ``function`` (requires call/return pauses,
        i.e. ``track_function``), optionally filtered by return value.

        ``returned`` compares against the rendered return value with the
        query-literal semantics (numbers numerically, ``"INVALID"``
        matches invalid values).
        """
        records = [
            CallRecord(
                function=record["function"],
                call_index=record.get("call"),
                return_index=record.get("return"),
                returned=record.get("returned"),
                depth=record.get("depth", 0),
            )
            for record in self.ensure_index().call_records(function)
        ]
        if returned is None:
            return records
        return [
            record
            for record in records
            if _compare(record.returned, "==", str(returned))
        ]

    def where(
        self, predicate: Union[str, Callable[[StateSnapshot], bool]]
    ) -> List[int]:
        """Snapshot indices satisfying ``predicate``.

        A string predicate goes through :func:`parse_query` — indexable
        forms (``x changed``, ``f() == v``) are answered from the
        inverted index; value predicates stream-reconstruct the recording
        (sequential cursor, so the scan is one delta replay). A callable
        receives each :class:`StateSnapshot`.
        """
        if isinstance(predicate, str):
            return self.query(predicate).indices
        matched: List[int] = []
        for position in range(self.first_index, len(self.timeline)):
            if predicate(self.at(position)):
                matched.append(position)
        return matched

    def changes_between(self, start: int, end: int) -> Dict[str, Any]:
        """Change-point diff: what changed between snapshots i and j.

        Returns ``{"variables": {id: {"old": r, "new": r}}, "from": i,
        "to": j, ...}`` with rendered old/new values (``None`` for a
        variable absent on that side), plus position movement.
        """
        count = len(self.timeline)
        if start < 0:
            start += count
        if end < 0:
            end += count
        if start > end:
            start, end = end, start
        old_tree = self.timeline._tree_at(start)
        new_tree = self.timeline._tree_at(end)
        old_vars = _flatten_vars(old_tree)
        new_vars = _flatten_vars(new_tree)
        variables: Dict[str, Any] = {}
        for name in sorted(_map_diff(old_vars, new_vars)):
            variables[name] = {
                "old": _render_value_tree(
                    (old_vars.get(name) or None)
                ),
                "new": _render_value_tree(
                    (new_vars.get(name) or None)
                ),
            }
        return {
            "from": start,
            "to": end,
            "variables": variables,
            "line": {
                "old": old_tree.get("line"),
                "new": new_tree.get("line"),
            },
            "function": {
                "old": old_tree.get("func_name"),
                "new": new_tree.get("func_name"),
            },
        }

    def query(self, text: str) -> QueryResult:
        """Run one grammar query; returns a structured result."""
        query = parse_query(text)
        if query.kind == "changed":
            return QueryResult(
                kind="history",
                text=query.text,
                matches=[event.to_dict() for event in self.history(query.name)],
            )
        if query.kind == "calls":
            matches = [
                record.to_dict()
                for record in self.calls(query.name)
                if _compare(record.returned, query.op, query.literal)
            ]
            return QueryResult(kind="calls", text=query.text, matches=matches)
        # Value predicates: stream over the recording.
        function, var = self._split_id(query.name)
        use_len = query.kind == "len"
        matches = []
        for position in range(self.first_index, len(self.timeline)):
            snapshot = self.at(position)
            actual = _predicate_value(snapshot, var, function, use_len)
            if actual is not None and _compare(
                actual, query.op, query.literal
            ):
                matches.append(
                    {
                        "index": position,
                        "variable": query.name,
                        "value": actual,
                        "line": snapshot.line,
                        "function": snapshot.func_name,
                    }
                )
        return QueryResult(kind="where", text=query.text, matches=matches)

    @staticmethod
    def _split_id(name: str) -> Tuple[Optional[str], str]:
        if ":" in name:
            function, _, var = name.partition(":")
            return (function or None), var
        return None, name

    # -- navigation (bound views) ---------------------------------------

    def _require_tracker(self) -> Any:
        if self._tracker is None:
            raise TrackerError(
                "this view is not bound to a tracker; open it with "
                "tracker.timeline_view() to navigate"
            )
        return self._tracker

    @property
    def position(self) -> int:
        """Global index of the bound tracker's current snapshot."""
        return self._require_tracker()._timeline_position()

    def goto(self, index: int) -> StateSnapshot:
        """Jump the bound tracker to the snapshot at global ``index``."""
        return self._require_tracker()._goto(index)

    def backward_step(self) -> None:
        """Rewind the bound tracker to the previous recorded pause."""
        self._require_tracker()._backward("step")

    def backward_next(self) -> None:
        """Rewind to the previous pause at the same depth or shallower."""
        self._require_tracker()._backward("next")

    def backward_finish(self) -> None:
        """Rewind to the previous pause in a caller (shallower depth)."""
        self._require_tracker()._backward("finish")

    def backward_resume(self) -> None:
        """Rewind to the previous control-point pause."""
        self._require_tracker()._backward("resume")


def _render_value_tree_from_value(value: Any) -> Optional[str]:
    """Render a model :class:`Value`, chasing references first."""
    seen = 0
    while value is not None and value.abstract_type is AbstractType.REF and seen < 64:
        value = value.content
        seen += 1
    return value.render() if value is not None else None


def _predicate_value(
    snapshot: StateSnapshot,
    var: str,
    function: Optional[str],
    use_len: bool,
) -> Optional[str]:
    """The rendered comparand of a value predicate at one snapshot."""
    variable = snapshot.lookup(var, function)
    if variable is None:
        return None
    value = variable.value
    seen = 0
    while value.abstract_type is AbstractType.REF and seen < 64:
        value = value.content
        seen += 1
    if use_len:
        kind = value.abstract_type
        if kind in (
            AbstractType.LIST,
            AbstractType.DICT,
            AbstractType.STRUCT,
        ):
            return str(len(value.content))
        if kind is AbstractType.PRIMITIVE and isinstance(
            value.content, (str, bytes)
        ):
            return str(len(value.content))
        return None
    return value.render()
