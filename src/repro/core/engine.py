"""The control-point engine: one indexed, observable decision core.

Every tracker backend must answer the same question on every trace event:
*given the installed control points and the current step mode, should the
inferior pause here?* The seed implementations each answered it with a
linear scan over their private breakpoint lists — O(all control points)
per event, which is exactly the per-event overhead the paper's Section IV
measures on the hot path.

:class:`ControlPointEngine` centralizes that decision. It compiles the
control-point registries into indexed structures once (and again only when
a registry changes, tracked by a dirty flag):

- a ``frozenset`` of all breakpoint line numbers, so the common case
  ("this line has no breakpoint") is one O(1) membership test;
- per-line candidate buckets preserving installation order, so first-match
  semantics are identical to the seed's list scans;
- dict-keyed lookups for function breakpoints, tracked functions, and
  address breakpoints;
- a per-file "any control point here?" map, so the Python tracker can
  return ``None`` from its local trace function and skip whole frames;
- a step-mode/depth state machine shared by ``step``/``next``/``finish``;
- unified watchpoint change-detection over a backend-supplied fetch
  callback.

The engine is also the observability layer: :class:`TrackerStats` counts
events seen/suppressed per kind, pauses by reason, watchpoint evaluations
and pause latency, and is exposed uniformly through the inspection API
(:meth:`repro.core.tracker.Tracker.get_stats`), the MI server
(``-tracker-stats``) and the DAP adapter (``trackerStats`` request).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.core.tracker import (
        FunctionBreakpoint,
        LineBreakpoint,
        TrackedFunction,
        Watchpoint,
    )

__all__ = [
    "AddressBreakpoint",
    "ControlPointEngine",
    "TrackerStats",
    "split_variable_id",
]


@dataclass
class AddressBreakpoint:
    """A pause request before executing the instruction at ``address``.

    Used by the MI debug server for assembly inferiors (``-break-insert
    *0x...``) and by the GDB tracker's ret-scan exit breakpoints.
    """

    address: int
    maxdepth: Optional[int] = None
    enabled: bool = True
    #: Restrict to one inferior thread index (``None`` = any thread).
    thread: Optional[int] = None


def split_variable_id(variable_id: str) -> Tuple[Optional[str], str]:
    """Split a watch identifier into ``(function_or_None, variable_name)``.

    The syntax is ``name`` (global or current-frame variable) or
    ``function:name`` to scope the watch to one function's local. The
    function part may be dotted (``Class.method``). Edge cases handled:

    - an empty function part (``":x"``) means no function scope;
    - only the *first* scope colon splits (``"f:x:y"`` watches ``"x:y"``
      inside ``f``);
    - a colon inside brackets or quotes belongs to the variable path
      (``'d[":k"]'`` is an unscoped watch of a dict element).
    """
    separator = _find_scope_colon(variable_id)
    if separator < 0:
        return None, variable_id
    function = variable_id[:separator]
    name = variable_id[separator + 1:]
    if not function:
        return None, name
    return function, name


def _find_scope_colon(variable_id: str) -> int:
    """Index of the scope-separating colon, or -1 if there is none."""
    bracket_depth = 0
    quote: Optional[str] = None
    for index, char in enumerate(variable_id):
        if quote is not None:
            if char == quote:
                quote = None
            continue
        if char in "'\"":
            quote = char
        elif char == "[":
            bracket_depth += 1
        elif char == "]":
            bracket_depth = max(bracket_depth - 1, 0)
        elif char == ":" and bracket_depth == 0:
            # Only a plain (possibly dotted) identifier may be a function
            # scope; anything with path syntax before the colon is part of
            # the variable name itself.
            prefix = variable_id[:index]
            if prefix == "" or _is_dotted_identifier(prefix):
                return index
            return -1
    return -1


def _is_dotted_identifier(text: str) -> bool:
    return all(part.isidentifier() for part in text.split("."))


@dataclass
class TrackerStats:
    """Uniform observability counters for any tracker backend.

    Attributes:
        events_seen: trace events received by the backend, per event kind
            (``"line"``, ``"call"``, ``"return"``, ...).
        events_paused: events that resulted in a pause, per event kind.
        pauses: pauses taken, keyed by ``PauseReasonType`` value.
        watch_evaluations: individual watchpoint value fetches performed.
        recompiles: times the engine rebuilt its indexes (dirty-flag hits).
        last_pause_latency_ns: event-receipt-to-pause-decision time of the
            most recent pause, in nanoseconds.
        total_pause_latency_ns: sum of all pause decision latencies.
        interrupts: inferior interrupts delivered after a control-call
            deadline expired (the inferior paused instead of hanging).
        control_timeouts: control calls that raised ``ControlTimeout``
            because the interrupt itself failed to land.
        backend_restarts: debug-server restarts performed by the
            supervision layer after a backend crash.
        wedged_inferiors: inferior threads that survived ``terminate``'s
            grace period and were abandoned (tracker marked invalid).
        faults_injected: faults injected by the testing harness
            (:mod:`repro.testing.faults`).
        faults_recovered: injected faults the supervision layer recovered
            from (backend restarted, or inferior interrupted).
        settrace_tamperings: times the inferior disarmed or replaced the
            trace function (``sys.settrace(None)``) and the tracker's
            profile-hook guard detected it and re-armed tracing.
        output_chars_dropped: captured-stdout characters evicted from the
            bounded output ring (:class:`repro.core.ringbuffer.RingTextBuffer`).
        transport_lines_dropped: pipe lines evicted by the client
            transport's bounded stdout/stderr rings
            (:mod:`repro.mi.transport`) — a log-flooding child cannot grow
            client memory, but what it pushed out is counted here.
    """

    events_seen: Dict[str, int] = field(default_factory=dict)
    events_paused: Dict[str, int] = field(default_factory=dict)
    pauses: Dict[str, int] = field(default_factory=dict)
    watch_evaluations: int = 0
    recompiles: int = 0
    last_pause_latency_ns: int = 0
    total_pause_latency_ns: int = 0
    interrupts: int = 0
    control_timeouts: int = 0
    backend_restarts: int = 0
    wedged_inferiors: int = 0
    faults_injected: int = 0
    faults_recovered: int = 0
    settrace_tamperings: int = 0
    output_chars_dropped: int = 0
    transport_lines_dropped: int = 0

    @property
    def events_suppressed(self) -> Dict[str, int]:
        """Events that did *not* pause, per kind (seen minus paused)."""
        return {
            kind: count - self.events_paused.get(kind, 0)
            for kind, count in self.events_seen.items()
        }

    @property
    def pause_count(self) -> int:
        return sum(self.pauses.values())

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot (crosses the MI / DAP boundary)."""
        return {
            "events_seen": dict(self.events_seen),
            "events_suppressed": self.events_suppressed,
            "pauses": dict(self.pauses),
            "pause_count": self.pause_count,
            "watch_evaluations": self.watch_evaluations,
            "recompiles": self.recompiles,
            "last_pause_latency_ns": self.last_pause_latency_ns,
            "total_pause_latency_ns": self.total_pause_latency_ns,
            "interrupts": self.interrupts,
            "control_timeouts": self.control_timeouts,
            "backend_restarts": self.backend_restarts,
            "wedged_inferiors": self.wedged_inferiors,
            "faults_injected": self.faults_injected,
            "faults_recovered": self.faults_recovered,
            "settrace_tamperings": self.settrace_tamperings,
            "output_chars_dropped": self.output_chars_dropped,
            "transport_lines_dropped": self.transport_lines_dropped,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrackerStats":
        """Rebuild a stats snapshot from :meth:`to_dict` output."""
        stats = cls(
            events_seen={k: int(v) for k, v in data.get("events_seen", {}).items()},
            pauses={k: int(v) for k, v in data.get("pauses", {}).items()},
            watch_evaluations=int(data.get("watch_evaluations", 0)),
            recompiles=int(data.get("recompiles", 0)),
            last_pause_latency_ns=int(data.get("last_pause_latency_ns", 0)),
            total_pause_latency_ns=int(data.get("total_pause_latency_ns", 0)),
            interrupts=int(data.get("interrupts", 0)),
            control_timeouts=int(data.get("control_timeouts", 0)),
            backend_restarts=int(data.get("backend_restarts", 0)),
            wedged_inferiors=int(data.get("wedged_inferiors", 0)),
            faults_injected=int(data.get("faults_injected", 0)),
            faults_recovered=int(data.get("faults_recovered", 0)),
            settrace_tamperings=int(data.get("settrace_tamperings", 0)),
            output_chars_dropped=int(data.get("output_chars_dropped", 0)),
            transport_lines_dropped=int(
                data.get("transport_lines_dropped", 0)
            ),
        )
        suppressed = data.get("events_suppressed", {})
        stats.events_paused = {
            kind: count - int(suppressed.get(kind, 0))
            for kind, count in stats.events_seen.items()
        }
        return stats

    def merged(self, other: "TrackerStats") -> "TrackerStats":
        """Combine two stats snapshots (e.g. client-side plus server-side)."""
        merged = TrackerStats(
            events_seen=dict(self.events_seen),
            events_paused=dict(self.events_paused),
            pauses=dict(self.pauses),
            watch_evaluations=self.watch_evaluations + other.watch_evaluations,
            recompiles=self.recompiles + other.recompiles,
            last_pause_latency_ns=max(
                self.last_pause_latency_ns, other.last_pause_latency_ns
            ),
            total_pause_latency_ns=(
                self.total_pause_latency_ns + other.total_pause_latency_ns
            ),
            interrupts=self.interrupts + other.interrupts,
            control_timeouts=self.control_timeouts + other.control_timeouts,
            backend_restarts=self.backend_restarts + other.backend_restarts,
            wedged_inferiors=self.wedged_inferiors + other.wedged_inferiors,
            faults_injected=self.faults_injected + other.faults_injected,
            faults_recovered=self.faults_recovered + other.faults_recovered,
            settrace_tamperings=(
                self.settrace_tamperings + other.settrace_tamperings
            ),
            output_chars_dropped=(
                self.output_chars_dropped + other.output_chars_dropped
            ),
            transport_lines_dropped=(
                self.transport_lines_dropped + other.transport_lines_dropped
            ),
        )
        for kind, count in other.events_seen.items():
            merged.events_seen[kind] = merged.events_seen.get(kind, 0) + count
        for kind, count in other.events_paused.items():
            merged.events_paused[kind] = merged.events_paused.get(kind, 0) + count
        for reason, count in other.pauses.items():
            merged.pauses[reason] = merged.pauses.get(reason, 0) + count
        return merged


class ControlPointEngine:
    """Indexed pause decisions over the shared control-point registries.

    The engine owns the registry lists; :class:`repro.core.tracker.Tracker`
    aliases its public ``line_breakpoints``/... attributes to them, so
    appends made through the control interface and direct list manipulation
    (the DAP adapter clears and refills ``line_breakpoints``) both land
    here. Mutations must be followed by :meth:`mark_dirty` (the base
    tracker's ``_control_points_changed`` does this); ``enabled`` flips
    need no notification because enabled-ness is checked at match time.
    """

    def __init__(self) -> None:
        self.line_breakpoints: List[LineBreakpoint] = []
        self.function_breakpoints: List[FunctionBreakpoint] = []
        self.tracked_functions: List[TrackedFunction] = []
        self.watchpoints: List[Watchpoint] = []
        self.address_breakpoints: List[AddressBreakpoint] = []
        self.stats = TrackerStats()
        #: step-mode state machine: "resume", "step", "next" or "finish"
        self.mode: str = "resume"
        self.mode_depth: int = 0
        #: Thread index the step mode is scoped to (``None`` = any thread;
        #: multi-thread backends arm stepping for the paused thread only).
        self.mode_thread: Optional[int] = None
        self._dirty = True
        self._watch_snapshots: Dict[int, Optional[str]] = {}
        self._synced_ids: set = set()
        self._event_ns: int = 0
        self._event_kind: str = ""
        # Compiled indexes (rebuilt lazily by _recompile).
        self._bp_lines: FrozenSet[int] = frozenset()
        self._line_index: Dict[int, List[LineBreakpoint]] = {}
        self._function_index: Dict[str, List[FunctionBreakpoint]] = {}
        self._tracked_index: Dict[str, List[TrackedFunction]] = {}
        self._address_index: Dict[int, List[AddressBreakpoint]] = {}
        self._bp_files: Optional[FrozenSet[str]] = frozenset()
        self._has_watchpoints = False
        #: Callbacks fired after every index rebuild (dirty-flag hits).
        #: The sys.monitoring backend uses this to re-arm per-code-object
        #: event sets and restart ``DISABLE``d locations the moment the
        #: compiled indexes change underneath it.
        self._recompile_listeners: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def mark_dirty(self) -> None:
        """Note that a registry changed; indexes rebuild on next use."""
        self._dirty = True

    def add_recompile_listener(self, listener: Callable[[], None]) -> None:
        """Call ``listener`` after every index rebuild.

        Backends whose instrumentation is compiled from the indexes (the
        ``python-mon`` backend's per-code-object event sets) register here
        so a registry change propagates to the substrate the moment the
        dirty flag is serviced, wherever the triggering ``refresh`` ran.
        """
        self._recompile_listeners.append(listener)

    def refresh(self) -> None:
        """Rebuild the indexes if a registry changed since the last build."""
        if self._dirty:
            self._recompile()

    def _recompile(self) -> None:
        line_index: Dict[int, List[LineBreakpoint]] = {}
        files: Optional[set] = set()
        for breakpoint_ in self.line_breakpoints:
            line_index.setdefault(breakpoint_.line, []).append(breakpoint_)
            if breakpoint_.filename is None:
                # A file-agnostic breakpoint can fire anywhere: the per-file
                # skip map degenerates to "never skip".
                files = None
            elif files is not None:
                files.add(os.path.abspath(breakpoint_.filename))
                files.add(os.path.basename(breakpoint_.filename))
        function_index: Dict[str, List[FunctionBreakpoint]] = {}
        for breakpoint_ in self.function_breakpoints:
            function_index.setdefault(breakpoint_.function, []).append(breakpoint_)
        tracked_index: Dict[str, List[TrackedFunction]] = {}
        for tracked in self.tracked_functions:
            tracked_index.setdefault(tracked.function, []).append(tracked)
        address_index: Dict[int, List[AddressBreakpoint]] = {}
        for breakpoint_ in self.address_breakpoints:
            address_index.setdefault(breakpoint_.address, []).append(breakpoint_)
        self._line_index = line_index
        self._bp_lines = frozenset(line_index)
        self._bp_files = None if files is None else frozenset(files)
        self._function_index = function_index
        self._tracked_index = tracked_index
        self._address_index = address_index
        self._has_watchpoints = bool(self.watchpoints)
        self.stats.recompiles += 1
        self._dirty = False
        for listener in self._recompile_listeners:
            listener()

    # ------------------------------------------------------------------
    # Registry plumbing shared with protocol servers
    # ------------------------------------------------------------------

    def all_points(self) -> Iterator[Any]:
        """Every registered control point, in registry order."""
        yield from self.line_breakpoints
        yield from self.function_breakpoints
        yield from self.address_breakpoints
        yield from self.tracked_functions
        yield from self.watchpoints

    def clear(self) -> None:
        """Drop every control point (and the sync bookkeeping)."""
        self.line_breakpoints.clear()
        self.function_breakpoints.clear()
        self.tracked_functions.clear()
        self.watchpoints.clear()
        self.address_breakpoints.clear()
        self._synced_ids.clear()
        self.mark_dirty()

    def take_unsynced(self) -> List[Any]:
        """Control points added since the last call (for remote backends).

        The GDB tracker forwards each control point to its debug server
        exactly once; the engine tracks which have already crossed the
        pipe so re-syncs after new installs are incremental.
        """
        fresh = [
            point
            for point in self.all_points()
            if id(point) not in self._synced_ids
        ]
        for point in fresh:
            self._synced_ids.add(id(point))
        return fresh

    def reset_sync(self) -> None:
        """Forget which control points were synced (server restarted)."""
        self._synced_ids.clear()

    def resync_points(self) -> List[Any]:
        """The full registry, marked for a from-scratch re-install.

        The crash-recovery path uses this after a backend restart: the
        client-side registry index is the source of truth, so every
        control point is re-sent to the fresh server and the incremental
        sync bookkeeping starts over.
        """
        self.reset_sync()
        return self.take_unsynced()

    # ------------------------------------------------------------------
    # Step-mode state machine
    # ------------------------------------------------------------------

    def arm(
        self, mode: str, depth: int = 0, thread: Optional[int] = None
    ) -> None:
        """Enter a run mode: ``resume``, ``step``, ``next`` or ``finish``.

        ``depth`` is the frame depth at which the command was issued; it is
        the reference for ``next`` (pause at depth <= issue depth) and
        ``finish`` (pause at depth < issue depth). ``thread`` scopes the
        step mode to one inferior thread (multi-thread backends pass the
        paused thread's index so stepping does not complete in a sibling
        thread); ``None`` keeps the single-threaded semantics.
        """
        self.mode = mode
        self.mode_depth = depth
        self.mode_thread = thread

    def should_step_pause(self, depth: int, thread: int = 0) -> bool:
        """Whether the current step mode pauses at a line at ``depth``.

        ``thread`` is the event's inferior thread index; when the mode was
        armed for a specific thread, events from the others never complete
        the step.
        """
        mode = self.mode
        if self.mode_thread is not None and thread != self.mode_thread:
            return False
        if mode == "step":
            return True
        if mode == "next":
            return depth <= self.mode_depth
        if mode == "finish":
            return depth < self.mode_depth
        return False

    # ------------------------------------------------------------------
    # Event accounting
    # ------------------------------------------------------------------

    def note_event(self, kind: str) -> None:
        """Record receipt of one trace event (stats + latency baseline)."""
        seen = self.stats.events_seen
        seen[kind] = seen.get(kind, 0) + 1
        self._event_kind = kind
        self._event_ns = time.perf_counter_ns()

    def record_pause(self, reason_type: Any) -> None:
        """Record a pause decision for the most recent event."""
        latency = (
            time.perf_counter_ns() - self._event_ns if self._event_ns else 0
        )
        stats = self.stats
        key = getattr(reason_type, "value", str(reason_type))
        stats.pauses[key] = stats.pauses.get(key, 0) + 1
        if self._event_kind:
            paused = stats.events_paused
            paused[self._event_kind] = paused.get(self._event_kind, 0) + 1
        stats.last_pause_latency_ns = latency
        stats.total_pause_latency_ns += latency

    # ------------------------------------------------------------------
    # Pause decisions
    # ------------------------------------------------------------------

    @property
    def has_watchpoints(self) -> bool:
        """Whether any watchpoints are installed (enabled or not)."""
        return self._has_watchpoints

    @property
    def has_address_breakpoints(self) -> bool:
        return bool(self._address_index)

    @property
    def has_tracked_functions(self) -> bool:
        """Whether any tracked functions are installed (enabled or not)."""
        return bool(self._tracked_index)

    def lines_may_fire_in(self, filename: str) -> bool:
        """Whether any line breakpoint could fire in ``filename``.

        The per-file projection of the line index: ``True`` when a
        file-agnostic breakpoint exists or ``filename`` (by absolute path
        or basename) carries one. This is what the ``python-mon`` backend
        compiles into its per-code-object ``LINE`` event masks — line
        events are requested only where a line control point could match
        (stepping and watchpoints force them separately).
        """
        if self._bp_files is None:
            return True
        return (
            filename in self._bp_files
            or os.path.basename(filename) in self._bp_files
        )

    def may_match_line(self, line: int) -> bool:
        """O(1) fast reject: is there *any* breakpoint on this line?"""
        return line in self._bp_lines

    def may_match_function(self, function: str) -> bool:
        """O(1) fast reject for call events: any control point on it?"""
        return function in self._function_index or function in self._tracked_index

    def match_line(
        self, filename: Optional[str], line: int, depth: int, thread: int = 0
    ) -> Optional[LineBreakpoint]:
        """First enabled line breakpoint matching (file, line, depth, thread).

        ``filename`` is the executing file, or ``None`` for backends whose
        breakpoints are file-agnostic (the MI server, the PT tracker).
        ``thread`` is the event's inferior thread index; a breakpoint with
        ``thread=None`` matches events from any thread.
        """
        candidates = self._line_index.get(line)
        if candidates is None:
            return None
        for breakpoint_ in candidates:
            if not breakpoint_.enabled:
                continue
            if (
                filename is not None
                and breakpoint_.filename is not None
                and not _filename_matches(breakpoint_.filename, filename)
            ):
                continue
            if breakpoint_.maxdepth is not None and depth > breakpoint_.maxdepth:
                continue
            if (
                breakpoint_.thread is not None
                and breakpoint_.thread != thread
            ):
                continue
            return breakpoint_
        return None

    def match_function_breakpoint(
        self, function: str, depth: int, thread: int = 0
    ) -> Optional[FunctionBreakpoint]:
        """First enabled function breakpoint matching (function, depth)."""
        return _first_allowed(self._function_index.get(function), depth, thread)

    def match_tracked(
        self, function: str, depth: int, thread: int = 0
    ) -> Optional[TrackedFunction]:
        """First enabled tracked function matching (function, depth)."""
        return _first_allowed(self._tracked_index.get(function), depth, thread)

    def match_address(
        self, address: Optional[int], depth: int, thread: int = 0
    ) -> Optional[AddressBreakpoint]:
        """First enabled address breakpoint matching (pc, depth)."""
        if address is None:
            return None
        return _first_allowed(self._address_index.get(address), depth, thread)

    def can_skip_frame(self, filename: str, function: str) -> bool:
        """Whether a frame needs no local tracing at all.

        True only when nothing that requires per-line or return events can
        fire inside this frame *and* no later pause could re-arm stepping
        while the frame is still live: free-running mode, no watchpoints,
        no function breakpoints or tracked functions anywhere (either could
        pause in a nested call, after which ``finish``/``next`` would need
        line events in this already-untraced frame), and no line breakpoint
        targeting the frame's file.
        """
        if self.mode != "resume" or self._has_watchpoints:
            return False
        if self._function_index or self._tracked_index:
            return False
        return not self.lines_may_fire_in(filename)

    # ------------------------------------------------------------------
    # Watchpoints: unified value-change detection
    # ------------------------------------------------------------------

    def seed_watch(self, watchpoint: Watchpoint, value: Optional[str]) -> None:
        """Record a baseline value for one watchpoint (added mid-run)."""
        self._watch_snapshots[id(watchpoint)] = value

    def baseline_watches(
        self, fetch: Callable[[Optional[str], str], Optional[str]]
    ) -> None:
        """Record baselines for every watchpoint without firing any.

        Used by backends whose variables exist (initialized) before the
        first event — a watch fires on *modification*, not on the
        pre-existing initial value.
        """
        for watchpoint in self.watchpoints:
            function, name = split_variable_id(watchpoint.variable_id)
            self._watch_snapshots[id(watchpoint)] = fetch(function, name)
            self.stats.watch_evaluations += 1

    def evaluate_watches(
        self,
        depth: int,
        fetch: Callable[[Optional[str], str], Optional[str]],
        thread: int = 0,
    ) -> Optional[Tuple[Watchpoint, Optional[str], str]]:
        """Check every enabled watchpoint for a value change.

        Args:
            depth: current frame depth (for the maxdepth filter).
            fetch: backend callback resolving ``(function, name)`` to the
                variable's rendered value, or ``None`` when it is not
                currently visible.

        Returns:
            ``(watchpoint, old_value, new_value)`` for the first watchpoint
            whose value changed (``old_value`` is ``None`` on first
            sighting), or ``None``. Snapshots of watchpoints checked before
            a hit are updated; later ones keep their previous snapshot,
            matching the seed trackers' scan behaviour.
        """
        snapshots = self._watch_snapshots
        stats = self.stats
        for watchpoint in self.watchpoints:
            if not watchpoint.enabled:
                continue
            if watchpoint.thread is not None and watchpoint.thread != thread:
                # A thread-scoped watch is only *sampled* on its thread's
                # events; other threads must not consume its baseline.
                continue
            function, name = split_variable_id(watchpoint.variable_id)
            current = fetch(function, name)
            stats.watch_evaluations += 1
            key = id(watchpoint)
            previous = snapshots.get(key)
            snapshots[key] = current
            if current is None:
                continue
            if previous != current:
                if (
                    watchpoint.maxdepth is None
                    or depth <= watchpoint.maxdepth
                ):
                    return watchpoint, previous, current
        return None


def _first_allowed(
    candidates: Optional[List[Any]], depth: int, thread: int = 0
) -> Optional[Any]:
    if candidates is None:
        return None
    for point in candidates:
        if not point.enabled:
            continue
        if point.maxdepth is not None and depth > point.maxdepth:
            continue
        point_thread = getattr(point, "thread", None)
        if point_thread is not None and point_thread != thread:
            continue
        return point
    return None


def _filename_matches(requested: str, actual: str) -> bool:
    """The seed's filename matching: by absolute path or by basename."""
    return os.path.abspath(requested) == actual or os.path.basename(
        requested
    ) == os.path.basename(actual)
