"""Core of the library: state model, tracker API, pause reasons, factory."""

from repro.core.errors import (
    AlreadyTerminatedError,
    InferiorCrashError,
    NotPausedError,
    NotStartedError,
    ProgramLoadError,
    ProtocolError,
    TrackerError,
    UnknownFunctionError,
    UnknownVariableError,
)
from repro.core.engine import (
    AddressBreakpoint,
    ControlPointEngine,
    TrackerStats,
    split_variable_id,
)
from repro.core.factory import available_trackers, init_tracker, register_tracker
from repro.core.pause import PauseReason, PauseReasonType
from repro.core.state import (
    AbstractType,
    Frame,
    Location,
    Value,
    Variable,
    frame_from_dict,
    frame_to_dict,
    value_from_dict,
    value_to_dict,
    variable_from_dict,
    variable_to_dict,
)
from repro.core.tracker import (
    FunctionBreakpoint,
    LineBreakpoint,
    TrackedFunction,
    Tracker,
    Watchpoint,
)

__all__ = [
    "AbstractType",
    "AddressBreakpoint",
    "AlreadyTerminatedError",
    "ControlPointEngine",
    "Frame",
    "FunctionBreakpoint",
    "InferiorCrashError",
    "LineBreakpoint",
    "Location",
    "NotPausedError",
    "NotStartedError",
    "PauseReason",
    "PauseReasonType",
    "ProgramLoadError",
    "ProtocolError",
    "TrackedFunction",
    "Tracker",
    "TrackerError",
    "TrackerStats",
    "UnknownFunctionError",
    "UnknownVariableError",
    "Value",
    "Variable",
    "Watchpoint",
    "available_trackers",
    "frame_from_dict",
    "frame_to_dict",
    "init_tracker",
    "register_tracker",
    "split_variable_id",
    "value_from_dict",
    "value_to_dict",
    "variable_from_dict",
    "variable_to_dict",
]
