"""A bounded, file-like text ring for capturing inferior output.

The in-process Python tracker (and the subprocess Python MI server) swap
the inferior's ``sys.stdout`` for a capture buffer. An unbounded
``io.StringIO`` lets a hostile inferior — ``while True: print(x)`` — grow
the *tool's* memory without limit; this ring keeps only the newest
``limit`` characters and counts what it dropped, so ``get_output()`` stays
O(limit) and the drop is observable
(:attr:`repro.core.engine.TrackerStats.output_chars_dropped`) instead of
silent.
"""

from __future__ import annotations

import collections
import threading
from typing import Deque

#: Default capture bound: generous for teaching programs (1M characters),
#: tiny next to what an output bomb would otherwise allocate.
DEFAULT_OUTPUT_LIMIT = 1_000_000

#: Store the ring in chunks of at most this many characters so one giant
#: write cannot force a monolithic reallocation.
_CHUNK = 8192


class RingTextBuffer:
    """A ``write()``/``getvalue()`` text sink keeping the newest N chars.

    API-compatible with the slice of ``io.StringIO`` the trackers use
    (``write``, ``getvalue``, ``flush``), plus :attr:`dropped` — the total
    number of characters evicted so far. Thread-safe: the inferior thread
    writes while the tool thread reads.

    Args:
        limit: maximum characters retained; ``None`` means unbounded
            (behaves like StringIO, ``dropped`` stays 0).
    """

    def __init__(self, limit: int | None = DEFAULT_OUTPUT_LIMIT):
        if limit is not None and limit <= 0:
            raise ValueError(f"output limit must be positive, got {limit!r}")
        self.limit = limit
        self.dropped = 0
        self._chunks: Deque[str] = collections.deque()
        self._size = 0
        self._lock = threading.Lock()

    def write(self, text: str) -> int:
        if not isinstance(text, str):
            raise TypeError(f"can only write str, not {type(text).__name__}")
        if not text:
            return 0
        with self._lock:
            if self.limit is not None and len(text) >= self.limit:
                # The single write alone overflows the ring: keep its tail.
                self.dropped += self._size + len(text) - self.limit
                self._chunks.clear()
                self._size = 0
                text = text[len(text) - self.limit:]
            for start in range(0, len(text), _CHUNK):
                chunk = text[start:start + _CHUNK]
                self._chunks.append(chunk)
                self._size += len(chunk)
            self._evict()
        return len(text)

    def _evict(self) -> None:
        if self.limit is None:
            return
        while self._size > self.limit and self._chunks:
            oldest = self._chunks[0]
            excess = self._size - self.limit
            if len(oldest) <= excess:
                self._chunks.popleft()
                self._size -= len(oldest)
                self.dropped += len(oldest)
            else:
                self._chunks[0] = oldest[excess:]
                self._size -= excess
                self.dropped += excess

    def getvalue(self) -> str:
        with self._lock:
            return "".join(self._chunks)

    def flush(self) -> None:
        """File-protocol no-op (print() calls it on the swapped stdout)."""

    def __len__(self) -> int:
        return self._size

    @property
    def truncated(self) -> bool:
        """Whether any output has been evicted from the ring."""
        return self.dropped > 0
