"""Time-travel timelines: delta-compressed recording of paused state.

The state model of Section II-B2 was designed to be serializable so that
state can cross process boundaries; this module pushes that one step
further and makes it *navigable in time*. A :class:`TimelineRecorder`
attaches to any tracker and, at every pause, captures a
:class:`StateSnapshot` — an immutable, serializable bundle of
frames/globals/position/stdout/exit state — into a :class:`Timeline`.

Storage is delta-compressed: each snapshot serializes to a JSON tree
(built on :func:`repro.core.state.frame_to_dict` and friends) and the
timeline stores a structural diff against the previous tree, with a full
*keyframe* every ``keyframe_interval`` snapshots and an optional bounded
ring buffer (whole keyframe-led segments are evicted from the front, so
reconstruction never needs an evicted base).

On top of a timeline the tracker base class implements the reverse
control calls ``backward_step`` / ``backward_next`` / ``backward_finish``
/ ``backward_resume`` / ``goto`` — backend-agnostically, by replaying
recorded snapshots instead of touching the (forward-only) inferior — and
:class:`repro.core.replay.ReplayTracker` exposes a saved timeline behind
the full tracker API, generalizing the Python Tutor replay tracker
(PT traces are just one timeline *codec*; see :func:`load_timeline`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import ProgramLoadError, TrackerError
from repro.core.pause import PauseReason, PauseReasonType
from repro.core.state import (
    Frame,
    Value,
    Variable,
    frame_from_dict,
    frame_to_dict,
    value_from_dict,
    value_to_dict,
    variable_from_dict,
    variable_to_dict,
)

#: Snapshot event kinds, aligned with the Python Tutor event vocabulary so
#: PT trace steps convert losslessly (EVENT_CALL == "call" and so on).
EVENT_CALL = "call"
EVENT_RETURN = "return"
EVENT_LINE = "step_line"
EVENT_EXIT = "exit"


# ---------------------------------------------------------------------------
# Structural JSON-tree diffing (the delta codec)
# ---------------------------------------------------------------------------
#
# A patch is one of:
#   None                      -- no change
#   {"$r": new}               -- wholesale replacement
#   {"$d": {"set": {...}, "del": [...], "sub": {key: patch}}}
#                             -- dict edit (added / removed / patched keys)
#   {"$l": {"n": len, "sub": {index: patch}, "tail": [...]}}
#                             -- list edit (patched prefix, new length, tail)
#
# Snapshot trees only use the fixed key names of the state codecs plus
# variable names, so the "$"-prefixed marker keys cannot collide with data.


def diff_tree(old: Any, new: Any) -> Optional[Any]:
    """Structural diff of two JSON trees; ``None`` means "identical"."""
    if old is new:
        return None
    if type(old) is type(new):
        if isinstance(old, dict):
            removed = [key for key in old if key not in new]
            added: Dict[str, Any] = {}
            patched: Dict[str, Any] = {}
            for key, value in new.items():
                if key not in old:
                    added[key] = value
                else:
                    patch = diff_tree(old[key], value)
                    if patch is not None:
                        patched[key] = patch
            if not (removed or added or patched):
                return None
            edit: Dict[str, Any] = {}
            if added:
                edit["set"] = added
            if removed:
                edit["del"] = removed
            if patched:
                edit["sub"] = patched
            return {"$d": edit}
        if isinstance(old, list):
            common = min(len(old), len(new))
            patched_items: Dict[str, Any] = {}
            for index in range(common):
                patch = diff_tree(old[index], new[index])
                if patch is not None:
                    patched_items[str(index)] = patch
            if len(old) == len(new) and not patched_items:
                return None
            edit = {"n": len(new)}
            if patched_items:
                edit["sub"] = patched_items
            if len(new) > common:
                edit["tail"] = new[common:]
            return {"$l": edit}
        if old == new:
            return None
    return {"$r": new}


def apply_patch(old: Any, patch: Optional[Any]) -> Any:
    """Apply a :func:`diff_tree` patch to ``old``, returning the new tree.

    ``old`` is never mutated; unmodified subtrees are shared by reference
    (callers must treat reconstructed trees as read-only, which the
    snapshot decoder does).
    """
    if patch is None:
        return old
    if "$r" in patch:
        return patch["$r"]
    if "$d" in patch:
        edit = patch["$d"]
        result = dict(old)
        for key in edit.get("del", ()):
            result.pop(key, None)
        for key, sub_patch in edit.get("sub", {}).items():
            result[key] = apply_patch(old[key], sub_patch)
        result.update(edit.get("set", {}))
        return result
    if "$l" in patch:
        edit = patch["$l"]
        result = list(old)
        for index, sub_patch in edit.get("sub", {}).items():
            position = int(index)
            result[position] = apply_patch(old[position], sub_patch)
        del result[edit["n"]:]
        result.extend(edit.get("tail", ()))
        return result
    raise TrackerError(f"malformed timeline patch: {patch!r}")


def trees_equal(a: Any, b: Any) -> bool:
    """Strict structural equality (``True`` and ``1`` are *different*)."""
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, dict):
        if a.keys() != b.keys():
            return False
        return all(trees_equal(value, b[key]) for key, value in a.items())
    if isinstance(a, list):
        return len(a) == len(b) and all(
            trees_equal(x, y) for x, y in zip(a, b)
        )
    return a == b


# ---------------------------------------------------------------------------
# StateSnapshot: the unified inspection bundle
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class StateSnapshot:
    """Everything inspectable about one paused (or exited) inferior state.

    This is both the return type of :meth:`Tracker.snapshot` — the unified
    replacement for the ``get_frames`` / ``get_global_variables`` /
    ``get_position`` / ``get_source_lines`` call quartet — and the unit a
    :class:`TimelineRecorder` stores.

    Attributes:
        frame: innermost :class:`Frame` with its parent chain, or ``None``
            for an exit snapshot of a backend without post-exit inspection.
        globals: the inferior's global variables by name.
        filename: main program file (``get_position()[0]``).
        line: next line to execute, or ``None`` at exit.
        depth: the frame depth used by ``maxdepth`` semantics (0 = entry).
        stdout: inferior output accumulated up to this pause ("" when the
            backend does not capture output).
        exit_code: exit status if the inferior has terminated, else ``None``.
        reason: the :class:`PauseReason` of this pause, when known.
        event: coarse event kind ("call", "return", "step_line", "exit"),
            used by replay-side control-point evaluation.
        func_name: name of the innermost function, for replay matching.
        thread: index of the inferior thread that produced this pause
            (``None`` on single-threaded captures, keeping old recordings
            and their deltas byte-compatible).

    Snapshots are immutable by contract; equality is *structural* over the
    serialized tree (two snapshots captured from identical states compare
    equal even though their ``Value`` objects differ by identity).
    """

    frame: Optional[Frame]
    globals: Dict[str, Variable] = field(default_factory=dict)
    filename: str = ""
    line: Optional[int] = None
    depth: int = 0
    stdout: str = ""
    exit_code: Optional[int] = None
    reason: Optional[PauseReason] = None
    event: str = EVENT_LINE
    func_name: Optional[str] = None
    thread: Optional[int] = None

    @classmethod
    def capture(cls, tracker: Any) -> "StateSnapshot":
        """Capture the current state of a started tracker.

        Works at any lifecycle point after ``start``: a paused inferior
        yields a full snapshot; a terminated one (on a backend without
        post-exit inspection) yields a frameless exit snapshot.
        """
        exit_code = tracker.get_exit_code()
        reason = tracker.pause_reason
        stdout = ""
        get_output = getattr(tracker, "get_output", None)
        if callable(get_output):
            try:
                stdout = get_output() or ""
            except TrackerError:
                stdout = ""
        if exit_code is not None and not tracker._allows_post_exit_inspection():
            return cls(
                frame=None,
                globals={},
                filename=tracker._program or "",
                line=None,
                depth=0,
                stdout=stdout,
                exit_code=exit_code,
                reason=reason,
                event=EVENT_EXIT,
            )
        frame = tracker.get_current_frame()
        filename, line = tracker.get_position()
        thread = reason.thread if reason is not None else None
        if thread is None and frame is not None:
            thread = frame.thread
        return cls(
            frame=frame,
            globals=dict(tracker.get_global_variables()),
            filename=filename,
            line=line,
            depth=frame.depth,
            stdout=stdout,
            exit_code=exit_code,
            reason=reason,
            event=_event_for_reason(reason),
            func_name=frame.name,
            thread=thread,
        )

    # -- convenience views (mirror the old inspection quartet) ----------

    def frames(self) -> List[Frame]:
        """All frames, innermost first (empty for an exit snapshot)."""
        return self.frame.stack() if self.frame is not None else []

    def position(self) -> Tuple[str, Optional[int]]:
        """``(filename, next line)`` as ``get_position`` returns it."""
        return (self.filename, self.line)

    def lookup(self, name: str, function: Optional[str] = None) -> Optional[Variable]:
        """Variable lookup with ``Tracker.get_variable`` semantics."""
        if function is not None:
            for frame in self.frames():
                if frame.name == function:
                    return frame.lookup(name)
            return None
        if self.frame is not None:
            found = self.frame.lookup(name)
            if found is not None:
                return found
        return self.globals.get(name)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Encode as a JSON-serializable tree (the delta-codec substrate)."""
        encoded = {
            "frame": frame_to_dict(self.frame) if self.frame else None,
            "globals": {
                name: variable_to_dict(variable)
                for name, variable in self.globals.items()
            },
            "filename": self.filename,
            "line": self.line,
            "depth": self.depth,
            "stdout": self.stdout,
            "exit_code": self.exit_code,
            "reason": _reason_to_dict(self.reason),
            "event": self.event,
            "func_name": self.func_name,
        }
        if self.thread is not None:
            # Only-when-set, like Value.truncated: single-threaded
            # recordings keep their seed-era byte layout.
            encoded["thread"] = self.thread
        return encoded

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StateSnapshot":
        """Decode the output of :meth:`to_dict`."""
        return cls(
            frame=frame_from_dict(data["frame"]) if data["frame"] else None,
            globals={
                name: variable_from_dict(variable)
                for name, variable in data.get("globals", {}).items()
            },
            filename=data.get("filename", ""),
            line=data.get("line"),
            depth=data.get("depth", 0),
            stdout=data.get("stdout", ""),
            exit_code=data.get("exit_code"),
            reason=_reason_from_dict(data.get("reason")),
            event=data.get("event", EVENT_LINE),
            func_name=data.get("func_name"),
            thread=data.get("thread"),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateSnapshot):
            return NotImplemented
        return trees_equal(self.to_dict(), other.to_dict())

    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"{self.func_name or '?'}:{self.line}"
        if self.exit_code is not None and self.frame is None:
            where = f"exit({self.exit_code})"
        return f"StateSnapshot({where}, depth={self.depth}, event={self.event!r})"


def _event_for_reason(reason: Optional[PauseReason]) -> str:
    if reason is None:
        return EVENT_LINE
    if reason.type is PauseReasonType.CALL:
        return EVENT_CALL
    if reason.type is PauseReasonType.RETURN:
        return EVENT_RETURN
    if reason.type is PauseReasonType.EXIT:
        return EVENT_EXIT
    return EVENT_LINE


def _reason_to_dict(reason: Optional[PauseReason]) -> Optional[Dict[str, Any]]:
    if reason is None:
        return None
    encoded = {
        "type": reason.type.value,
        "function": reason.function,
        "variable": reason.variable,
        "old_value": _wrap_value(reason.old_value),
        "new_value": _wrap_value(reason.new_value),
        "return_value": _wrap_value(reason.return_value),
        "line": reason.line,
    }
    if reason.thread is not None:
        encoded["thread"] = reason.thread
    if reason.thread_name is not None:
        encoded["thread_name"] = reason.thread_name
    if reason.details is not None:
        encoded["details"] = reason.details
    return encoded


def _reason_from_dict(data: Optional[Dict[str, Any]]) -> Optional[PauseReason]:
    if data is None:
        return None
    return PauseReason(
        type=PauseReasonType(data["type"]),
        function=data.get("function"),
        variable=data.get("variable"),
        old_value=_unwrap_value(data.get("old_value")),
        new_value=_unwrap_value(data.get("new_value")),
        return_value=_unwrap_value(data.get("return_value")),
        line=data.get("line"),
        thread=data.get("thread"),
        thread_name=data.get("thread_name"),
        details=data.get("details"),
    )


def _wrap_value(payload: Any) -> Any:
    """Reason payloads are usually rendered strings, but RETURN may carry
    a model :class:`Value`; tag it so the round trip is unambiguous."""
    if isinstance(payload, Value):
        return {"$value": value_to_dict(payload)}
    return payload


def _unwrap_value(payload: Any) -> Any:
    if isinstance(payload, dict) and "$value" in payload:
        return value_from_dict(payload["$value"])
    return payload


# ---------------------------------------------------------------------------
# Timeline: keyframes + deltas + ring buffer
# ---------------------------------------------------------------------------


class Timeline:
    """An append-only, delta-compressed sequence of snapshots.

    Indexes are *global*: the first recorded snapshot is index 0 forever,
    even after the ring buffer evicts it — so ``goto(i)`` stays meaningful
    across evictions. ``len(timeline)`` is the total number of snapshots
    ever recorded; the retained window is
    ``[timeline.start_index, len(timeline))``.

    Args:
        keyframe_interval: a full keyframe every this many snapshots; the
            snapshots between two keyframes are stored as structural
            deltas (:func:`diff_tree`) against their predecessor.
        max_snapshots: bound on retained snapshots. When exceeded, whole
            oldest *segments* (keyframe + its deltas) are evicted, so the
            bound may be overshot by at most ``keyframe_interval - 1``.
        program / source / backend: provenance, so a saved timeline can be
            replayed (``source`` feeds ``get_source_lines``).
    """

    FORMAT = "repro-timeline"
    VERSION = 1

    def __init__(
        self,
        keyframe_interval: int = 16,
        max_snapshots: Optional[int] = None,
        program: str = "",
        source: str = "",
        backend: str = "",
    ) -> None:
        if keyframe_interval < 1:
            raise ValueError("keyframe_interval must be >= 1")
        if max_snapshots is not None and max_snapshots < 1:
            raise ValueError("max_snapshots must be >= 1 (or None)")
        self.keyframe_interval = keyframe_interval
        self.max_snapshots = max_snapshots
        self.program = program
        self.source = source
        self.backend = backend
        #: segments: each holds a full "key" tree plus forward deltas.
        self._segments: List[Dict[str, Any]] = []
        self._start_index = 0
        self._count = 0  # total snapshots ever appended
        self._last_tree: Optional[Any] = None
        #: (global index, tree) of the last reconstruction, so sequential
        #: access (replay, scrubbing) patches forward instead of starting
        #: from the keyframe every time.
        self._cursor: Optional[Tuple[int, Any]] = None
        #: Called as ``fn(index, prev_tree, tree, patch)`` on every append;
        #: this is how the trace-store index observes the same diff_tree
        #: patches the codec computes, without a second pass over state.
        self._append_listeners: List[
            Callable[[int, Optional[Any], Any, Optional[Any]], None]
        ] = []
        #: Called as ``fn(index)`` when :meth:`drop_last` forgets a
        #: snapshot, so an incrementally-maintained index can roll back.
        self._drop_listeners: List[Callable[[int], None]] = []
        #: Disk spill target (:class:`repro.core.tracestore.SegmentSpool`).
        #: When attached, ring-buffer eviction *moves* whole segments to
        #: segment files instead of dropping them, and reconstruction of
        #: pre-window indexes loads them back lazily.
        self.spool: Optional[Any] = None

    # -- sizes -----------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def start_index(self) -> int:
        """Global index of the oldest *in-memory* snapshot."""
        return self._start_index

    @property
    def first_index(self) -> int:
        """Global index of the oldest *reconstructable* snapshot.

        Equal to :attr:`start_index` unless a spill spool is attached, in
        which case evicted segments remain reachable from disk.
        """
        if self.spool is not None:
            spooled = self.spool.first_index
            if spooled is not None:
                return min(spooled, self._start_index)
        return self._start_index

    @property
    def retained(self) -> int:
        """Number of snapshots currently reconstructable."""
        return self._count - self.first_index

    def add_append_listener(
        self, listener: Callable[[int, Optional[Any], Any, Optional[Any]], None]
    ) -> None:
        """Observe every append as ``(index, prev_tree, tree, patch)``.

        ``patch`` is the :func:`diff_tree` of the previous snapshot tree
        against the new one (``None`` for the very first snapshot). With a
        listener installed the patch is computed even for keyframe
        appends, so listeners see an unbroken delta stream.
        """
        self._append_listeners.append(listener)

    def add_drop_listener(self, listener: Callable[[int], None]) -> None:
        """Observe every :meth:`drop_last` as ``(dropped_index)``."""
        self._drop_listeners.append(listener)

    def attach_spool(self, spool: Any) -> None:
        """Spill evicted segments to ``spool`` instead of dropping them."""
        self.spool = spool

    def stats(self) -> Dict[str, Any]:
        """Storage accounting (used by the overhead benchmarks)."""
        deltas = sum(len(segment["deltas"]) for segment in self._segments)
        return {
            "snapshots": self._count,
            "retained": self.retained,
            "keyframes": len(self._segments),
            "deltas": deltas,
            "json_bytes": len(self.dumps()),
        }

    # -- append / evict --------------------------------------------------

    def append(self, snapshot: StateSnapshot) -> int:
        """Record one snapshot; returns its (stable) global index."""
        tree = snapshot.to_dict()
        previous = self._last_tree
        last_segment = self._segments[-1] if self._segments else None
        patch: Optional[Any] = None
        patch_computed = False
        if (
            last_segment is None
            or previous is None
            or 1 + len(last_segment["deltas"]) >= self.keyframe_interval
        ):
            # Keyframe append: the patch is only needed by listeners.
            if self._append_listeners and previous is not None:
                patch = diff_tree(previous, tree)
                patch_computed = True
            self._segments.append({"key": tree, "deltas": []})
        else:
            patch = diff_tree(previous, tree)
            patch_computed = True
            last_segment["deltas"].append(patch)
        self._last_tree = tree
        index = self._count
        self._count += 1
        for listener in self._append_listeners:
            listener(index, previous, tree, patch if patch_computed else None)
        self._evict()
        return index

    def drop_last(self) -> bool:
        """Forget the most recent snapshot (``record=False`` support)."""
        if not self._segments:
            return False
        segment = self._segments[-1]
        if segment["deltas"]:
            segment["deltas"].pop()
        else:
            self._segments.pop()
        self._count -= 1
        self._cursor = None
        self._last_tree = (
            self._tree_at(self._count - 1) if self.retained > 0 else None
        )
        for listener in self._drop_listeners:
            listener(self._count)
        return True

    def _evict(self) -> None:
        if self.max_snapshots is None:
            return
        while (
            self._count - self._start_index > self.max_snapshots
            and len(self._segments) > 1
        ):
            evicted = self._segments.pop(0)
            if self.spool is not None:
                self.spool.spill(evicted, self._start_index)
            self._start_index += 1 + len(evicted["deltas"])
            if self._cursor is not None and self._cursor[0] < self._start_index:
                self._cursor = None

    # -- random access ---------------------------------------------------

    def snapshot(self, index: int) -> StateSnapshot:
        """Reconstruct the snapshot at global ``index`` (negatives ok)."""
        return StateSnapshot.from_dict(self._tree_at(index))

    def snapshots(self):
        """Iterate over all retained snapshots, oldest first (spilled
        segments included, loaded lazily)."""
        for index in range(self.first_index, self._count):
            yield self.snapshot(index)

    def _tree_at(self, index: int) -> Any:
        if index < 0:
            index += self._count
        if not self.first_index <= index < self._count:
            raise IndexError(
                f"timeline index {index} outside retained window "
                f"[{self.first_index}, {self._count})"
            )
        if self._cursor is not None and self._cursor[0] == index:
            return self._cursor[1]
        if index < self._start_index:
            # Evicted from memory but spilled to disk: load lazily.
            return self._spooled_tree_at(index)
        base = self._start_index
        for segment in self._segments:
            length = 1 + len(segment["deltas"])
            if index < base + length:
                offset = index - base
                tree = segment["key"]
                start = 0
                # Resume from the cached reconstruction when it sits
                # between this segment's keyframe and the target.
                if (
                    self._cursor is not None
                    and base <= self._cursor[0] < index
                ):
                    start = self._cursor[0] - base
                    tree = self._cursor[1]
                for delta in segment["deltas"][start:offset]:
                    tree = apply_patch(tree, delta)
                self._cursor = (index, tree)
                return tree
            base += length
        raise IndexError(f"timeline index {index} not found")  # pragma: no cover

    def _spooled_tree_at(self, index: int) -> Any:
        """Reconstruct ``index`` from a spilled (on-disk) segment."""
        base, segment = self.spool.load(index)
        tree = segment["key"]
        offset = index - base
        # The spilled-segment cursor can also resume mid-segment.
        if (
            self._cursor is not None
            and base <= self._cursor[0] < index
            and self._cursor[0] - base <= offset
        ):
            start = self._cursor[0] - base
            tree = self._cursor[1]
        else:
            start = 0
        for delta in segment["deltas"][start:offset]:
            tree = apply_patch(tree, delta)
        self._cursor = (index, tree)
        return tree

    # -- (de)serialization ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        segments = self._segments
        start = self._start_index
        if self.spool is not None:
            spilled = self.spool.all_segments()
            if spilled:
                segments = spilled + segments
                start = self.first_index
        return {
            "format": self.FORMAT,
            "version": self.VERSION,
            "program": self.program,
            "backend": self.backend,
            "source": self.source,
            "keyframe_interval": self.keyframe_interval,
            "max_snapshots": self.max_snapshots,
            "start_index": start,
            "segments": segments,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Timeline":
        if data.get("format") != cls.FORMAT:
            raise ProgramLoadError("not a repro timeline")
        timeline = cls(
            keyframe_interval=data.get("keyframe_interval", 16),
            max_snapshots=data.get("max_snapshots"),
            program=data.get("program", ""),
            source=data.get("source", ""),
            backend=data.get("backend", ""),
        )
        timeline._segments = [
            {"key": segment["key"], "deltas": list(segment["deltas"])}
            for segment in data.get("segments", [])
        ]
        timeline._start_index = data.get("start_index", 0)
        timeline._count = timeline._start_index + sum(
            1 + len(segment["deltas"]) for segment in timeline._segments
        )
        if timeline.retained > 0:
            timeline._last_tree = timeline._tree_at(timeline._count - 1)
        return timeline

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as output:
            output.write(self.dumps())

    @classmethod
    def loads(cls, text: str) -> "Timeline":
        try:
            return cls.from_dict(json.loads(text))
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise ProgramLoadError(f"not a timeline: {error}") from error

    @classmethod
    def load(cls, path: str) -> "Timeline":
        with open(path, "r", encoding="utf-8") as source:
            return cls.loads(source.read())


# ---------------------------------------------------------------------------
# Recorder
# ---------------------------------------------------------------------------


class TimelineRecorder:
    """Records a tracker's pauses into a :class:`Timeline`.

    Created by :meth:`Tracker.enable_recording`; after that, every control
    call that returns appends one snapshot (suppress a single pause with
    the ``record=False`` control-call keyword, or everything with
    :attr:`enabled`).
    """

    def __init__(
        self,
        tracker: Any,
        keyframe_interval: int = 16,
        max_snapshots: Optional[int] = None,
    ) -> None:
        self.tracker = tracker
        self.enabled = True
        self.timeline = Timeline(
            keyframe_interval=keyframe_interval,
            max_snapshots=max_snapshots,
            program=tracker._program or "",
            backend=tracker.backend,
        )

    def record(self) -> int:
        """Capture and append the tracker's current state; return its index."""
        if not self.timeline.source:
            self._capture_source()
        return self.timeline.append(StateSnapshot.capture(self.tracker))

    def _capture_source(self) -> None:
        if not self.timeline.program:
            self.timeline.program = self.tracker._program or ""
        try:
            self.timeline.source = "\n".join(self.tracker.get_source_lines())
        except (TrackerError, OSError):
            pass


# ---------------------------------------------------------------------------
# Timeline navigation (shared by live-tracker rewind and ReplayTracker)
# ---------------------------------------------------------------------------

#: Pause-reason types that count as "control points" for backward_resume.
_BREAKPOINT_REASONS = (
    PauseReasonType.BREAKPOINT,
    PauseReasonType.WATCH,
    PauseReasonType.CALL,
    PauseReasonType.RETURN,
)


def scan_backward(timeline: Timeline, current: int, mode: str) -> int:
    """Index of the snapshot a reverse control call should land on.

    Args:
        timeline: the recorded timeline.
        current: global index of the current snapshot.
        mode: "step" (previous snapshot), "next" (previous snapshot at
            depth <= current), "finish" (previous snapshot at depth <
            current), or "resume" (previous control-point pause).

    The scan falls back to the oldest retained snapshot when no snapshot
    matches, mirroring how a forward ``resume`` falls through to exit.
    """
    if mode == "step":
        return max(current - 1, timeline.first_index)
    depth = timeline.snapshot(current).depth
    for index in range(current - 1, timeline.first_index - 1, -1):
        snapshot = timeline.snapshot(index)
        if mode == "next" and snapshot.depth <= depth:
            return index
        if mode == "finish" and snapshot.depth < depth:
            return index
        if mode == "resume" and (
            snapshot.reason is not None
            and snapshot.reason.type in _BREAKPOINT_REASONS
        ):
            return index
    return timeline.first_index


def scan_forward(timeline: Timeline, current: int, mode: str) -> int:
    """Forward counterpart of :func:`scan_backward` for rewound trackers.

    Used when a forward control call arrives while a live tracker is
    rewound into its history: the call moves through *recorded* pauses
    until it reaches the newest snapshot (where the live inferior still
    sits, and control goes live again).
    """
    head = len(timeline) - 1
    if mode == "step":
        return min(current + 1, head)
    depth = timeline.snapshot(current).depth
    for index in range(current + 1, head + 1):
        snapshot = timeline.snapshot(index)
        if mode == "next" and snapshot.depth <= depth:
            return index
        if mode == "finish" and snapshot.depth < depth:
            return index
        if mode == "resume" and (
            snapshot.reason is not None
            and snapshot.reason.type in _BREAKPOINT_REASONS
        ):
            return index
    return head


# ---------------------------------------------------------------------------
# Codec registry: .timeline.json is the native format, PT traces are
# another codec (registered by repro.pytutor.timeline_codec).
# ---------------------------------------------------------------------------

_CODECS: List[Tuple[str, Callable[[Any], bool], Callable[[Any], Timeline]]] = []


def register_timeline_codec(
    name: str,
    sniff: Callable[[Any], bool],
    build: Callable[[Any], Timeline],
) -> None:
    """Register a loader for an on-disk execution-history format.

    ``sniff(data)`` inspects parsed JSON and says whether ``build(data)``
    can turn it into a :class:`Timeline`. Third-party trace formats plug
    in here, the same way third-party trackers plug into the factory.
    """
    _CODECS.append((name, sniff, build))


def _ensure_builtin_codecs() -> None:
    if not any(name == "native" for name, _, _ in _CODECS):
        register_timeline_codec(
            "native",
            lambda data: isinstance(data, dict)
            and data.get("format") == Timeline.FORMAT,
            Timeline.from_dict,
        )
    if not any(name == "pt" for name, _, _ in _CODECS):
        try:
            import repro.pytutor.timeline_codec  # noqa: F401 (self-registers)
        except ImportError:  # pragma: no cover - pytutor always ships
            pass


def load_timeline(path: str) -> Timeline:
    """Load a timeline from any registered codec (native or PT trace).

    ``path`` may also be a ``.tracedir/`` directory written by the
    disk-backed trace store, in which case segments stay on disk and are
    loaded lazily (see :mod:`repro.core.tracestore`).
    """
    import os

    if os.path.isdir(path):
        from repro.core.tracestore import open_spooled_timeline

        return open_spooled_timeline(path)
    with open(path, "r", encoding="utf-8") as source:
        text = source.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProgramLoadError(f"{path!r} is not JSON: {error}") from error
    _ensure_builtin_codecs()
    for name, sniff, build in _CODECS:
        try:
            matches = sniff(data)
        except Exception:
            matches = False
        if matches:
            return build(data)
    raise ProgramLoadError(
        f"{path!r} matches no registered timeline codec "
        f"(known: {', '.join(name for name, _, _ in _CODECS)})"
    )
