"""Exception hierarchy for the tracker library.

Every error raised by the public API derives from :class:`TrackerError`, so
tool scripts can use a single ``except TrackerError`` to stay robust against
inferior misbehaviour without masking programming errors in the tool itself.
"""

from __future__ import annotations


class TrackerError(Exception):
    """Base class of all errors raised by the tracker library."""


class ProgramLoadError(TrackerError):
    """The inferior program could not be loaded (missing file, parse error)."""


class NotPausedError(TrackerError):
    """An inspection or control call requires a paused inferior."""


class NotStartedError(TrackerError):
    """A call requires :meth:`Tracker.start` to have been made first."""


class AlreadyTerminatedError(TrackerError):
    """The inferior has already exited; no further control is possible."""


class UnknownVariableError(TrackerError):
    """A variable lookup failed (no such name in the requested scope)."""


class UnknownFunctionError(TrackerError):
    """A function name used in a control request does not exist."""


class ProtocolError(TrackerError):
    """The debug-server connection produced an unparsable or unexpected reply."""


class ServerCrashError(ProtocolError):
    """The debug-server subprocess died underneath the client.

    Carries the subprocess exit code and the tail of its stderr so the
    failure is diagnosable from the exception alone. Recoverable: the
    supervision layer catches this to drive a backend restart.
    """

    def __init__(
        self,
        message: str,
        exit_code: "int | None" = None,
        stderr_tail: "list | None" = None,
    ):
        detail = message
        if exit_code is not None:
            detail += f" (exit code {exit_code})"
        if stderr_tail:
            tail = "\n".join(stderr_tail)
            detail += f"; server stderr tail:\n{tail}"
        super().__init__(detail)
        self.exit_code = exit_code
        self.stderr_tail = list(stderr_tail or [])


class TraceStoreError(TrackerError):
    """A disk-backed trace store is unusable (missing, corrupt, or
    incompatible ``.tracedir/`` manifest or segment files), or a trace
    query could not be parsed or executed."""


class ControlTimeout(TrackerError):
    """A control call's deadline expired *and* the interrupt failed.

    Deadline expiry alone does not raise: the supervisor first interrupts
    the inferior so the call can return with the tracker paused
    (``PauseReasonType.INTERRUPT``). Only when the inferior cannot be
    brought to a pause within the grace period (e.g. it is blocked in
    native code the tracer never re-enters) does the call raise this.
    """


class BackendUnavailableError(TrackerError):
    """The backend is gone for good: crash-recovery retries are exhausted.

    A terminal state, never a hang — the tracker's ``health`` is
    ``"unavailable"`` and every further control call fails fast with this
    error.
    """


class InferiorCrashError(TrackerError):
    """The inferior raised an unhandled error while being tracked."""

    def __init__(self, message: str, exc: BaseException = None):
        super().__init__(message)
        self.inferior_exception = exc
