"""Exception hierarchy for the tracker library.

Every error raised by the public API derives from :class:`TrackerError`, so
tool scripts can use a single ``except TrackerError`` to stay robust against
inferior misbehaviour without masking programming errors in the tool itself.
"""

from __future__ import annotations


class TrackerError(Exception):
    """Base class of all errors raised by the tracker library."""


class ProgramLoadError(TrackerError):
    """The inferior program could not be loaded (missing file, parse error)."""


class NotPausedError(TrackerError):
    """An inspection or control call requires a paused inferior."""


class NotStartedError(TrackerError):
    """A call requires :meth:`Tracker.start` to have been made first."""


class AlreadyTerminatedError(TrackerError):
    """The inferior has already exited; no further control is possible."""


class UnknownVariableError(TrackerError):
    """A variable lookup failed (no such name in the requested scope)."""


class UnknownFunctionError(TrackerError):
    """A function name used in a control request does not exist."""


class ProtocolError(TrackerError):
    """The debug-server connection produced an unparsable or unexpected reply."""


class InferiorCrashError(TrackerError):
    """The inferior raised an unhandled error while being tracked."""

    def __init__(self, message: str, exc: BaseException = None):
        super().__init__(message)
        self.inferior_exception = exc
