"""The ``init_tracker`` entry point.

Tool scripts select a backend with one line, as in the paper's Listing 1::

    tracker = init_tracker("python" if inf.endswith(".py") else "GDB")

Backends are registered lazily so importing :mod:`repro` does not pull in
every substrate.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.core.errors import TrackerError
from repro.core.tracker import Tracker

_REGISTRY: Dict[str, Callable[..., Tracker]] = {}


def register_tracker(name: str, build: Callable[..., Tracker]) -> None:
    """Register a tracker backend under ``name`` (case-insensitive).

    Third-party trackers (e.g. one reading an external trace format, as
    suggested in Section III-E) plug in through this hook.
    """
    _REGISTRY[name.lower()] = build


def available_trackers() -> list:
    """Names of all registered backends."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def init_tracker(name: str, **kwargs: Any) -> Tracker:
    """Create a tracker backend by name.

    Args:
        name: ``"python"`` for the in-process settrace tracker,
            ``"python-mon"`` for the in-process ``sys.monitoring``
            (PEP 669) tracker (Python 3.12+ only), ``"python-subproc"``
            for the settrace tracker isolated in a sandboxed child
            interpreter, ``"GDB"`` for the debug-server (mini-C /
            RISC-V) tracker, or ``"pt"`` for the Python Tutor
            trace-replay tracker.
        **kwargs: forwarded to the backend constructor (e.g.
            ``capture_output=True`` for ``"python"``, ``restart_policy=``
            for ``"GDB"``).

    Raises:
        TrackerError: if no backend with that name is registered.
    """
    _ensure_builtins()
    try:
        build = _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(available_trackers())
        raise TrackerError(
            f"unknown tracker {name!r}; registered backends: {known}"
        ) from None
    return build(**kwargs)


def _ensure_builtins() -> None:
    """Register the bundled backends on first use."""
    if "python" not in _REGISTRY:
        from repro.pytracker.tracker import PythonTracker

        register_tracker("python", PythonTracker)
    if "python-mon" not in _REGISTRY:
        from repro.pytracker.monitoring import MonitoringTracker

        register_tracker("python-mon", MonitoringTracker)
    if "python-subproc" not in _REGISTRY:
        from repro.subproc.tracker import SubprocPythonTracker

        register_tracker("python-subproc", SubprocPythonTracker)
    if "gdb" not in _REGISTRY:
        from repro.gdbtracker.tracker import GDBTracker

        register_tracker("gdb", GDBTracker)
    if "pt" not in _REGISTRY:
        from repro.pytutor.pt_tracker import PTTracker

        register_tracker("pt", PTTracker)
    if "replay" not in _REGISTRY:
        from repro.core.replay import ReplayTracker

        register_tracker("replay", ReplayTracker)
