"""The replay tracker: the full tracker API over a recorded timeline.

Section III-E of the paper argues that a pre-generated trace can sit
behind the tracker API; :class:`ReplayTracker` is the general form of that
idea. It navigates a :class:`repro.core.timeline.Timeline` — recorded by
any backend via :meth:`Tracker.enable_recording`, loaded from a
``.timeline.json`` file, or converted from a foreign trace format through
a registered timeline codec (Python Tutor traces are one such codec; the
PT tracker is now a thin subclass of this one).

Control points are evaluated against recorded snapshots through the same
:class:`ControlPointEngine` the live backends use, so ``resume`` over a
replay pauses at the same breakpoints/watchpoints/tracked functions a
live run would — to the resolution of what was recorded. Because the
history is immutable, the reverse control calls (``backward_step``,
``goto`` ...) are native motions here rather than a rewind overlay.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.errors import NotPausedError, ProgramLoadError, TrackerError
from repro.core.pause import PauseReason, PauseReasonType
from repro.core.state import AbstractType, Frame, Variable
from repro.core.timeline import (
    EVENT_CALL,
    EVENT_EXIT,
    EVENT_RETURN,
    StateSnapshot,
    Timeline,
    load_timeline,
)
from repro.core.tracker import Tracker


class ReplayTracker(Tracker):
    """Tracker backend replaying a recorded :class:`Timeline`.

    Args:
        timeline: navigate this in-memory timeline directly; alternatively
            call :meth:`load_program` with a path to a ``.timeline.json``
            file or any format a registered codec understands.
    """

    backend = "replay"

    def __init__(self, timeline: Optional[Timeline] = None) -> None:
        super().__init__()
        self._timeline: Optional[Timeline] = timeline
        self._index = -1
        if timeline is not None:
            self._program = timeline.program or "<timeline>"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _load_program(self, path: str, args: List[str]) -> None:
        self._timeline = load_timeline(path)
        if self._timeline.retained == 0:
            raise ProgramLoadError(f"timeline {path!r} contains no snapshots")

    def _start(self) -> None:
        self._index = self._timeline.first_index
        self._mark_pause(
            PauseReason(type=PauseReasonType.STEP, line=self._snap().line)
        )

    def _terminate(self) -> None:
        # A timeline is immutable history; there is nothing to kill and
        # the final state stays inspectable.
        pass

    def _allows_post_exit_inspection(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # Forward control: walk the recorded snapshots through the engine
    # ------------------------------------------------------------------

    def _resume(self) -> None:
        self.engine.arm("resume")
        self._advance()

    def _step(self) -> None:
        self.engine.arm("step")
        self._advance()

    def _next(self) -> None:
        self.engine.arm("next", self._snap().depth)
        self._advance()

    def _finish(self) -> None:
        self.engine.arm("finish", self._snap().depth)
        self._advance()

    def _snap(self) -> StateSnapshot:
        return self._timeline.snapshot(self._index)

    def _advance(self) -> None:
        timeline = self._timeline
        last = len(timeline) - 1
        while True:
            if self._index >= last:
                self._mark_exit(None)  # recording exhausted
                return
            self._index += 1
            snapshot = self._snap()
            if snapshot.event == EVENT_EXIT and snapshot.frame is None:
                self._mark_exit(snapshot)
                return
            reason = self._decide(snapshot)
            if reason is not None:
                self._mark_pause(reason)
                return

    def _decide(self, snapshot: StateSnapshot) -> Optional[PauseReason]:
        """One recorded snapshot in, pause decision out — via the engine."""
        engine = self.engine
        engine.refresh()
        engine.note_event(snapshot.event or "step")
        depth = snapshot.depth
        # A plain step pauses at the very next recorded point, before any
        # control point gets a look — matching the live trackers, where a
        # step lands on the next line unconditionally.
        if engine.mode != "step":
            reason = self._control_point(snapshot)
            if reason is not None:
                return reason
        if engine.should_step_pause(depth):
            return PauseReason(type=PauseReasonType.STEP, line=snapshot.line)
        return None

    def _control_point(self, snapshot: StateSnapshot) -> Optional[PauseReason]:
        engine = self.engine
        depth = snapshot.depth
        if engine.has_watchpoints:
            hit = engine.evaluate_watches(
                depth,
                lambda function, name: self._watch_render(
                    snapshot, function, name
                ),
            )
            if hit is not None:
                watchpoint, old, new = hit
                return PauseReason(
                    type=PauseReasonType.WATCH,
                    variable=watchpoint.variable_id,
                    old_value=old,
                    new_value=new,
                    line=snapshot.line,
                )
        if snapshot.line is not None and engine.may_match_line(snapshot.line):
            if engine.match_line(None, snapshot.line, depth) is not None:
                return PauseReason(
                    type=PauseReasonType.BREAKPOINT, line=snapshot.line
                )
        name = snapshot.func_name
        if name and engine.may_match_function(name):
            if snapshot.event == EVENT_CALL:
                if engine.match_function_breakpoint(name, depth) is not None:
                    return PauseReason(
                        type=PauseReasonType.BREAKPOINT,
                        function=name,
                        line=snapshot.line,
                    )
            if snapshot.event in (EVENT_CALL, EVENT_RETURN):
                if engine.match_tracked(name, depth) is not None:
                    return PauseReason(
                        type=(
                            PauseReasonType.CALL
                            if snapshot.event == EVENT_CALL
                            else PauseReasonType.RETURN
                        ),
                        function=name,
                        line=snapshot.line,
                    )
        return None

    def _watch_render(
        self, snapshot: StateSnapshot, function: Optional[str], name: str
    ) -> Optional[str]:
        """Rendered value of a watched variable in a recorded snapshot.

        References are chased before rendering so a watch fires on value
        changes, not on heap-address churn between pauses.
        """
        variable = snapshot.lookup(name, function)
        if variable is None:
            return None
        value = variable.value
        while value.abstract_type is AbstractType.REF:
            value = value.content
        return value.render()

    def _mark_pause(self, reason: PauseReason) -> None:
        self.engine.record_pause(reason.type)
        self._pause_reason = reason
        self.last_lineno = self.next_lineno
        self.next_lineno = self._snap().line

    def _mark_exit(self, snapshot: Optional[StateSnapshot]) -> None:
        exit_code = snapshot.exit_code if snapshot is not None else None
        if snapshot is not None:
            self._index = min(self._index, len(self._timeline) - 1)
        self._exit_code = exit_code if exit_code is not None else 0
        self._pause_reason = PauseReason(type=PauseReasonType.EXIT)
        self.engine.note_event("exit")
        self.engine.record_pause(PauseReasonType.EXIT)

    # ------------------------------------------------------------------
    # Reverse control: native motions over the timeline
    # ------------------------------------------------------------------

    @property
    def timeline(self) -> Optional[Timeline]:
        return self._timeline

    def _require_timeline(self) -> Timeline:
        if self._timeline is None or self._timeline.retained == 0:
            raise TrackerError("no timeline loaded")
        return self._timeline

    def _timeline_position(self) -> int:
        if self._index < 0:
            raise NotPausedError("call start() first")
        return self._index

    def _seek_timeline(self, index: int) -> None:
        snapshot = self._timeline.snapshot(index)
        self._index = index
        self.engine.record_pause(PauseReasonType.STEP)
        self._apply_snapshot_pause(snapshot)

    @property
    def step_index(self) -> int:
        """Position in the timeline (useful for tools showing a scrubber)."""
        return self._index

    @property
    def step_count(self) -> int:
        """Total number of recorded snapshots."""
        return len(self._timeline) if self._timeline is not None else 0

    # ------------------------------------------------------------------
    # Inspection, served from the recorded snapshots
    # ------------------------------------------------------------------

    def _get_current_frame(self) -> Frame:
        frame = self._snap().frame
        if frame is None:
            raise NotPausedError("this snapshot recorded no frames")
        return frame

    def _get_global_variables(self) -> Dict[str, Variable]:
        return dict(self._snap().globals)

    def _get_position(self) -> Tuple[str, Optional[int]]:
        snapshot = self._snap()
        return (
            snapshot.filename or self._program or "<timeline>",
            snapshot.line,
        )

    def get_source_lines(self) -> List[str]:
        """The recorded program source, embedded in the timeline."""
        if self._timeline is not None and self._timeline.source:
            return self._timeline.source.splitlines()
        return super().get_source_lines()

    def get_output(self) -> str:
        """Inferior stdout recorded up to the current snapshot."""
        return self._snap().stdout
