"""The supervision layer: deadlines, interrupts, and crash recovery.

The paper's control interface promises that every control call *returns
only when the inferior is paused or terminated*. The seed implementations
made that promise unconditionally: a spinning inferior, a crashed debug
server, or a garbled MI pipe would block the embedding tool forever. This
module makes the promise enforceable, the same way for every backend:

- :class:`Deadline` — a monotonic-clock budget threaded through a control
  call. When it expires the backend *interrupts* the inferior (settrace
  async-pause flag for the Python tracker, ``-exec-interrupt`` / SIGINT
  for the debug server) so the call still returns with the tracker paused;
  :class:`repro.core.errors.ControlTimeout` is raised only when the
  interrupt itself fails to land within the grace period.
- :class:`BackoffPolicy` + :func:`run_with_recovery` — bounded exponential
  backoff around backend restarts. Exhausted retries degrade to a terminal
  ``"unavailable"`` health state
  (:class:`repro.core.errors.BackendUnavailableError`), never a hang.
- :class:`SupervisionEvent` — restarts, interrupts and wedged inferiors
  are surfaced as events (``Tracker.drain_supervision_events``) and
  counted in :class:`repro.core.engine.TrackerStats`.

Shared by all four tracker backends, analogous to how
:class:`repro.core.engine.ControlPointEngine` unified pause dispatch.
"""

from __future__ import annotations

import linecache
import re
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, TypeVar

from repro.core.errors import BackendUnavailableError

__all__ = [
    "BackoffPolicy",
    "Deadline",
    "StallDetector",
    "StallVerdict",
    "SupervisionEvent",
    "ThreadSample",
    "BACKEND_RESTARTED",
    "BACKEND_UNAVAILABLE",
    "INFERIOR_DEADLOCK_SUSPECTED",
    "INFERIOR_INTERRUPTED",
    "INFERIOR_PROCESS_DIED",
    "INFERIOR_WEDGED",
    "format_thread_stack",
    "run_with_recovery",
]

#: Event kinds (``SupervisionEvent.kind`` values).
BACKEND_RESTARTED = "backend-restarted"
BACKEND_UNAVAILABLE = "backend-unavailable"
INFERIOR_INTERRUPTED = "inferior-interrupted"
INFERIOR_WEDGED = "inferior-wedged"
#: The process hosting the inferior died mid-run (subprocess isolation:
#: a segfault, ``os._exit``, OOM kill or rlimit kill took the child down).
INFERIOR_PROCESS_DIED = "inferior-process-died"
#: A control-call deadline expired and every inferior thread was found
#: blocked on synchronization primitives — the stall detector converted
#: the timeout into a ``DEADLOCK_SUSPECTED`` pause.
INFERIOR_DEADLOCK_SUSPECTED = "inferior-deadlock-suspected"

#: Floor on the interrupt grace period, so tiny deadlines still leave the
#: interrupt a realistic chance to land before ControlTimeout.
_MIN_GRACE = 0.05


class Deadline:
    """A monotonic-clock deadline for one control call.

    The budget is split in two phases of equal length (the acceptance
    contract is "returns within 2x the deadline"): at ``timeout`` the
    supervisor requests an interrupt; if the inferior still has not paused
    after the *grace* phase — another ``timeout`` seconds (at least
    ``0.05 s``) — the call gives up with ``ControlTimeout``.
    """

    def __init__(self, timeout: float):
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout!r}")
        self.timeout = timeout
        self.grace = max(timeout, _MIN_GRACE)
        self._start = time.monotonic()
        #: Set once the interrupt request has been issued.
        self.interrupt_requested = False

    def remaining(self) -> float:
        """Seconds left before the interrupt phase starts (may be < 0)."""
        return self.timeout - (time.monotonic() - self._start)

    def expired(self) -> bool:
        return self.remaining() <= 0

    def grace_remaining(self) -> float:
        """Seconds left before the call must give up entirely."""
        return (self.timeout + self.grace) - (time.monotonic() - self._start)

    def grace_expired(self) -> bool:
        return self.grace_remaining() <= 0


@dataclass
class SupervisionEvent:
    """One supervision occurrence (restart, interrupt, wedge, give-up)."""

    kind: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


@dataclass
class BackoffPolicy:
    """Bounded exponential backoff for backend crash recovery.

    Attributes:
        max_restarts: restart attempts before degrading to
            ``BackendUnavailableError`` (0 disables recovery).
        initial_delay: seconds slept before the first restart attempt.
        multiplier: factor applied to the delay after each attempt.
        max_delay: upper bound on any single delay.
    """

    max_restarts: int = 2
    initial_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def delays(self) -> Iterator[float]:
        """The deterministic delay schedule, one entry per attempt."""
        delay = self.initial_delay
        for _ in range(self.max_restarts):
            yield min(delay, self.max_delay)
            delay *= self.multiplier


_T = TypeVar("_T")


def run_with_recovery(
    call: Callable[[], _T],
    *,
    restart: Callable[[BaseException], None],
    policy: Optional[BackoffPolicy],
    recoverable: tuple = (Exception,),
    on_restarted: Optional[Callable[[BaseException, int], None]] = None,
    on_unavailable: Optional[Callable[[BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> _T:
    """Run ``call``; on a recoverable failure restart the backend and retry.

    Args:
        call: the supervised operation. Retried at most once per restart.
        restart: brings the backend back up; receives the triggering error
            and may itself raise a recoverable error (counts as a failed
            attempt).
        policy: the backoff schedule; ``None`` or ``max_restarts=0`` means
            the first failure is already terminal.
        recoverable: exception classes that trigger recovery; anything
            else propagates untouched.
        on_restarted: called after each successful restart with the error
            that caused it and the 1-based attempt number.
        on_unavailable: called once when retries are exhausted, just
            before ``BackendUnavailableError`` is raised.
        sleep: injection point for tests (defaults to ``time.sleep``).

    Raises:
        BackendUnavailableError: when the schedule is exhausted; the last
            backend error is chained as ``__cause__``.
    """
    try:
        return call()
    except recoverable as error:
        last_error: BaseException = error
    schedule = list(policy.delays()) if policy is not None else []
    for attempt, delay in enumerate(schedule, start=1):
        sleep(delay)
        try:
            restart(last_error)
        except recoverable as error:
            last_error = error
            continue
        if on_restarted is not None:
            on_restarted(last_error, attempt)
        try:
            return call()
        except recoverable as error:
            last_error = error
    if on_unavailable is not None:
        on_unavailable(last_error)
    raise BackendUnavailableError(
        f"backend did not survive {len(schedule)} restart attempt(s): "
        f"{last_error}"
    ) from last_error


def format_thread_stack(thread: threading.Thread) -> str:
    """Render the current Python stack of ``thread`` (best effort).

    Used when an inferior thread refuses to die: the warning that marks
    the tracker invalid includes where the inferior is stuck, via
    ``sys._current_frames()``.
    """
    import sys

    ident = thread.ident
    if ident is None:
        return "<thread not started>"
    frame = sys._current_frames().get(ident)
    if frame is None:
        return "<no stack available>"
    return "".join(traceback.format_stack(frame))


# ---------------------------------------------------------------------------
# Stall detection: classify a hung inferior on deadline expiry
# ---------------------------------------------------------------------------

#: ``threading.py`` functions whose presence on a stack means the thread is
#: parked in a Python-level synchronization wait (Condition.wait,
#: Thread.join, Semaphore.acquire run Python code; plain ``Lock.acquire``
#: is a C call and is classified from the caller's source line instead).
_BLOCKING_FUNCS = frozenset(
    {"wait", "wait_for", "join", "acquire", "_wait_for_tstate_lock",
     "_acquire_restore"}
)

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*")
_OWNER_RE = re.compile(r"owner=(\d+)")

#: Python keywords that the line scanner must not try to resolve.
_SCAN_SKIP = frozenset(
    {"with", "if", "while", "for", "in", "and", "or", "not", "return",
     "self", "True", "False", "None", "lambda", "try", "except", "as",
     "is", "else", "elif", "def", "class", "await", "async"}
)


@dataclass
class ThreadSample:
    """One inferior thread's state as sampled by :class:`StallDetector`.

    ``thread`` is the tracker's stable thread index; ``ident`` the OS
    ident the frame was sampled under. ``blocked`` means the sampler found
    the thread waiting on a synchronization primitive; ``waiting_on`` is a
    short description of that primitive and ``owner_ident`` the OS ident
    of the thread holding it, when the primitive exposes one (C ``RLock``
    reprs do).
    """

    thread: int
    name: str
    ident: int
    function: Optional[str] = None
    line: Optional[int] = None
    filename: Optional[str] = None
    blocked: bool = False
    waiting_on: Optional[str] = None
    waiting_on_id: Optional[int] = None
    owner_ident: Optional[int] = None


@dataclass
class StallVerdict:
    """The stall classification: a lock-wait graph over blocked threads.

    Produced only when *every* sampled thread is blocked; carried in the
    ``details`` payload of a ``DEADLOCK_SUSPECTED`` pause.
    """

    samples: List[ThreadSample]
    edges: List[Tuple[int, int, str]] = field(default_factory=list)
    cycle: List[int] = field(default_factory=list)

    def to_details(self) -> Dict[str, Any]:
        """The JSON-serializable lock-wait graph."""
        return {
            "threads": [
                {
                    "thread": sample.thread,
                    "name": sample.name,
                    "function": sample.function,
                    "line": sample.line,
                    "filename": sample.filename,
                    "waiting_on": sample.waiting_on,
                    "owner": self._owner_index(sample),
                }
                for sample in self.samples
            ],
            "edges": [
                {"from": src, "to": dst, "lock": lock}
                for src, dst, lock in self.edges
            ],
            "cycle": list(self.cycle),
        }

    def _owner_index(self, sample: ThreadSample) -> Optional[int]:
        for src, dst, _lock in self.edges:
            if src == sample.thread:
                return dst
        return None


class StallDetector:
    """Classify a hung inferior by sampling all of its thread stacks.

    When a control-call deadline expires and the interrupt cannot land
    (no Python bytecode is executing, so no trace event ever services the
    interrupt flag), the supervisor asks this detector *why*. It samples
    every registered inferior thread via ``sys._current_frames()`` and
    declares a suspected deadlock only when **all** of them are blocked on
    synchronization primitives — a busy-spinning thread anywhere means the
    inferior is merely slow, and the ordinary interrupt/ControlTimeout
    path applies.

    Two classification paths per thread:

    - the stack contains a ``threading.py`` wait function
      (``Condition.wait``, ``Thread.join``, ``Semaphore.acquire`` — these
      run Python code), or
    - the innermost *inferior* frame's current source line references a
      lock-like object (has ``acquire``/``release``) whose repr says it is
      locked — the shape a C-level ``Lock.acquire``/``with lock:`` block
      leaves on the stack.

    Lock ownership (for the wait graph's edges) is read from C ``RLock``
    reprs (``owner=<ident>``); plain ``Lock`` objects carry no owner, so
    their edges are omitted and only the per-thread wait facts remain.
    """

    def __init__(
        self,
        is_inferior_file: Optional[Callable[[str], bool]] = None,
        machinery_files: Optional[List[str]] = None,
    ):
        #: Predicate deciding which frames belong to the inferior program
        #: (defaults to "not an importlib/threading internals frame").
        self._is_inferior_file = is_inferior_file or (
            lambda filename: not filename.startswith("<")
            and "threading.py" not in filename
        )
        #: Files of the tracker's own machinery: a thread with one of
        #: these on its stack is inside the pause handshake (delivering or
        #: parked), *not* deadlocked — it must veto the verdict, or an
        #: interrupt landing mid-sample would be misread as a lock wait
        #: (the handshake waits on a Condition, which is a threading.py
        #: wait like any other).
        self._machinery_files = frozenset(machinery_files or [])

    # -- sampling -------------------------------------------------------

    def sample(
        self, threads: List[Tuple[int, str, Optional[int]]]
    ) -> List[ThreadSample]:
        """Sample the current stacks of the given ``(index, name, ident)``.

        Threads whose ident is gone from ``sys._current_frames()``
        (already finished) are skipped — they cannot hold up the verdict.
        """
        import sys

        frames = sys._current_frames()
        samples: List[ThreadSample] = []
        for index, name, ident in threads:
            if ident is None:
                continue
            frame = frames.get(ident)
            if frame is None:
                continue
            samples.append(self._classify_thread(index, name, ident, frame))
        return samples

    def _classify_thread(
        self, index: int, name: str, ident: int, frame: Any
    ) -> ThreadSample:
        sample = ThreadSample(thread=index, name=name, ident=ident)
        inferior_frame = None
        walker = frame
        while walker is not None:
            code = walker.f_code
            filename = code.co_filename
            if filename in self._machinery_files and inferior_frame is None:
                # Tracker machinery *inner* to all inferior frames means
                # the thread is inside the pause handshake (delivering or
                # parked) — pausing, not hung. Machinery *outer* to the
                # inferior frames is just the launcher scaffolding every
                # inferior thread sits on and proves nothing.
                sample.blocked = False
                break
            if inferior_frame is None and self._is_inferior_file(filename):
                inferior_frame = walker
            if (
                filename.endswith("threading.py")
                and code.co_name in _BLOCKING_FUNCS
            ):
                sample.blocked = True
                sample.waiting_on = self._describe_threading_wait(walker)
            walker = walker.f_back
        if inferior_frame is not None:
            sample.function = inferior_frame.f_code.co_name
            sample.line = inferior_frame.f_lineno
            sample.filename = inferior_frame.f_code.co_filename
        if not sample.blocked and inferior_frame is not None:
            self._classify_from_source_line(sample, inferior_frame)
        return sample

    def _describe_threading_wait(self, frame: Any) -> str:
        owner = frame.f_locals.get("self")
        if owner is None:
            return f"threading.{frame.f_code.co_name}"
        return f"{type(owner).__name__}.{frame.f_code.co_name}"

    def _classify_from_source_line(self, sample: ThreadSample, frame: Any) -> None:
        """Detect a C-level lock wait from the blocked line's identifiers.

        ``lock.acquire()`` on a C lock leaves no Python callee frame; the
        evidence is the inferior frame sitting on a line that names a
        currently-locked synchronization object. ``SUSPECTED`` semantics:
        a thread merely executing past such a line can be misread as
        blocked, which the double-sample in :meth:`confirmed_deadlock`
        filters out.
        """
        line_text = linecache.getline(frame.f_code.co_filename, frame.f_lineno)
        if not line_text:
            return
        for match in _IDENTIFIER_RE.finditer(line_text):
            dotted = match.group(0)
            root = dotted.split(".", 1)[0]
            if root in _SCAN_SKIP:
                continue
            resolved = self._resolve(dotted, frame)
            if resolved is None or not _is_lock_like(resolved):
                continue
            rendered = repr(resolved)
            if not rendered.startswith("<locked"):
                continue
            sample.blocked = True
            sample.waiting_on = dotted
            sample.waiting_on_id = id(resolved)
            owner = _OWNER_RE.search(rendered)
            if owner is not None:
                sample.owner_ident = int(owner.group(1))
            return

    @staticmethod
    def _resolve(dotted: str, frame: Any) -> Any:
        parts = dotted.split(".")
        scope = frame.f_locals
        if parts[0] in scope:
            value = scope[parts[0]]
        elif parts[0] in frame.f_globals:
            value = frame.f_globals[parts[0]]
        else:
            return None
        for attr in parts[1:]:
            try:
                value = getattr(value, attr)
            except AttributeError:
                return None
        return value

    # -- verdict --------------------------------------------------------

    def classify(self, samples: List[ThreadSample]) -> Optional[StallVerdict]:
        """A :class:`StallVerdict` iff every sampled thread is blocked."""
        live = [s for s in samples if s is not None]
        if not live or not all(s.blocked for s in live):
            return None
        by_ident = {s.ident: s.thread for s in live}
        edges: List[Tuple[int, int, str]] = []
        for s in live:
            if s.owner_ident is not None and s.owner_ident in by_ident:
                owner_index = by_ident[s.owner_ident]
                if owner_index != s.thread:
                    edges.append((s.thread, owner_index, s.waiting_on or "?"))
        return StallVerdict(samples=live, edges=edges, cycle=_find_cycle(edges))

    def confirmed_deadlock(
        self,
        threads: List[Tuple[int, str, Optional[int]]],
        *,
        recheck_delay: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Optional[StallVerdict]:
        """Sample twice with a delay; a verdict must hold in both samples.

        The double sample rejects transient contention (a thread briefly
        parked on a busy lock moves between samples) without waiting out
        the whole grace period.
        """
        first = self.classify(self.sample(threads))
        if first is None:
            return None
        sleep(recheck_delay)
        second = self.classify(self.sample(threads))
        if second is None:
            return None
        held = {(s.thread, s.line, s.waiting_on) for s in first.samples}
        again = {(s.thread, s.line, s.waiting_on) for s in second.samples}
        if held != again:
            return None
        return second


def _is_lock_like(candidate: Any) -> bool:
    """Duck-typed synchronization primitive: acquire+release+locked repr."""
    return (
        callable(getattr(candidate, "acquire", None))
        and callable(getattr(candidate, "release", None))
        and not isinstance(candidate, type)
    )


def _find_cycle(edges: List[Tuple[int, int, str]]) -> List[int]:
    """First cycle in the waits-for graph, as a thread-index list."""
    graph: Dict[int, int] = {src: dst for src, dst, _lock in edges}
    for start in graph:
        seen: List[int] = []
        node = start
        while node in graph and node not in seen:
            seen.append(node)
            node = graph[node]
        if node in seen:
            return seen[seen.index(node):]
    return []
