"""The supervision layer: deadlines, interrupts, and crash recovery.

The paper's control interface promises that every control call *returns
only when the inferior is paused or terminated*. The seed implementations
made that promise unconditionally: a spinning inferior, a crashed debug
server, or a garbled MI pipe would block the embedding tool forever. This
module makes the promise enforceable, the same way for every backend:

- :class:`Deadline` — a monotonic-clock budget threaded through a control
  call. When it expires the backend *interrupts* the inferior (settrace
  async-pause flag for the Python tracker, ``-exec-interrupt`` / SIGINT
  for the debug server) so the call still returns with the tracker paused;
  :class:`repro.core.errors.ControlTimeout` is raised only when the
  interrupt itself fails to land within the grace period.
- :class:`BackoffPolicy` + :func:`run_with_recovery` — bounded exponential
  backoff around backend restarts. Exhausted retries degrade to a terminal
  ``"unavailable"`` health state
  (:class:`repro.core.errors.BackendUnavailableError`), never a hang.
- :class:`SupervisionEvent` — restarts, interrupts and wedged inferiors
  are surfaced as events (``Tracker.drain_supervision_events``) and
  counted in :class:`repro.core.engine.TrackerStats`.

Shared by all four tracker backends, analogous to how
:class:`repro.core.engine.ControlPointEngine` unified pause dispatch.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, TypeVar

from repro.core.errors import BackendUnavailableError

__all__ = [
    "BackoffPolicy",
    "Deadline",
    "SupervisionEvent",
    "BACKEND_RESTARTED",
    "BACKEND_UNAVAILABLE",
    "INFERIOR_INTERRUPTED",
    "INFERIOR_PROCESS_DIED",
    "INFERIOR_WEDGED",
    "format_thread_stack",
    "run_with_recovery",
]

#: Event kinds (``SupervisionEvent.kind`` values).
BACKEND_RESTARTED = "backend-restarted"
BACKEND_UNAVAILABLE = "backend-unavailable"
INFERIOR_INTERRUPTED = "inferior-interrupted"
INFERIOR_WEDGED = "inferior-wedged"
#: The process hosting the inferior died mid-run (subprocess isolation:
#: a segfault, ``os._exit``, OOM kill or rlimit kill took the child down).
INFERIOR_PROCESS_DIED = "inferior-process-died"

#: Floor on the interrupt grace period, so tiny deadlines still leave the
#: interrupt a realistic chance to land before ControlTimeout.
_MIN_GRACE = 0.05


class Deadline:
    """A monotonic-clock deadline for one control call.

    The budget is split in two phases of equal length (the acceptance
    contract is "returns within 2x the deadline"): at ``timeout`` the
    supervisor requests an interrupt; if the inferior still has not paused
    after the *grace* phase — another ``timeout`` seconds (at least
    ``0.05 s``) — the call gives up with ``ControlTimeout``.
    """

    def __init__(self, timeout: float):
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout!r}")
        self.timeout = timeout
        self.grace = max(timeout, _MIN_GRACE)
        self._start = time.monotonic()
        #: Set once the interrupt request has been issued.
        self.interrupt_requested = False

    def remaining(self) -> float:
        """Seconds left before the interrupt phase starts (may be < 0)."""
        return self.timeout - (time.monotonic() - self._start)

    def expired(self) -> bool:
        return self.remaining() <= 0

    def grace_remaining(self) -> float:
        """Seconds left before the call must give up entirely."""
        return (self.timeout + self.grace) - (time.monotonic() - self._start)

    def grace_expired(self) -> bool:
        return self.grace_remaining() <= 0


@dataclass
class SupervisionEvent:
    """One supervision occurrence (restart, interrupt, wedge, give-up)."""

    kind: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


@dataclass
class BackoffPolicy:
    """Bounded exponential backoff for backend crash recovery.

    Attributes:
        max_restarts: restart attempts before degrading to
            ``BackendUnavailableError`` (0 disables recovery).
        initial_delay: seconds slept before the first restart attempt.
        multiplier: factor applied to the delay after each attempt.
        max_delay: upper bound on any single delay.
    """

    max_restarts: int = 2
    initial_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def delays(self) -> Iterator[float]:
        """The deterministic delay schedule, one entry per attempt."""
        delay = self.initial_delay
        for _ in range(self.max_restarts):
            yield min(delay, self.max_delay)
            delay *= self.multiplier


_T = TypeVar("_T")


def run_with_recovery(
    call: Callable[[], _T],
    *,
    restart: Callable[[BaseException], None],
    policy: Optional[BackoffPolicy],
    recoverable: tuple = (Exception,),
    on_restarted: Optional[Callable[[BaseException, int], None]] = None,
    on_unavailable: Optional[Callable[[BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> _T:
    """Run ``call``; on a recoverable failure restart the backend and retry.

    Args:
        call: the supervised operation. Retried at most once per restart.
        restart: brings the backend back up; receives the triggering error
            and may itself raise a recoverable error (counts as a failed
            attempt).
        policy: the backoff schedule; ``None`` or ``max_restarts=0`` means
            the first failure is already terminal.
        recoverable: exception classes that trigger recovery; anything
            else propagates untouched.
        on_restarted: called after each successful restart with the error
            that caused it and the 1-based attempt number.
        on_unavailable: called once when retries are exhausted, just
            before ``BackendUnavailableError`` is raised.
        sleep: injection point for tests (defaults to ``time.sleep``).

    Raises:
        BackendUnavailableError: when the schedule is exhausted; the last
            backend error is chained as ``__cause__``.
    """
    try:
        return call()
    except recoverable as error:
        last_error: BaseException = error
    schedule = list(policy.delays()) if policy is not None else []
    for attempt, delay in enumerate(schedule, start=1):
        sleep(delay)
        try:
            restart(last_error)
        except recoverable as error:
            last_error = error
            continue
        if on_restarted is not None:
            on_restarted(last_error, attempt)
        try:
            return call()
        except recoverable as error:
            last_error = error
    if on_unavailable is not None:
        on_unavailable(last_error)
    raise BackendUnavailableError(
        f"backend did not survive {len(schedule)} restart attempt(s): "
        f"{last_error}"
    ) from last_error


def format_thread_stack(thread: threading.Thread) -> str:
    """Render the current Python stack of ``thread`` (best effort).

    Used when an inferior thread refuses to die: the warning that marks
    the tracker invalid includes where the inferior is stuck, via
    ``sys._current_frames()``.
    """
    import sys

    ident = thread.ident
    if ident is None:
        return "<thread not started>"
    frame = sys._current_frames().get(ident)
    if frame is None:
        return "<no stack available>"
    return "".join(traceback.format_stack(frame))
