"""Adapters presenting mini-C and RISC-V inferiors to the debug server.

The server's run control works on the shared event stream of
:mod:`repro.minic.events`; these adapters add the inspection surface each
backend can provide (frames + globals + heap map for C, registers + raw
memory + disassembly for assembly).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.errors import ProgramLoadError
from repro.core.state import (
    AbstractType,
    Frame,
    Location,
    Value,
    Variable,
    frame_to_dict,
    variable_to_dict,
)
from repro.minic.events import Event
from repro.minic.interpreter import Interpreter
from repro.minic.parser import parse
from repro.riscv.assembler import assemble
from repro.riscv.machine import Machine
from repro.mi.staterender import CStateRenderer, render_watch


class InferiorAdapter:
    """What the debug server needs from any inferior backend."""

    filename: str = ""

    def events(self) -> Iterator[Event]:
        raise NotImplementedError

    def frame_chain(self) -> Frame:
        raise NotImplementedError

    def globals_map(self) -> Dict[str, Variable]:
        raise NotImplementedError

    def registers(self) -> Optional[Dict[str, int]]:
        return None

    def read_memory(self, address: int, count: int) -> bytes:
        raise NotImplementedError

    def disassemble(self, function: str) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def render_watch(self, function: Optional[str], name: str) -> Optional[str]:
        raise NotImplementedError

    def current_pc(self) -> Optional[int]:
        return None

    def function_names(self) -> List[str]:
        raise NotImplementedError

    def heap_blocks(self) -> Dict[int, int]:
        return {}

    def exit_error(self) -> Optional[str]:
        return None


class MinicInferior(InferiorAdapter):
    """A mini-C program under the interpreter substrate."""

    def __init__(self, path: str, args: Optional[List[str]] = None):
        with open(path, "r", encoding="utf-8") as source:
            text = source.read()
        self.filename = os.path.abspath(path)
        program = parse(text, self.filename)
        self.interpreter = Interpreter(program, args=args)

    def events(self) -> Iterator[Event]:
        return self.interpreter.run()

    def frame_chain(self) -> Frame:
        return CStateRenderer(self.interpreter).frame_chain()

    def globals_map(self) -> Dict[str, Variable]:
        return CStateRenderer(self.interpreter).globals()

    def read_memory(self, address: int, count: int) -> bytes:
        return self.interpreter.memory.read(address, count)

    def disassemble(self, function: str) -> List[Dict[str, Any]]:
        # C functions have no instruction stream in this substrate; report
        # the single conceptual return site (the interpreter's epilogue).
        definition = self.interpreter.functions.get(function)
        if definition is None:
            raise ProgramLoadError(f"unknown function {function!r}")
        address = self.interpreter.function_addresses[function]
        return [
            {
                "address": address,
                "mnemonic": "enter",
                "text": f"{function}: enter",
                "is_return": False,
                "line": definition.line,
            },
            {
                "address": address + 8,
                "mnemonic": "ret",
                "text": f"{function}: ret",
                "is_return": True,
                "line": definition.end_line,
            },
        ]

    def render_watch(self, function: Optional[str], name: str) -> Optional[str]:
        return render_watch(self.interpreter, function, name)

    def function_names(self) -> List[str]:
        return sorted(self.interpreter.functions)

    def heap_blocks(self) -> Dict[int, int]:
        return self.interpreter.memory.live_blocks()

    def exit_error(self) -> Optional[str]:
        return self.interpreter.error


class RiscvInferior(InferiorAdapter):
    """A RISC-V assembly program under the machine simulator."""

    def __init__(self, path: str, args: Optional[List[str]] = None):
        with open(path, "r", encoding="utf-8") as source:
            text = source.read()
        self.filename = os.path.abspath(path)
        self.program = assemble(text, self.filename)
        self.machine = Machine(self.program)

    def events(self) -> Iterator[Event]:
        return self.machine.run()

    def frame_chain(self) -> Frame:
        frames = []
        for index, rv_frame in enumerate(self.machine.call_stack):
            frames.append(
                Frame(
                    name=rv_frame.function,
                    depth=index,
                    variables={},
                    line=None,
                    filename=self.filename,
                )
            )
        instruction = self.program.instruction_at(self.machine.pc)
        if instruction is not None and frames:
            frames[-1].line = instruction.line
        # Innermost frame exposes the registers as variables so generic
        # (language-agnostic) tools see *something* useful for assembly.
        if frames:
            frames[-1].variables = {
                name: Variable(
                    name=name,
                    value=Value(
                        abstract_type=AbstractType.PRIMITIVE,
                        content=value,
                        location=Location.REGISTER,
                        address=None,
                        language_type="register",
                    ),
                    scope="register",
                )
                for name, value in self.machine.register_map().items()
            }
        for inner, outer in zip(frames[::-1], frames[-2::-1]):
            inner.parent = outer
        return frames[-1] if frames else Frame(name="<none>", depth=0)

    def globals_map(self) -> Dict[str, Variable]:
        result: Dict[str, Variable] = {}
        for symbol, address in self.program.symbols.items():
            if any(address == a for a, _ in self.program.text_labels):
                continue
            try:
                word = self.machine.read_word(address)
            except Exception:
                continue
            result[symbol] = Variable(
                name=symbol,
                value=Value(
                    abstract_type=AbstractType.PRIMITIVE,
                    content=word,
                    location=Location.GLOBAL,
                    address=address,
                    language_type="word",
                ),
                scope="global",
            )
        return result

    def registers(self) -> Optional[Dict[str, int]]:
        return self.machine.register_map()

    def read_memory(self, address: int, count: int) -> bytes:
        # Memory *viewers* ask for fixed-size windows that may extend past
        # a segment; unmapped bytes read as zero (as in a debugger's memory
        # pane) instead of faulting the whole request.
        chunk = bytearray()
        for offset in range(count):
            try:
                chunk += self.machine.read_memory(address + offset, 1)
            except Exception:
                chunk.append(0)
        return bytes(chunk)

    def disassemble(self, function: str) -> List[Dict[str, Any]]:
        return [
            {
                "address": instruction.address,
                "mnemonic": instruction.mnemonic,
                "text": instruction.text,
                "is_return": instruction.is_return(),
                "line": instruction.line,
            }
            for instruction in self.program.function_body(function)
        ]

    def render_watch(self, function: Optional[str], name: str) -> Optional[str]:
        registers = self.machine.register_map()
        if name in registers:
            return str(registers[name])
        address = self.program.symbols.get(name)
        if address is None:
            return None
        try:
            return self.machine.read_memory(address, 4).hex()
        except Exception:
            return None

    def current_pc(self) -> Optional[int]:
        return self.machine.pc

    def function_names(self) -> List[str]:
        return [label for _, label in self.program.text_labels]

    def exit_error(self) -> Optional[str]:
        return self.machine.error


def open_inferior(path: str, args: Optional[List[str]] = None) -> InferiorAdapter:
    """Create the right adapter from the program's file extension."""
    if path.endswith(".c"):
        return MinicInferior(path, args)
    if path.endswith((".s", ".S", ".asm")):
        return RiscvInferior(path, args)
    raise ProgramLoadError(
        f"cannot infer inferior language from {path!r} (expect .c or .s)"
    )
