"""Build the language-agnostic state model from a paused mini-C inferior.

This is the reproduction of the paper's "custom inspection command": it
recursively explores stack frames and the memory locations reachable from
local variables, creating ``Frame``/``Variable``/``Value`` instances
(Section II-C1). The interesting rules, all from the paper:

- ``char*`` is a PRIMITIVE whose content is the pointed-to string;
- other valid pointers are REF values whose content is the target value;
- invalid pointers (NULL, unmapped, freed, uninitialized garbage) are
  INVALID — the tools draw them as a cross;
- a pointer into a live heap block bigger than one element renders the
  whole block as a LIST (possible only because the allocator registry
  records block sizes — the malloc-interposition payoff);
- arrays are LIST, structs are STRUCT, function pointers are FUNCTION.

Everything returned is plain model data, ready for ``frame_to_dict`` and a
trip through the server pipe.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.state import AbstractType, Frame, Location, Value, Variable
from repro.minic.ctypes import (
    ArrayType,
    CType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    VoidType,
)
from repro.minic.interpreter import CFrame, Interpreter
from repro.minic.memory import MemoryFault, NULL

_LOCATION_BY_SEGMENT = {
    "stack": Location.STACK,
    "heap": Location.HEAP,
    "global": Location.GLOBAL,
}

#: Pointer-chase depth cap: linked structures longer than this are truncated
#: with an INVALID marker rather than chased forever.
MAX_POINTER_DEPTH = 16


class CStateRenderer:
    """Renders one paused inferior's state; memoizes shared targets."""

    def __init__(self, interpreter: Interpreter):
        self.interpreter = interpreter
        self.memory = interpreter.memory
        self._memo: Dict[Tuple[int, str], Value] = {}

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def frame_chain(self) -> Frame:
        """The model frame chain for the current call stack, innermost first."""
        model_frames = []
        for cframe in self.interpreter.call_stack:
            model_frames.append(self._render_frame(cframe))
        for inner, outer in zip(model_frames[::-1], model_frames[-2::-1]):
            inner.parent = outer
        if not model_frames:
            return Frame(name="<none>", depth=0)
        return model_frames[-1]

    def globals(self) -> Dict[str, Variable]:
        result: Dict[str, Variable] = {}
        for name, (address, ctype) in self.interpreter.globals.items():
            result[name] = Variable(
                name=name,
                value=self.render_value(ctype, address, Location.GLOBAL),
                scope="global",
            )
        return result

    # ------------------------------------------------------------------
    # Frames and variables
    # ------------------------------------------------------------------

    def _render_frame(self, cframe: CFrame) -> Frame:
        variables: Dict[str, Variable] = {}
        for name, (address, ctype) in cframe.locals.items():
            scope = "argument" if name in cframe.arg_names else "local"
            variables[name] = Variable(
                name=name,
                value=self.render_value(ctype, address, Location.STACK),
                scope=scope,
            )
        return Frame(
            name=cframe.name,
            depth=cframe.depth,
            variables=variables,
            line=cframe.line,
            filename=self.interpreter.program.filename,
        )

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------

    def render_value(
        self, ctype: CType, address: int, location: Location, depth: int = 0
    ) -> Value:
        """Model the object of type ``ctype`` stored at ``address``."""
        key = (address, ctype.name)
        if key in self._memo:
            return self._memo[key]
        if isinstance(ctype, IntType):
            return self._scalar(ctype, address, location)
        if isinstance(ctype, FloatType):
            return self._scalar(ctype, address, location)
        if isinstance(ctype, PointerType):
            return self._pointer(ctype, address, location, depth)
        if isinstance(ctype, ArrayType):
            return self._array(ctype, address, location, depth)
        if isinstance(ctype, StructType):
            return self._struct(ctype, address, location, depth)
        return Value(
            abstract_type=AbstractType.INVALID,
            content=None,
            location=location,
            address=address,
            language_type=ctype.name,
        )

    def _scalar(self, ctype: CType, address: int, location: Location) -> Value:
        try:
            raw = self.memory.read_scalar(address, ctype)
        except MemoryFault:
            return self._invalid(ctype, address, location)
        if isinstance(ctype, IntType) and ctype.name == "char":
            # A char shows as its character when printable, else its code.
            content = chr(raw) if 32 <= raw < 127 else raw
        else:
            content = raw
        value = Value(
            abstract_type=AbstractType.PRIMITIVE,
            content=content,
            location=location,
            address=address,
            language_type=ctype.name,
        )
        self._memo[(address, ctype.name)] = value
        return value

    def _pointer(
        self, ctype: PointerType, address: int, location: Location, depth: int
    ) -> Value:
        try:
            target_address = self.memory.read_scalar(address, ctype)
        except MemoryFault:
            return self._invalid(ctype, address, location)
        # Function pointers.
        if isinstance(ctype.target, FunctionType) or (
            target_address in self.interpreter.address_to_function
        ):
            name = self.interpreter.address_to_function.get(target_address)
            if name is None:
                return self._invalid(ctype, address, location)
            return Value(
                abstract_type=AbstractType.FUNCTION,
                content=name,
                location=location,
                address=address,
                language_type=ctype.name,
            )
        # char*: a PRIMITIVE string, per the paper's model.
        if (
            isinstance(ctype.target, IntType)
            and ctype.target.name == "char"
            and self.memory.is_valid(target_address, 1)
        ):
            return Value(
                abstract_type=AbstractType.PRIMITIVE,
                content=self.memory.read_cstring(target_address),
                location=location,
                address=address,
                language_type=ctype.name,
            )
        target_size = max(ctype.target.size, 1)
        if (
            target_address == NULL
            or isinstance(ctype.target, VoidType)
            or not self.memory.is_valid(target_address, target_size)
            or depth >= MAX_POINTER_DEPTH
        ):
            return self._invalid(ctype, address, location)
        value = Value(
            abstract_type=AbstractType.REF,
            content=Value(AbstractType.NONE, None),  # placeholder
            location=location,
            address=address,
            language_type=ctype.name,
        )
        self._memo[(address, ctype.name)] = value
        target_location = self._location_of(target_address)
        block = self.memory.block_containing(target_address)
        if (
            block is not None
            and not block.freed
            and target_address == block.address
            and block.size >= 2 * target_size
        ):
            # A malloc'd array: render the whole block as a LIST.
            length = block.size // target_size
            value.content = self._heap_array(
                ctype.target, target_address, length, depth + 1
            )
        else:
            value.content = self.render_value(
                ctype.target, target_address, target_location, depth + 1
            )
        return value

    def _heap_array(
        self, element: CType, address: int, length: int, depth: int
    ) -> Value:
        key = (address, f"{element.name}[{length}]")
        if key in self._memo:
            return self._memo[key]
        elements = tuple(
            self.render_value(
                element, address + index * element.size, Location.HEAP, depth
            )
            for index in range(length)
        )
        value = Value(
            abstract_type=AbstractType.LIST,
            content=elements,
            location=Location.HEAP,
            address=address,
            language_type=f"{element.name}[{length}]",
        )
        self._memo[(address, f"{element.name}[{length}]")] = value
        return value

    def _array(
        self, ctype: ArrayType, address: int, location: Location, depth: int
    ) -> Value:
        if isinstance(ctype.element, IntType) and ctype.element.size == 1:
            # char arrays render as their string content.
            return Value(
                abstract_type=AbstractType.PRIMITIVE,
                content=self.memory.read_cstring(address),
                location=location,
                address=address,
                language_type=ctype.name,
            )
        elements = tuple(
            self.render_value(
                ctype.element,
                address + index * ctype.element.size,
                location,
                depth + 1,
            )
            for index in range(ctype.length)
        )
        value = Value(
            abstract_type=AbstractType.LIST,
            content=elements,
            location=location,
            address=address,
            language_type=ctype.name,
        )
        self._memo[(address, ctype.name)] = value
        return value

    def _struct(
        self, ctype: StructType, address: int, location: Location, depth: int
    ) -> Value:
        value = Value(
            abstract_type=AbstractType.STRUCT,
            content={},
            location=location,
            address=address,
            language_type=ctype.name,
        )
        self._memo[(address, ctype.name)] = value
        value.content = {
            field.name: self.render_value(
                field.ctype, address + field.offset, location, depth + 1
            )
            for field in ctype.fields.values()
        }
        return value

    def _invalid(self, ctype: CType, address: int, location: Location) -> Value:
        return Value(
            abstract_type=AbstractType.INVALID,
            content=None,
            location=location,
            address=address,
            language_type=ctype.name,
        )

    def _location_of(self, address: int) -> Location:
        segment = self.memory.segment_of(address)
        return _LOCATION_BY_SEGMENT.get(segment, Location.UNKNOWN)


def render_watch(
    interpreter: Interpreter, function: Optional[str], name: str
) -> Optional[str]:
    """A compact, comparison-stable rendering of a watched variable.

    Watches compare the variable's *raw bytes*, so writes through aliases
    and pointers are detected too. Returns ``None`` when the variable is not
    currently in scope.
    """
    location = _find_variable(interpreter, function, name)
    if location is None:
        return None
    address, ctype = location
    try:
        return interpreter.memory.read(address, max(ctype.size, 1)).hex()
    except MemoryFault:
        return None


def _find_variable(
    interpreter: Interpreter, function: Optional[str], name: str
) -> Optional[Tuple[int, CType]]:
    if function is not None:
        for cframe in reversed(interpreter.call_stack):
            if cframe.name == function and name in cframe.locals:
                return cframe.locals[name]
        return None
    if interpreter.call_stack and name in interpreter.call_stack[-1].locals:
        return interpreter.call_stack[-1].locals[name]
    return interpreter.globals.get(name)
