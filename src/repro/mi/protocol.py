"""The machine-interface wire protocol between tracker and debug server.

Modeled on GDB/MI, which the paper's GDB tracker drives through a pipe:
commands look like ``-exec-continue`` or ``-break-insert main --maxdepth 2``,
and the server answers with *records*, one per line:

- ``^done`` / ``^done,<json>`` — synchronous success (payload optional);
- ``^error,msg=<json-string>`` — synchronous failure;
- ``^running`` — an exec command was accepted, the inferior is running;
- ``*stopped,<json>`` — async: the inferior paused or exited (payload
  carries the pause reason);
- ``~<json-string>`` — console stream: text the inferior printed;
- ``=<name>,<json>`` — async notification (e.g. heap allocations).

Structured payloads are JSON rather than GDB's ad-hoc tuple syntax — the
substitution keeps the record framing and the command vocabulary while
avoiding a bug-for-bug reimplementation of MI quoting. Parsing is shared by
the client and the server's tests.

Session multiplexing rides on GDB/MI's *token* syntax: a command may be
prefixed with a session id glued to the leading dash (``s1-exec-continue``)
and every record answering it carries the same prefix (``s1^running``,
``s1*stopped,...``). An absent id means the legacy single-session protocol
— old clients and old servers interoperate with new ones unchanged,
because the id is pure prefix and the grammar after it is identical. Ids
are limited to ``[A-Za-z0-9_.]``, and a prefix is only recognized when
followed by a record marker (``^ * ~ =``) or a two-word MI command name,
so the boundary with the command's own leading ``-`` is unambiguous.
"""

from __future__ import annotations

import json
import re
import shlex
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import ProtocolError

#: A session id glued to the start of a command or record line. The
#: lookahead requires the marker that follows: a record marker
#: (``^ * ~ =``), or — for commands — a well-formed MI command name,
#: which always has at least two hyphen-joined words (``-exec-run``,
#: ``-break-insert``). The two-word requirement keeps a bare malformed
#: token like ``exec-run`` from being misread as session ``exec`` plus
#: a command ``-run``; it stays a protocol error, as in the id-less
#: grammar.
_SESSION_PREFIX = re.compile(
    r"^([A-Za-z0-9_.]+)(?=[\^*~=]|-[A-Za-z0-9]+-[A-Za-z0-9])"
)

#: A full, valid session id (for validating caller-chosen ids).
_SESSION_ID = re.compile(r"^[A-Za-z0-9_.]+$")

#: Marker a *retryable* ``^error`` carries inside its message, so clients
#: can distinguish "go away" from "come back in N seconds" without a new
#: record kind (old parsers read the marker as message text, unchanged).
_RETRY_AFTER = re.compile(r"\[retry-after=([0-9.]+)s\]")


def retryable_message(message: str, retry_after: float) -> str:
    """Append the retry-after marker to an error message."""
    return f"{message} [retry-after={retry_after:g}s]"


def parse_retry_after(message: str) -> "Optional[float]":
    """The retry-after hint embedded in an error message, if any."""
    match = _RETRY_AFTER.search(message or "")
    return float(match.group(1)) if match else None


def valid_session_id(session: str) -> bool:
    """Whether ``session`` can be used as an MI session-id prefix."""
    return bool(_SESSION_ID.match(session))


def split_session(line: str) -> Tuple[Optional[str], str]:
    """Split an optional session-id prefix off a command or record line.

    Returns ``(session_id, rest)``; ``session_id`` is ``None`` for legacy
    id-less lines, and ``rest`` is always the line's grammar unchanged.
    """
    match = _SESSION_PREFIX.match(line)
    if match is None:
        return None, line
    return match.group(1), line[match.end():]


def tag_record(line: str, session: Optional[str]) -> str:
    """Prefix a formatted record line with a session id (``None`` = no-op)."""
    if session is None:
        return line
    return session + line


@dataclass
class Command:
    """A parsed MI command: name, positional args, ``--key value`` options.

    ``session`` is the multiplexing id the command line was prefixed with
    (``s1-exec-run``); ``None`` for legacy id-less commands.
    """

    name: str
    args: List[str] = field(default_factory=list)
    options: Dict[str, str] = field(default_factory=dict)
    session: Optional[str] = None

    def option_int(self, key: str) -> Optional[int]:
        raw = self.options.get(key)
        return int(raw) if raw is not None else None


def parse_command(line: str) -> Command:
    """Parse one command line (as the server reads it from its stdin)."""
    session, line = split_session(line.strip())
    try:
        tokens = shlex.split(line)
    except ValueError as error:
        raise ProtocolError(f"malformed MI command: {line!r} ({error})") from error
    if not tokens or not tokens[0].startswith("-"):
        raise ProtocolError(f"malformed MI command: {line!r}")
    name = tokens[0]
    args: List[str] = []
    options: Dict[str, str] = {}
    index = 1
    while index < len(tokens):
        token = tokens[index]
        if token == "--":
            # End-of-options marker: everything after is positional, even
            # tokens that look like options (see format_command).
            args.extend(tokens[index + 1:])
            break
        if token.startswith("--"):
            if index + 1 >= len(tokens):
                raise ProtocolError(f"option {token} is missing its value")
            options[token[2:]] = tokens[index + 1]
            index += 2
        else:
            args.append(token)
            index += 1
    return Command(name=name, args=args, options=options, session=session)


def format_command(
    name: str,
    args: Optional[List[str]] = None,
    options: Optional[Dict[str, Any]] = None,
    session: Optional[str] = None,
) -> str:
    """Format a command line (as the client writes it to the server).

    Positional arguments that would parse as options (anything starting
    with ``--``) are fenced behind an explicit ``--`` end-of-options
    marker, so every args/options combination round-trips through
    :func:`parse_command`. A ``session`` id is glued to the command name
    (``s1-exec-run``), the multiplexed-session framing.
    """
    if session is not None and not valid_session_id(session):
        raise ProtocolError(f"invalid session id {session!r}")
    parts = [name if session is None else session + name]
    for key, value in (options or {}).items():
        parts.append(f"--{key}")
        parts.append(shlex.quote(str(value)))
    arguments = [str(argument) for argument in (args or [])]
    if any(argument.startswith("--") for argument in arguments):
        parts.append("--")
    parts.extend(shlex.quote(argument) for argument in arguments)
    return " ".join(parts)


@dataclass
class Record:
    """A parsed server record.

    ``session`` is the multiplexing id the record line was prefixed with
    (``s1^done``); ``None`` for legacy id-less records.
    """

    kind: str  # "done", "error", "running", "stopped", "stream", "notify"
    payload: Any = None
    notify_name: str = ""
    session: Optional[str] = None


def format_done(payload: Any = None) -> str:
    if payload is None:
        return "^done"
    return "^done," + json.dumps(payload, separators=(",", ":"))


def format_error(message: str) -> str:
    return "^error,msg=" + json.dumps(message)


def format_running() -> str:
    return "^running"


def format_stopped(payload: Dict[str, Any]) -> str:
    return "*stopped," + json.dumps(payload, separators=(",", ":"))


def format_stream(text: str) -> str:
    return "~" + json.dumps(text)


def format_notify(name: str, payload: Dict[str, Any]) -> str:
    return f"={name}," + json.dumps(payload, separators=(",", ":"))


def parse_record(line: str) -> Record:
    """Parse one record line (as the client reads it from the server).

    Raises:
        ProtocolError: on any malformed line — unknown record marker or
            truncated/garbled payload JSON. The caller never sees a raw
            ``json.JSONDecodeError``.
    """
    line = line.rstrip("\n")
    session, line = split_session(line)
    try:
        if line.startswith("^done"):
            rest = line[len("^done") :]
            payload = json.loads(rest[1:]) if rest.startswith(",") else None
            return Record(kind="done", payload=payload, session=session)
        if line.startswith("^error,msg="):
            return Record(
                kind="error",
                payload=json.loads(line[len("^error,msg=") :]),
                session=session,
            )
        if line.startswith("^running"):
            return Record(kind="running", session=session)
        if line.startswith("*stopped,"):
            return Record(
                kind="stopped",
                payload=json.loads(line[len("*stopped,") :]),
                session=session,
            )
        if line.startswith("~"):
            return Record(
                kind="stream", payload=json.loads(line[1:]), session=session
            )
        if line.startswith("="):
            name, _, payload = line[1:].partition(",")
            return Record(
                kind="notify",
                payload=json.loads(payload) if payload else None,
                notify_name=name,
                session=session,
            )
    except ValueError as error:
        raise ProtocolError(
            f"garbled MI record: {line!r} ({error})"
        ) from error
    raise ProtocolError(f"unparsable MI record: {line!r}")
