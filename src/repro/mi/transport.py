"""Pipe transports for the MI protocol: one subprocess, three pipes.

Two implementations share one contract — framing (one record per line),
liveness (a dead server is reaped and diagnosed as a
:class:`~repro.core.errors.ServerCrashError` carrying the exit code and a
bounded stderr tail), and interrupt delivery (``-exec-interrupt`` down the
pipe plus ``SIGINT`` as a belt-and-braces fallback):

- :class:`PipeTransport` — the blocking transport behind
  :class:`repro.mi.client.MIClient`. stdout and stderr are drained by
  daemon threads so every receive can carry a deadline; both buffers are
  *bounded rings*, so a log-flooding child cannot grow client memory
  without limit (drops are counted and surfaced through
  :class:`~repro.core.engine.TrackerStats`).
- :class:`AsyncPipeTransport` — the same contract on
  ``asyncio.subprocess`` for the multiplexing tracker service
  (:mod:`repro.service`): no pump threads, no polling — one event loop
  owns many children and sleeps until one of them speaks.
"""

from __future__ import annotations

import asyncio
import collections
import signal
import subprocess
import sys
import threading
from typing import Any, Callable, List, Optional

from repro.core.errors import ServerCrashError
from repro.mi import protocol

#: Sentinel queued by the reader thread when the server's stdout hits EOF.
_EOF = object()

#: How many trailing stderr lines a crashed server leaves behind.
STDERR_TAIL_LINES = 20

#: Default bound on buffered-but-unread stdout lines. Generous — normal
#: sessions buffer a handful of records — but finite, so a child that
#: floods its stdout evicts its own oldest lines instead of growing the
#: client without limit.
MAX_BUFFERED_LINES = 100_000

#: Deadline (seconds) on the greeting of a freshly spawned server.
SPAWN_TIMEOUT = 30.0

#: asyncio stream-reader line limit: timeline dumps serialize a whole
#: recording into one record line, so the default 64 KiB is far too small.
_ASYNC_LINE_LIMIT = 1 << 24


def crash_error(
    context: str,
    exit_code: Optional[int],
    stderr_tail: List[str],
) -> ServerCrashError:
    """The uniform diagnosis both transports raise for a dead server."""
    return ServerCrashError(
        f"the debug server died ({context})",
        exit_code=exit_code,
        stderr_tail=stderr_tail,
    )


class _StderrTail:
    """A bounded tail of stderr lines, counting what scrolled off."""

    def __init__(self, maxlen: int = STDERR_TAIL_LINES):
        self._lines: "collections.deque[str]" = collections.deque(maxlen=maxlen)
        self.dropped = 0

    def append(self, line: str) -> None:
        if len(self._lines) == self._lines.maxlen:
            self.dropped += 1
        self._lines.append(line)

    def lines(self) -> List[str]:
        return list(self._lines)


class _LineRing:
    """A bounded, blocking line queue: a ring buffer with a condition.

    ``put`` never blocks — when the ring is full the *oldest* line is
    evicted and counted, which is the behavior that keeps a flooding
    child from wedging its own pump thread or growing the client.
    """

    def __init__(self, maxlen: int):
        self._lines: "collections.deque[Any]" = collections.deque()
        self._maxlen = maxlen
        self._ready = threading.Condition(threading.Lock())
        self.dropped = 0

    def put(self, item: Any) -> None:
        with self._ready:
            if self._maxlen and len(self._lines) >= self._maxlen:
                self._lines.popleft()
                self.dropped += 1
            self._lines.append(item)
            self._ready.notify()

    def get(self, timeout: Optional[float] = None) -> Any:
        """Next line; ``None`` when the timeout expires first."""
        with self._ready:
            if not self._ready.wait_for(lambda: self._lines, timeout):
                return None
            return self._lines.popleft()


class PipeTransport:
    """One debug-server subprocess and its three pipes (blocking client).

    stdout and stderr are drained by daemon threads: stdout lines land in
    a bounded ring (so receives can time out and floods cannot grow
    memory), stderr lines in a bounded tail buffer (so crash reports
    carry the server's last words). Drops on either side are counted and
    exposed via :meth:`lines_dropped`.
    """

    def __init__(
        self,
        argv: List[str],
        max_buffered_lines: int = MAX_BUFFERED_LINES,
    ):
        self._argv = list(argv)
        self._process = subprocess.Popen(
            self._argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            bufsize=1,
        )
        self._lines = _LineRing(max_buffered_lines)
        self._stderr_tail = _StderrTail()
        self._closed = False
        self._reader = threading.Thread(
            target=self._pump_stdout, name="mi-stdout-pump", daemon=True
        )
        self._reader.start()
        self._stderr_reader = threading.Thread(
            target=self._pump_stderr, name="mi-stderr-pump", daemon=True
        )
        self._stderr_reader.start()

    # -- pump threads ----------------------------------------------------

    def _pump_stdout(self) -> None:
        try:
            for line in self._process.stdout:
                self._lines.put(line)
        except ValueError:  # pipe closed under the reader
            pass
        self._lines.put(_EOF)

    def _pump_stderr(self) -> None:
        try:
            for line in self._process.stderr:
                self._stderr_tail.append(line.rstrip("\n"))
        except ValueError:
            pass

    # -- liveness --------------------------------------------------------

    def alive(self) -> bool:
        return self._process.poll() is None

    def exit_code(self) -> Optional[int]:
        return self._process.poll()

    def stderr_tail(self) -> List[str]:
        return self._stderr_tail.lines()

    def lines_dropped(self) -> int:
        """Buffered lines evicted by the stdout/stderr ring bounds."""
        return self._lines.dropped + self._stderr_tail.dropped

    def _crashed(self, context: str) -> ServerCrashError:
        """Reap the dead server and build the diagnosis."""
        try:
            exit_code = self._process.wait(timeout=2)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            exit_code = self._process.poll()
        return crash_error(context, exit_code, self.stderr_tail())

    # -- I/O -------------------------------------------------------------

    def send_line(self, line: str) -> None:
        if not self.alive():
            raise self._crashed("before the command could be sent")
        try:
            self._process.stdin.write(line + "\n")
            self._process.stdin.flush()
        except (BrokenPipeError, OSError, ValueError) as error:
            raise self._crashed(f"writing failed: {error}") from error

    def recv_line(self, timeout: Optional[float] = None) -> Optional[str]:
        """Next stdout line; ``None`` on timeout.

        Raises:
            ServerCrashError: the server's stdout reached EOF (it exited
                or was killed); the subprocess is reaped.
        """
        line = self._lines.get(timeout=timeout)
        if line is None:
            return None
        if line is _EOF:
            self._lines.put(_EOF)  # keep later receives failing fast
            raise self._crashed("its output pipe closed")
        return line

    def interrupt(self) -> None:
        """Ask the busy server to pause its inferior (async-signal style)."""
        try:
            self.send_line(protocol.format_command("-exec-interrupt"))
        except ServerCrashError:
            raise
        if hasattr(signal, "SIGINT"):
            try:
                self._process.send_signal(signal.SIGINT)
            except (ProcessLookupError, OSError):  # already gone
                pass

    # -- teardown --------------------------------------------------------

    def close(self, graceful_exit: bool = True) -> None:
        """Tear the subprocess down (idempotent, crash-tolerant)."""
        if self._closed:
            return
        self._closed = True
        if self.alive() and graceful_exit:
            try:
                self.send_line(protocol.format_command("-gdb-exit"))
                self._process.wait(timeout=2)
            except (ServerCrashError, subprocess.TimeoutExpired):
                pass
        if self.alive():
            self._process.kill()
            try:
                self._process.wait(timeout=2)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                pass
        for pipe in (self._process.stdin, self._process.stdout,
                     self._process.stderr):
            if pipe:
                try:
                    pipe.close()
                except OSError:  # pragma: no cover - defensive
                    pass


class AsyncPipeTransport:
    """The transport contract on ``asyncio.subprocess`` (event-loop client).

    Same framing, liveness and interrupt semantics as
    :class:`PipeTransport`, but no threads and no polling: reads await
    the child's stdout, timeouts are ``asyncio.wait_for`` slices, and one
    event loop can own hundreds of these (the warm-pool service does).

    Build with :meth:`spawn`, not the constructor.
    """

    def __init__(self) -> None:
        self._argv: List[str] = []
        self._process: Optional[asyncio.subprocess.Process] = None
        self._stderr_tail = _StderrTail()
        self._stderr_task: Optional["asyncio.Task[None]"] = None
        self._closed = False

    @classmethod
    async def spawn(cls, argv: List[str]) -> "AsyncPipeTransport":
        transport = cls()
        transport._argv = list(argv)
        transport._process = await asyncio.create_subprocess_exec(
            *argv,
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.PIPE,
            limit=_ASYNC_LINE_LIMIT,
        )
        transport._stderr_task = asyncio.ensure_future(
            transport._pump_stderr()
        )
        return transport

    async def _pump_stderr(self) -> None:
        try:
            while True:
                raw = await self._process.stderr.readline()
                if not raw:
                    return
                self._stderr_tail.append(
                    raw.decode("utf-8", "replace").rstrip("\n")
                )
        except (asyncio.CancelledError, ValueError):
            return

    # -- liveness --------------------------------------------------------

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    def alive(self) -> bool:
        return (
            self._process is not None and self._process.returncode is None
        )

    def exit_code(self) -> Optional[int]:
        return self._process.returncode if self._process else None

    def stderr_tail(self) -> List[str]:
        return self._stderr_tail.lines()

    def lines_dropped(self) -> int:
        return self._stderr_tail.dropped

    def _crashed(self, context: str) -> ServerCrashError:
        return crash_error(context, self.exit_code(), self.stderr_tail())

    # -- I/O -------------------------------------------------------------

    async def send_line(self, line: str) -> None:
        if not self.alive():
            raise self._crashed("before the command could be sent")
        try:
            self._process.stdin.write((line + "\n").encode("utf-8"))
            await self._process.stdin.drain()
        except (BrokenPipeError, ConnectionResetError, OSError) as error:
            raise self._crashed(f"writing failed: {error}") from error

    async def recv_line(self, timeout: Optional[float] = None) -> Optional[str]:
        """Next stdout line; ``None`` on timeout.

        Raises:
            ServerCrashError: the server's stdout reached EOF.
        """
        read = self._process.stdout.readline()
        if timeout is not None:
            try:
                raw = await asyncio.wait_for(read, timeout)
            except asyncio.TimeoutError:
                return None
        else:
            raw = await read
        if not raw:
            # Reap so exit_code() is accurate in the diagnosis.
            try:
                await asyncio.wait_for(self._process.wait(), 2)
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                pass
            raise self._crashed("its output pipe closed")
        return raw.decode("utf-8", "replace")

    def kill(self) -> None:
        """SIGKILL the child immediately (chaos/testing hook).

        The death is observed through the normal liveness paths: the next
        ``recv_line`` hits EOF and raises :class:`ServerCrashError`.
        """
        if self._process is not None and self.alive():
            try:
                self._process.kill()
            except ProcessLookupError:  # pragma: no cover - already gone
                pass

    async def interrupt(self) -> None:
        """Ask the busy server to pause its inferior (async-signal style)."""
        await self.send_line(protocol.format_command("-exec-interrupt"))
        if hasattr(signal, "SIGINT"):
            try:
                self._process.send_signal(signal.SIGINT)
            except (ProcessLookupError, OSError):  # already gone
                pass

    # -- teardown --------------------------------------------------------

    async def close(self, graceful_exit: bool = True) -> None:
        """Tear the subprocess down (idempotent, crash-tolerant)."""
        if self._closed or self._process is None:
            return
        self._closed = True
        if self.alive() and graceful_exit:
            try:
                await self.send_line(protocol.format_command("-gdb-exit"))
                await asyncio.wait_for(self._process.wait(), 2)
            except (ServerCrashError, asyncio.TimeoutError):
                pass
        if self.alive():
            try:
                self._process.kill()
            except ProcessLookupError:  # pragma: no cover - already gone
                pass
            try:
                await asyncio.wait_for(self._process.wait(), 5)
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                pass
        if self._stderr_task is not None:
            self._stderr_task.cancel()


def default_transport_factory(
    program: str, args: List[str]
) -> Callable[[], PipeTransport]:
    """The standard blocking transport over ``python -m repro.mi.server``."""
    argv = [sys.executable, "-m", "repro.mi.server", program] + args
    return lambda: PipeTransport(argv)
