"""A pygdbmi-style client for the debug server, with supervision.

Spawns ``python -m repro.mi.server <program>`` as a subprocess and talks MI
records over its stdin/stdout pipe — the same process architecture as the
paper's GDB tracker (Fig. 4): tool process on one side, debugger process
(with the inferior inside it) on the other, serialized state crossing the
pipe.

Robustness additions over the seed client:

- reads are pumped by a background thread into a queue, so every receive
  can carry a deadline — the client can *never* block forever on a silent
  or wedged server;
- liveness is checked on every send and detected promptly on pipe EOF; a
  dead server is reaped and reported as
  :class:`repro.core.errors.ServerCrashError` carrying the exit code and
  the last ~20 stderr lines;
- a control call whose deadline expires interrupts the inferior
  (``-exec-interrupt`` down the pipe, plus ``SIGINT`` as a belt-and-braces
  fallback) and keeps waiting one grace period for the ``*stopped``
  record; only if that also fails does it raise
  :class:`repro.core.errors.ControlTimeout`;
- :meth:`MIClient.restart` respawns the server subprocess in place, so the
  supervision layer (see :mod:`repro.core.supervision`) can recover from
  crashes without rebuilding the client;
- :meth:`close`/:meth:`stop` are idempotent, including after a crash.

The transport is a swappable object (:class:`PipeTransport`, which lives
in :mod:`repro.mi.transport` alongside its asyncio sibling
:class:`~repro.mi.transport.AsyncPipeTransport`) so the fault injection
harness (:mod:`repro.testing.faults`) can wrap it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import (
    ControlTimeout,
    ProtocolError,
    TrackerError,
)
from repro.core.supervision import Deadline
from repro.mi import protocol
from repro.mi.transport import (  # noqa: F401  (re-exported: historic home)
    _EOF,
    SPAWN_TIMEOUT as _SPAWN_TIMEOUT,
    STDERR_TAIL_LINES as _STDERR_TAIL,
    PipeTransport,
    default_transport_factory as _default_transport_factory,
)


class MIClient:
    """Drives one debug-server subprocess.

    Args:
        program: path of the inferior source (.c or .s).
        args: command-line arguments for the inferior.
        transport_factory: builds the transport on (re)spawn; injection
            point for the fault harness. Defaults to a
            :class:`PipeTransport` over ``python -m repro.mi.server``.
    """

    def __init__(
        self,
        program: str,
        args: Optional[List[str]] = None,
        *,
        transport_factory: Optional[Callable[[], PipeTransport]] = None,
    ):
        self.program = program
        self._transport_factory = transport_factory or _default_transport_factory(
            program, list(args or [])
        )
        #: all inferior output seen so far, in order
        self.console: List[str] = []
        #: async notifications (e.g. heap allocations), in order
        self.notifications: List[protocol.Record] = []
        #: server restarts performed over this client's lifetime
        self.restart_count = 0
        self._transport: Optional[PipeTransport] = None
        self._spawn()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _spawn(self) -> None:
        self._transport = self._transport_factory()
        greeting = self._read_record(Deadline(_SPAWN_TIMEOUT))
        if greeting.kind == "error":
            self.close()
            raise TrackerError(
                f"debug server refused {self.program!r}: {greeting.payload}"
            )
        if greeting.kind != "done":
            self.close()
            raise ProtocolError(f"unexpected greeting record: {greeting}")

    def restart(self) -> None:
        """Kill whatever is left of the server and spawn a fresh one.

        The new server knows nothing: the caller (the supervision layer in
        :class:`repro.gdbtracker.tracker.GDBTracker`) re-installs the
        control-point registry from the client-side engine index and
        re-runs the inferior.
        """
        if self._transport is not None:
            self._transport.close(graceful_exit=False)
        self._spawn()
        self.restart_count += 1

    def alive(self) -> bool:
        """Whether the server subprocess is currently running."""
        return self._transport is not None and self._transport.alive()

    def transport_lines_dropped(self) -> int:
        """Lines evicted by the transport's bounded stdout/stderr rings.

        Zero for transports without ring bounds (the scripted fault
        transports); surfaced as ``TrackerStats.transport_lines_dropped``.
        """
        counter = getattr(self._transport, "lines_dropped", None)
        return counter() if callable(counter) else 0

    # ------------------------------------------------------------------
    # Record plumbing
    # ------------------------------------------------------------------

    def _read_record(
        self, deadline: Optional[Deadline] = None
    ) -> protocol.Record:
        """Read one record; honor ``deadline`` without interrupting."""
        while True:
            timeout = None
            if deadline is not None:
                timeout = deadline.grace_remaining()
                if timeout <= 0:
                    raise ControlTimeout(
                        "the debug server did not answer within "
                        f"{deadline.timeout + deadline.grace:.2f}s"
                    )
            line = self._transport.recv_line(timeout=timeout)
            if line is None:
                continue  # timed out this slice; recheck the deadline
            return protocol.parse_record(line)

    def _write_command(
        self,
        name: str,
        args: Optional[List[str]] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._transport.send_line(protocol.format_command(name, args, options))

    # ------------------------------------------------------------------
    # Command API
    # ------------------------------------------------------------------

    def execute(
        self,
        name: str,
        args: Optional[List[str]] = None,
        options: Optional[Dict[str, Any]] = None,
        deadline: Optional[Deadline] = None,
    ) -> Any:
        """Run a synchronous command; return the ``^done`` payload.

        Raises:
            TrackerError: on a ``^error`` reply.
            ServerCrashError: the server died mid-command (recoverable by
                the supervision layer).
            ControlTimeout: the deadline expired with no reply.
        """
        self._write_command(name, args, options)
        while True:
            record = self._read_record(deadline)
            if record.kind == "stream":
                self.console.append(record.payload)
            elif record.kind == "notify":
                self.notifications.append(record)
            elif record.kind == "done":
                return record.payload
            elif record.kind == "error":
                raise TrackerError(str(record.payload))
            else:
                raise ProtocolError(f"unexpected record {record.kind} for {name}")

    def run_control(
        self,
        name: str,
        args: Optional[List[str]] = None,
        options: Optional[Dict[str, Any]] = None,
        deadline: Optional[Deadline] = None,
    ) -> Dict[str, Any]:
        """Run an exec command; block until ``*stopped``; return its payload.

        This blocking read is exactly the synchronous contract of the
        tracker control interface: the call returns only when the inferior
        is paused or terminated. With a ``deadline``, expiry first
        *interrupts* the inferior (the server answers with a
        ``*stopped,reason="interrupted"`` record, so the contract still
        holds); ``ControlTimeout`` is raised only when the interrupt also
        goes unanswered for the grace period.
        """
        self._write_command(name, args, options)
        # The server's handle() is pure: it buffers all records (the
        # ^running included) until the advance loop stops, so even this
        # first read must be able to interrupt a busy inferior.
        record = self._read_running_record(deadline)
        if record.kind == "error":
            raise TrackerError(str(record.payload))
        if record.kind != "running":
            raise ProtocolError(f"expected ^running, got {record.kind}")
        while True:
            record = self._read_running_record(deadline)
            if record.kind == "stream":
                self.console.append(record.payload)
            elif record.kind == "notify":
                self.notifications.append(record)
            elif record.kind == "stopped":
                return record.payload
            elif record.kind == "done":
                # A stale interrupt the server acknowledged after stopping
                # on its own; nothing to do.
                continue
            else:
                raise ProtocolError(f"unexpected record {record.kind} while running")

    def _read_running_record(
        self, deadline: Optional[Deadline]
    ) -> protocol.Record:
        """Read one record while the inferior runs; interrupt on expiry."""
        while True:
            timeout = None
            if deadline is not None:
                if not deadline.interrupt_requested:
                    remaining = deadline.remaining()
                    if remaining > 0:
                        timeout = remaining
                    else:
                        deadline.interrupt_requested = True
                        self._transport.interrupt()
                if deadline.interrupt_requested:
                    timeout = deadline.grace_remaining()
                    if timeout <= 0:
                        raise ControlTimeout(
                            "the inferior did not pause within "
                            f"{deadline.timeout}s and the interrupt went "
                            "unanswered for the grace period"
                        )
            line = self._transport.recv_line(timeout=timeout)
            if line is not None:
                return protocol.parse_record(line)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Terminate the server subprocess (idempotent, crash-tolerant)."""
        if self._transport is not None:
            self._transport.close()

    #: Alias kept deliberately: tools written against other debugger
    #: client libraries call ``stop()``; both are safe after a crash.
    stop = close

    def __enter__(self) -> "MIClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
