"""A pygdbmi-style client for the debug server.

Spawns ``python -m repro.mi.server <program>`` as a subprocess and talks MI
records over its stdin/stdout pipe — the same process architecture as the
paper's GDB tracker (Fig. 4): tool process on one side, debugger process
(with the inferior inside it) on the other, serialized state crossing the
pipe.
"""

from __future__ import annotations

import subprocess
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import ProtocolError, TrackerError
from repro.mi import protocol


class MIClient:
    """Drives one debug-server subprocess.

    Args:
        program: path of the inferior source (.c or .s).
        args: command-line arguments for the inferior.
    """

    def __init__(self, program: str, args: Optional[List[str]] = None):
        self.program = program
        self._process = subprocess.Popen(
            [sys.executable, "-m", "repro.mi.server", program] + list(args or []),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            bufsize=1,
        )
        #: all inferior output seen so far, in order
        self.console: List[str] = []
        #: async notifications (e.g. heap allocations), in order
        self.notifications: List[protocol.Record] = []
        greeting = self._read_record()
        if greeting.kind == "error":
            self.close()
            raise TrackerError(f"debug server refused {program!r}: {greeting.payload}")
        if greeting.kind != "done":
            self.close()
            raise ProtocolError(f"unexpected greeting record: {greeting}")

    # ------------------------------------------------------------------
    # Record plumbing
    # ------------------------------------------------------------------

    def _read_record(self) -> protocol.Record:
        line = self._process.stdout.readline()
        if not line:
            raise ProtocolError("the debug server closed the pipe")
        return protocol.parse_record(line)

    def _write_command(
        self,
        name: str,
        args: Optional[List[str]] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> None:
        if self._process.poll() is not None:
            raise ProtocolError("the debug server has terminated")
        line = protocol.format_command(name, args, options)
        self._process.stdin.write(line + "\n")
        self._process.stdin.flush()

    # ------------------------------------------------------------------
    # Command API
    # ------------------------------------------------------------------

    def execute(
        self,
        name: str,
        args: Optional[List[str]] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Run a synchronous command; return the ``^done`` payload.

        Raises:
            TrackerError: on a ``^error`` reply.
        """
        self._write_command(name, args, options)
        while True:
            record = self._read_record()
            if record.kind == "stream":
                self.console.append(record.payload)
            elif record.kind == "notify":
                self.notifications.append(record)
            elif record.kind == "done":
                return record.payload
            elif record.kind == "error":
                raise TrackerError(str(record.payload))
            else:
                raise ProtocolError(f"unexpected record {record.kind} for {name}")

    def run_control(
        self,
        name: str,
        args: Optional[List[str]] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Run an exec command; block until ``*stopped``; return its payload.

        This blocking read is exactly the synchronous contract of the
        tracker control interface: the call returns only when the inferior
        is paused or terminated.
        """
        self._write_command(name, args, options)
        record = self._read_record()
        if record.kind == "error":
            raise TrackerError(str(record.payload))
        if record.kind != "running":
            raise ProtocolError(f"expected ^running, got {record.kind}")
        while True:
            record = self._read_record()
            if record.kind == "stream":
                self.console.append(record.payload)
            elif record.kind == "notify":
                self.notifications.append(record)
            elif record.kind == "stopped":
                return record.payload
            else:
                raise ProtocolError(f"unexpected record {record.kind} while running")

    def close(self) -> None:
        """Terminate the server subprocess (idempotent)."""
        if self._process.poll() is None:
            try:
                self._write_command("-gdb-exit")
                self._process.wait(timeout=2)
            except Exception:
                self._process.kill()
                self._process.wait(timeout=2)
        if self._process.stdin:
            self._process.stdin.close()
        if self._process.stdout:
            self._process.stdout.close()

    def __enter__(self) -> "MIClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
