"""The backend-independent half of an MI debug server.

Two servers speak the MI protocol in this reproduction: the event-loop
server over the mini-C / RISC-V interpreters (:mod:`repro.mi.server`) and
the out-of-process Python server hosting a :class:`PythonTracker` in a
child interpreter (:mod:`repro.subproc.server`). Everything that is about
*being an MI server* rather than about a particular inferior substrate
lives here:

- :class:`ServerCore` — command dispatch (``-name`` to ``_cmd_name``),
  defensive error translation (a handler bug becomes an ``^error`` record,
  never a dead pipe), session-id echo (a command prefixed ``s1-...`` gets
  every reply record prefixed ``s1``, the multiplexed-session framing; an
  id-less command stays id-less, preserving wire compatibility with
  legacy clients), the async-interrupt flag, and the control-point number
  registry shared by enable/disable/delete;
- :class:`LineChannel` — exact, pollable line reads over a raw fd, which
  is what lets a busy run loop notice an ``-exec-interrupt`` arriving
  mid-run, including *sleeping* waits (``select`` with a timeout) so a
  watcher thread burns no CPU while nothing is pending;
- :class:`StdioServerLoop` / :func:`serve_stdio` — the loop that drives a
  server over stdin/stdout (greeting, pending-command queue, stdin
  interrupt poller, SIGINT handler), shared by both ``main`` entry
  points. Dispatch is loop-driven: the loop *sleeps* until a line is
  readable and hands it to the server, rather than spinning on a
  zero-timeout poll.

``ServerCore.handle`` is pure (command line in, record lines out), so
every server built on it is unit-testable without pipes.
"""

from __future__ import annotations

import os
import select
import signal
import sys
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import ProgramLoadError, ProtocolError, TrackerError
from repro.core.pause import PauseReasonType
from repro.mi import protocol

#: MI stop-reason strings -> core pause-reason types (for the stats layer).
REASON_TYPES = {
    "breakpoint-hit": PauseReasonType.BREAKPOINT,
    "function-entry": PauseReasonType.CALL,
    "function-exit": PauseReasonType.RETURN,
    "watchpoint-trigger": PauseReasonType.WATCH,
    "end-stepping-range": PauseReasonType.STEP,
    "exited": PauseReasonType.EXIT,
    "interrupted": PauseReasonType.INTERRUPT,
    "deadlock-suspected": PauseReasonType.DEADLOCK_SUSPECTED,
}

#: The inverse map, for servers that build stop payloads from a
#: client-style :class:`PauseReason` (the subprocess Python server).
REASON_NAMES = {reason: name for name, reason in REASON_TYPES.items()}


class ServerCore:
    """Dispatch and bookkeeping common to every MI debug server.

    Subclasses provide ``_cmd_<name>`` handlers (dashes in the MI command
    name map to underscores) and an ``engine``
    (:class:`repro.core.engine.ControlPointEngine`) holding the
    control-point registries; this base owns the MI ``number`` assignment
    and the number-addressed enable/disable/delete commands.
    """

    def __init__(self) -> None:
        self._number = 0
        self._finished = False
        #: Set asynchronously (SIGINT handler) or via the stdin poller to
        #: make a busy run-control loop stop with reason "interrupted".
        self._interrupt_requested = False
        #: Injected by ``serve_stdio``: polls stdin for an
        #: ``-exec-interrupt`` that arrived while the server is busy.
        #: Accepts an optional ``timeout`` (seconds to *sleep* in select
        #: when nothing is pending, instead of busy-spinning) and an
        #: optional ``wake_fd`` (an extra fd whose readability cuts the
        #: sleep short, the self-pipe idiom). ``None`` in unit-test use
        #: (tests set the flag directly).
        self.interrupt_poll: Optional[Callable[..., bool]] = None

    def request_interrupt(self) -> None:
        """Ask the busy run-control loop to stop at the next opportunity.

        Async-signal-safe (a bare attribute store): callable from a signal
        handler, another thread, or a test.
        """
        self._interrupt_requested = True

    # ------------------------------------------------------------------
    # Command dispatch
    # ------------------------------------------------------------------

    def handle(self, line: str) -> List[str]:
        """Process one command line; return the record lines to emit.

        A command prefixed with a session id (``s1-exec-run``) gets every
        reply record prefixed with the same id (``s1^running`` ...); an
        id-less legacy command gets id-less replies. The two interleave
        freely on one pipe — this server is single-session, so the id is
        pure echo, but it means a multiplexing client can talk to old and
        new servers with one framing.
        """
        session, _ = protocol.split_session(line.strip())
        records = self._dispatch(line)
        if session is None:
            return records
        return [protocol.tag_record(record, session) for record in records]

    def _dispatch(self, line: str) -> List[str]:
        try:
            command = protocol.parse_command(line)
        except ProtocolError as error:
            return [protocol.format_error(str(error))]
        handler = getattr(
            self, "_cmd_" + command.name.lstrip("-").replace("-", "_"), None
        )
        if handler is None:
            return [protocol.format_error(f"undefined command {command.name}")]
        try:
            return handler(command)
        except (TrackerError, ProgramLoadError) as error:
            return [protocol.format_error(str(error))]
        except Exception as error:  # defensive: never kill the pipe
            return [protocol.format_error(f"{type(error).__name__}: {error}")]

    def _cmd_gdb_exit(self, command) -> List[str]:
        self._finished = True
        return [protocol.format_done()]

    # ------------------------------------------------------------------
    # Control-point numbering (enable/disable/delete addressing)
    # ------------------------------------------------------------------

    def _register(self, point: Any) -> int:
        """Assign the next MI number to a freshly appended control point."""
        self._number += 1
        point.number = self._number
        self.engine.mark_dirty()
        return self._number

    def _cmd_break_delete(self, command) -> List[str]:
        if not command.args or command.args[0] == "all":
            self.engine.clear()
            return [protocol.format_done()]
        number = int(command.args[0])
        removed = False
        for registry in (
            self.engine.line_breakpoints,
            self.engine.function_breakpoints,
            self.engine.address_breakpoints,
            self.engine.tracked_functions,
            self.engine.watchpoints,
        ):
            kept = [
                point
                for point in registry
                if getattr(point, "number", None) != number
            ]
            if len(kept) != len(registry):
                registry[:] = kept
                removed = True
        if not removed:
            return [protocol.format_error(f"no control point {number}")]
        self.engine.mark_dirty()
        return [protocol.format_done()]

    def _cmd_break_disable(self, command) -> List[str]:
        return self._set_enabled(command, False)

    def _cmd_break_enable(self, command) -> List[str]:
        return self._set_enabled(command, True)

    def _set_enabled(self, command, enabled: bool) -> List[str]:
        number = int(command.args[0])
        for point in self.engine.all_points():
            if getattr(point, "number", None) == number:
                point.enabled = enabled
                return [protocol.format_done()]
        return [protocol.format_error(f"no control point {number}")]

    def _cmd_tracker_stats(self, command) -> List[str]:
        return [protocol.format_done(self.engine.stats.to_dict())]

    def _cmd_timeline_query(self, command) -> List[str]:
        """Run a trace query (``x changed``, ``f() == v``, ``len(x) > n``)
        against the server-side timeline, so the recording never crosses
        the pipe. Both concrete servers provide ``_require_timeline``.
        """
        from repro.core.tracestore import TimelineView

        if not command.args:
            return [protocol.format_error("timeline-query needs an expression")]
        timeline = self._require_timeline()
        view = getattr(self, "_query_view", None)
        if view is None or view.timeline is not timeline:
            # One cached view per timeline: its index extends
            # incrementally instead of rebuilding on every query.
            view = TimelineView(timeline)
            self._query_view = view
        text = " ".join(command.args)
        return [protocol.format_done(view.query(text).to_dict())]


class LineChannel:
    """Line-oriented reads over a raw fd, with a non-blocking poll.

    The stdlib's buffered ``sys.stdin`` cannot be polled reliably — data
    may be hidden in its Python-level buffer where ``select`` cannot see
    it. Owning the buffer makes ``poll_line`` exact, which is what lets
    the busy run-control loop notice an ``-exec-interrupt`` command that
    arrived mid-run.
    """

    def __init__(self, fd: int):
        self._fd = fd
        self._buffer = b""
        self._eof = False

    def poll_line(self) -> Optional[str]:
        """A complete line if one is available right now, else ``None``."""
        while b"\n" not in self._buffer and not self._eof:
            try:
                ready, _, _ = select.select([self._fd], [], [], 0)
            except (OSError, ValueError):  # unpollable stdin: poll disabled
                return None
            if not ready:
                return None
            self._fill()
        return self._take_line()

    def wait_readable(
        self, timeout: float, extra_fd: Optional[int] = None
    ) -> bool:
        """Sleep in ``select`` until the fd is readable (or timeout).

        This is what lets an interrupt watcher *wait* for input instead
        of spinning on :meth:`poll_line`: the select wakes the moment a
        command byte (or a byte on ``extra_fd``, the self-pipe wake-up)
        arrives, and costs nothing while the pipe is idle. Returns
        whether a complete line is already buffered or the fd became
        readable; ``False`` on a plain timeout.
        """
        if b"\n" in self._buffer or self._eof:
            return True
        fds = [self._fd] if extra_fd is None else [self._fd, extra_fd]
        try:
            ready, _, _ = select.select(fds, [], [], max(timeout, 0))
        except (OSError, ValueError):  # unpollable stdin: degrade to sleep
            return False
        return bool(ready)

    def read_line(self) -> Optional[str]:
        """Blocking read of the next line; ``None`` at EOF."""
        while True:
            line = self._take_line()
            if line is not None:
                return line
            if self._eof:
                return None
            self._fill()

    def _fill(self) -> None:
        chunk = os.read(self._fd, 4096)
        if not chunk:
            self._eof = True
        else:
            self._buffer += chunk

    def _take_line(self) -> Optional[str]:
        if b"\n" in self._buffer:
            raw, self._buffer = self._buffer.split(b"\n", 1)
            return raw.decode("utf-8", "replace")
        if self._eof and self._buffer:
            raw, self._buffer = self._buffer, b""
            return raw.decode("utf-8", "replace")
        return None


class StdioServerLoop:
    """Drives a :class:`ServerCore` over a line channel (stdin/stdout).

    Owns the pieces ``serve_stdio`` used to build inline: the greeting,
    the pending-command queue, the interrupt poller, and the SIGINT
    handler. Dispatch is loop-driven — the loop blocks in
    :meth:`LineChannel.read_line` until a command arrives, hands it to
    ``server.handle``, and emits the records. The interrupt poller is a
    bound method so run loops can *sleep* on stdin between interrupt
    checks (``poll_interrupt(timeout=..., wake_fd=...)``) instead of
    spinning on a zero-timeout select.
    """

    def __init__(self, server: ServerCore, channel: LineChannel):
        self.server = server
        self.channel = channel
        #: non-interrupt commands that arrived while a run loop was busy
        #: (rare: only a command racing a natural stop); served before
        #: reading the channel again.
        self.pending: List[str] = []
        server.interrupt_poll = self.poll_interrupt

    def poll_interrupt(
        self, timeout: float = 0.0, wake_fd: Optional[int] = None
    ) -> bool:
        """Check the channel for an ``-exec-interrupt``; optionally sleep.

        With ``timeout > 0`` the call first sleeps in ``select`` until
        the channel (or ``wake_fd``, a self-pipe the server pokes when
        the run ends) becomes readable, so a watcher thread costs no CPU
        while the inferior runs. Then every complete line available
        right now is consumed: interrupts set the return flag, anything
        else is queued as pending. Session-prefixed interrupts
        (``s1-exec-interrupt``) count too — the busy run is the only
        thing an interrupt can be aimed at on a single-session pipe.
        """
        if timeout > 0:
            self.channel.wait_readable(timeout, wake_fd)
        interrupted = False
        while True:
            line = self.channel.poll_line()
            if line is None:
                break
            _, body = protocol.split_session(line.strip())
            if body == "-exec-interrupt":
                interrupted = True
            elif line.strip():
                self.pending.append(line)
        return interrupted

    def install_sigint(self) -> None:
        """Route SIGINT to ``server.request_interrupt`` (best effort)."""
        try:
            signal.signal(
                signal.SIGINT, lambda *_: self.server.request_interrupt()
            )
        except (ValueError, OSError, AttributeError):  # not the main thread
            pass

    def next_line(self) -> Optional[str]:
        """The next command to dispatch; ``None`` at channel EOF."""
        if self.pending:
            return self.pending.pop(0)
        return self.channel.read_line()

    def run(self, greeting: Dict[str, Any]) -> int:
        """Serve until EOF or ``-gdb-exit``; returns the exit status."""
        self.install_sigint()
        print(protocol.format_done(greeting), flush=True)
        while True:
            line = self.next_line()
            if line is None:
                break
            if not line.strip():
                continue
            for record in self.server.handle(line):
                print(record, flush=True)
            if self.server._finished:
                break
        return 0


def serve_stdio(server: ServerCore, greeting: Dict[str, Any]) -> int:
    """Run ``server`` over stdin/stdout until EOF or ``-gdb-exit``."""
    loop = StdioServerLoop(server, LineChannel(sys.stdin.fileno()))
    return loop.run(greeting)
