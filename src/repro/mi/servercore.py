"""The backend-independent half of an MI debug server.

Two servers speak the MI protocol in this reproduction: the event-loop
server over the mini-C / RISC-V interpreters (:mod:`repro.mi.server`) and
the out-of-process Python server hosting a :class:`PythonTracker` in a
child interpreter (:mod:`repro.subproc.server`). Everything that is about
*being an MI server* rather than about a particular inferior substrate
lives here:

- :class:`ServerCore` — command dispatch (``-name`` to ``_cmd_name``),
  defensive error translation (a handler bug becomes an ``^error`` record,
  never a dead pipe), the async-interrupt flag, and the control-point
  number registry shared by enable/disable/delete;
- :class:`LineChannel` — exact, pollable line reads over a raw fd, which
  is what lets a busy run loop notice an ``-exec-interrupt`` arriving
  mid-run;
- :func:`serve_stdio` — the stdio loop (greeting, pending-command queue,
  stdin interrupt poller, SIGINT handler) shared verbatim by both
  ``main`` entry points.

``ServerCore.handle`` is pure (command line in, record lines out), so
every server built on it is unit-testable without pipes.
"""

from __future__ import annotations

import os
import select
import signal
import sys
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import ProgramLoadError, ProtocolError, TrackerError
from repro.core.pause import PauseReasonType
from repro.mi import protocol

#: MI stop-reason strings -> core pause-reason types (for the stats layer).
REASON_TYPES = {
    "breakpoint-hit": PauseReasonType.BREAKPOINT,
    "function-entry": PauseReasonType.CALL,
    "function-exit": PauseReasonType.RETURN,
    "watchpoint-trigger": PauseReasonType.WATCH,
    "end-stepping-range": PauseReasonType.STEP,
    "exited": PauseReasonType.EXIT,
    "interrupted": PauseReasonType.INTERRUPT,
}

#: The inverse map, for servers that build stop payloads from a
#: client-style :class:`PauseReason` (the subprocess Python server).
REASON_NAMES = {reason: name for name, reason in REASON_TYPES.items()}


class ServerCore:
    """Dispatch and bookkeeping common to every MI debug server.

    Subclasses provide ``_cmd_<name>`` handlers (dashes in the MI command
    name map to underscores) and an ``engine``
    (:class:`repro.core.engine.ControlPointEngine`) holding the
    control-point registries; this base owns the MI ``number`` assignment
    and the number-addressed enable/disable/delete commands.
    """

    def __init__(self) -> None:
        self._number = 0
        self._finished = False
        #: Set asynchronously (SIGINT handler) or via the stdin poller to
        #: make a busy run-control loop stop with reason "interrupted".
        self._interrupt_requested = False
        #: Injected by ``serve_stdio``: polls stdin for an
        #: ``-exec-interrupt`` that arrived while the server is busy.
        #: ``None`` in unit-test use (tests set the flag directly).
        self.interrupt_poll: Optional[Callable[[], bool]] = None

    def request_interrupt(self) -> None:
        """Ask the busy run-control loop to stop at the next opportunity.

        Async-signal-safe (a bare attribute store): callable from a signal
        handler, another thread, or a test.
        """
        self._interrupt_requested = True

    # ------------------------------------------------------------------
    # Command dispatch
    # ------------------------------------------------------------------

    def handle(self, line: str) -> List[str]:
        """Process one command line; return the record lines to emit."""
        try:
            command = protocol.parse_command(line)
        except ProtocolError as error:
            return [protocol.format_error(str(error))]
        handler = getattr(
            self, "_cmd_" + command.name.lstrip("-").replace("-", "_"), None
        )
        if handler is None:
            return [protocol.format_error(f"undefined command {command.name}")]
        try:
            return handler(command)
        except (TrackerError, ProgramLoadError) as error:
            return [protocol.format_error(str(error))]
        except Exception as error:  # defensive: never kill the pipe
            return [protocol.format_error(f"{type(error).__name__}: {error}")]

    def _cmd_gdb_exit(self, command) -> List[str]:
        self._finished = True
        return [protocol.format_done()]

    # ------------------------------------------------------------------
    # Control-point numbering (enable/disable/delete addressing)
    # ------------------------------------------------------------------

    def _register(self, point: Any) -> int:
        """Assign the next MI number to a freshly appended control point."""
        self._number += 1
        point.number = self._number
        self.engine.mark_dirty()
        return self._number

    def _cmd_break_delete(self, command) -> List[str]:
        if not command.args or command.args[0] == "all":
            self.engine.clear()
            return [protocol.format_done()]
        number = int(command.args[0])
        removed = False
        for registry in (
            self.engine.line_breakpoints,
            self.engine.function_breakpoints,
            self.engine.address_breakpoints,
            self.engine.tracked_functions,
            self.engine.watchpoints,
        ):
            kept = [
                point
                for point in registry
                if getattr(point, "number", None) != number
            ]
            if len(kept) != len(registry):
                registry[:] = kept
                removed = True
        if not removed:
            return [protocol.format_error(f"no control point {number}")]
        self.engine.mark_dirty()
        return [protocol.format_done()]

    def _cmd_break_disable(self, command) -> List[str]:
        return self._set_enabled(command, False)

    def _cmd_break_enable(self, command) -> List[str]:
        return self._set_enabled(command, True)

    def _set_enabled(self, command, enabled: bool) -> List[str]:
        number = int(command.args[0])
        for point in self.engine.all_points():
            if getattr(point, "number", None) == number:
                point.enabled = enabled
                return [protocol.format_done()]
        return [protocol.format_error(f"no control point {number}")]

    def _cmd_tracker_stats(self, command) -> List[str]:
        return [protocol.format_done(self.engine.stats.to_dict())]


class LineChannel:
    """Line-oriented reads over a raw fd, with a non-blocking poll.

    The stdlib's buffered ``sys.stdin`` cannot be polled reliably — data
    may be hidden in its Python-level buffer where ``select`` cannot see
    it. Owning the buffer makes ``poll_line`` exact, which is what lets
    the busy run-control loop notice an ``-exec-interrupt`` command that
    arrived mid-run.
    """

    def __init__(self, fd: int):
        self._fd = fd
        self._buffer = b""
        self._eof = False

    def poll_line(self) -> Optional[str]:
        """A complete line if one is available right now, else ``None``."""
        while b"\n" not in self._buffer and not self._eof:
            try:
                ready, _, _ = select.select([self._fd], [], [], 0)
            except (OSError, ValueError):  # unpollable stdin: poll disabled
                return None
            if not ready:
                return None
            self._fill()
        return self._take_line()

    def read_line(self) -> Optional[str]:
        """Blocking read of the next line; ``None`` at EOF."""
        while True:
            line = self._take_line()
            if line is not None:
                return line
            if self._eof:
                return None
            self._fill()

    def _fill(self) -> None:
        chunk = os.read(self._fd, 4096)
        if not chunk:
            self._eof = True
        else:
            self._buffer += chunk

    def _take_line(self) -> Optional[str]:
        if b"\n" in self._buffer:
            raw, self._buffer = self._buffer.split(b"\n", 1)
            return raw.decode("utf-8", "replace")
        if self._eof and self._buffer:
            raw, self._buffer = self._buffer, b""
            return raw.decode("utf-8", "replace")
        return None


def serve_stdio(server: ServerCore, greeting: Dict[str, Any]) -> int:
    """Run ``server`` over stdin/stdout until EOF or ``-gdb-exit``.

    Installs the stdin interrupt poller and the SIGINT handler, emits the
    greeting ``^done`` record, then serves commands one line at a time.
    Commands that arrived while a run loop was busy (rare: only an
    interrupt racing a natural stop) are queued and served before reading
    stdin again.
    """
    channel = LineChannel(sys.stdin.fileno())
    pending: List[str] = []

    def poll_interrupt() -> bool:
        interrupted = False
        while True:
            line = channel.poll_line()
            if line is None:
                break
            if line.strip() == "-exec-interrupt":
                interrupted = True
            elif line.strip():
                pending.append(line)
        return interrupted

    server.interrupt_poll = poll_interrupt
    try:
        signal.signal(signal.SIGINT, lambda *_: server.request_interrupt())
    except (ValueError, OSError, AttributeError):  # not the main thread
        pass

    print(protocol.format_done(greeting), flush=True)
    while True:
        line = pending.pop(0) if pending else channel.read_line()
        if line is None:
            break
        if not line.strip():
            continue
        for record in server.handle(line):
            print(record, flush=True)
        if server._finished:
            break
    return 0
