"""The debug server: GDB's role in the reproduction.

Runs as a subprocess (``python -m repro.mi.server program.c``), reads MI
commands on stdin, emits records on stdout. Inside, it drives a mini-C or
RISC-V inferior through its event generator and implements all run control:
line/function/address breakpoints with the ``maxdepth`` extension, byte-
level watchpoints, function entry/exit tracking, and step/next/finish.

The protocol-side plumbing (dispatch, interrupt flag, control-point
numbering, the stdio loop) lives in :mod:`repro.mi.servercore`, shared
with the out-of-process Python server (:mod:`repro.subproc.server`); this
module adds the event-generator run loop over the interpreter inferiors.

``DebugServer.handle`` is pure (command line in, record lines out), so the
whole server is unit-testable without pipes; ``main`` adds the stdio loop.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Iterator, List, Optional

from repro.core.engine import AddressBreakpoint, ControlPointEngine
from repro.core.errors import ProgramLoadError, TrackerError
from repro.core.pause import PauseReason, PauseReasonType
from repro.core.state import frame_to_dict, variable_to_dict
from repro.core.timeline import (
    EVENT_CALL,
    EVENT_EXIT,
    EVENT_LINE,
    EVENT_RETURN,
    StateSnapshot,
    Timeline,
)
from repro.core.tracker import (
    FunctionBreakpoint,
    LineBreakpoint,
    TrackedFunction,
    Watchpoint,
)
from repro.minic.events import (
    AllocEvent,
    CallEvent,
    Event,
    ExitEvent,
    LineEvent,
    OutputEvent,
    ReturnEvent,
)
from repro.mi import protocol
from repro.mi.inferiors import InferiorAdapter, open_inferior
from repro.mi.servercore import (
    REASON_TYPES,
    LineChannel,
    ServerCore,
    serve_stdio,
)

#: Backwards-compatible aliases (pre-refactor import sites).
_REASON_TYPES = REASON_TYPES
_LineChannel = LineChannel

#: How many inferior events run between two interrupt-poll callbacks.
#: The flag itself is checked on every event; the poll (a select() on
#: stdin) is the expensive part worth batching.
_INTERRUPT_POLL_EVERY = 128


class DebugServer(ServerCore):
    """One debugging session over one inferior program.

    Control points are stored as the *core* dataclasses
    (:class:`repro.core.tracker.LineBreakpoint` etc., plus
    :class:`repro.core.engine.AddressBreakpoint`) inside a
    :class:`repro.core.engine.ControlPointEngine`, the same decision core
    the in-process trackers use; the server only adds an MI ``number``
    attribute to each point for enable/disable/delete addressing.
    """

    def __init__(self, path: str, args: Optional[List[str]] = None):
        super().__init__()
        self.path = path
        self.inferior: InferiorAdapter = open_inferior(path, args)
        self._events: Optional[Iterator[Event]] = None
        self.engine = ControlPointEngine()
        self._running = False
        self._exited = False
        self._exit_code: Optional[int] = None
        self._depth = 0
        self._line: Optional[int] = None
        self._last_line: Optional[int] = None
        self._watch_baseline_done = False
        self._events_since_poll = 0
        #: Server-side timeline recording (the ``-timeline-*`` family):
        #: snapshots are captured at every ``*stopped`` while recording is
        #: on, so the whole history crosses the pipe once, on demand.
        self._timeline: Optional[Timeline] = None
        self._recording = False
        self._stdout = ""
        self._event_kind = EVENT_LINE
        self._func: Optional[str] = None
        self._last_stop: Optional[Dict[str, Any]] = None

    # -- lifecycle -------------------------------------------------------

    def _cmd_file_exec_and_symbols(self, command) -> List[str]:
        return [protocol.format_done({"file": self.inferior.filename})]

    def _cmd_exec_run(self, command) -> List[str]:
        if self._running:
            return [protocol.format_error("the inferior is already running")]
        self._events = self.inferior.events()
        self._running = True
        return [protocol.format_running()] + self._advance("step")

    def _cmd_exec_continue(self, command) -> List[str]:
        return self._exec("continue")

    def _cmd_exec_step(self, command) -> List[str]:
        return self._exec("step")

    def _cmd_exec_next(self, command) -> List[str]:
        return self._exec("next")

    def _cmd_exec_finish(self, command) -> List[str]:
        return self._exec("finish")

    def _exec(self, mode: str) -> List[str]:
        if not self._running:
            return [protocol.format_error("the inferior has not been started")]
        if self._exited:
            return [protocol.format_error("the inferior has exited")]
        return [protocol.format_running()] + self._advance(mode)

    def _cmd_exec_interrupt(self, command) -> List[str]:
        """A stale interrupt: the inferior stopped before it arrived.

        The live case never reaches command dispatch — while the run
        loop is busy, ``-exec-interrupt`` is consumed by the stdin poller
        (or delivered as SIGINT) and answered by the ``*stopped`` record
        of the interrupted exec command. Emitting nothing here keeps the
        stale case from desynchronizing the client's request/reply
        pairing.
        """
        return []

    # -- control points --------------------------------------------------

    def _cmd_break_insert(self, command) -> List[str]:
        if not command.args:
            return [protocol.format_error("break-insert needs a location")]
        location = command.args[0]
        maxdepth = command.option_int("maxdepth")
        if location.startswith("*"):
            point: Any = AddressBreakpoint(
                address=int(location[1:], 0), maxdepth=maxdepth
            )
            self.engine.address_breakpoints.append(point)
        elif ":" in location:
            point = LineBreakpoint(
                line=int(location.rsplit(":", 1)[1]), maxdepth=maxdepth
            )
            self.engine.line_breakpoints.append(point)
        elif location.isdigit():
            point = LineBreakpoint(line=int(location), maxdepth=maxdepth)
            self.engine.line_breakpoints.append(point)
        else:
            point = FunctionBreakpoint(function=location, maxdepth=maxdepth)
            self.engine.function_breakpoints.append(point)
        return [protocol.format_done({"number": self._register(point)})]

    def _cmd_break_watch(self, command) -> List[str]:
        if not command.args:
            return [protocol.format_error("break-watch needs a variable id")]
        watch = Watchpoint(
            variable_id=command.args[0],
            maxdepth=command.option_int("maxdepth"),
        )
        if self._running:
            # Installed mid-run: the current value is the baseline; only a
            # later modification fires.
            function, name = watch.split()
            self.engine.seed_watch(
                watch, self.inferior.render_watch(function, name)
            )
        self.engine.watchpoints.append(watch)
        return [protocol.format_done({"number": self._register(watch)})]

    def _cmd_track_function(self, command) -> List[str]:
        if not command.args:
            return [protocol.format_error("track-function needs a name")]
        tracked = TrackedFunction(
            function=command.args[0],
            maxdepth=command.option_int("maxdepth"),
        )
        self.engine.tracked_functions.append(tracked)
        return [protocol.format_done({"number": self._register(tracked)})]

    # -- inspection --------------------------------------------------------

    def _cmd_stack_list_frames(self, command) -> List[str]:
        self._require_paused()
        return [protocol.format_done(frame_to_dict(self.inferior.frame_chain()))]

    def _cmd_data_list_globals(self, command) -> List[str]:
        self._require_paused()
        payload = {
            name: variable_to_dict(variable)
            for name, variable in self.inferior.globals_map().items()
        }
        return [protocol.format_done(payload)]

    def _cmd_data_list_register_values(self, command) -> List[str]:
        registers = self.inferior.registers()
        if registers is None:
            return [protocol.format_error("this inferior has no registers")]
        return [protocol.format_done(registers)]

    def _cmd_data_read_memory(self, command) -> List[str]:
        address = int(command.args[0], 0)
        count = int(command.args[1], 0)
        raw = self.inferior.read_memory(address, count)
        return [protocol.format_done({"address": address, "bytes": raw.hex()})]

    def _cmd_data_disassemble(self, command) -> List[str]:
        return [protocol.format_done(self.inferior.disassemble(command.args[0]))]

    def _cmd_data_evaluate_expression(self, command) -> List[str]:
        self._require_paused()
        name = command.args[0]
        frame_name = command.options.get("frame")
        rendered = self.inferior.render_watch(frame_name, name)
        if rendered is None:
            return [protocol.format_error(f"no variable {name!r} in scope")]
        return [protocol.format_done({"value": rendered})]

    def _cmd_inferior_position(self, command) -> List[str]:
        return [
            protocol.format_done(
                {"file": self.inferior.filename, "line": self._line}
            )
        ]

    def _cmd_list_functions(self, command) -> List[str]:
        return [protocol.format_done(self.inferior.function_names())]

    def _cmd_heap_blocks(self, command) -> List[str]:
        payload = {
            f"{address:#x}": size
            for address, size in self.inferior.heap_blocks().items()
        }
        return [protocol.format_done(payload)]

    def _require_paused(self) -> None:
        if not self._running:
            raise TrackerError("the inferior has not been started")
        if self._exited:
            raise TrackerError("the inferior has exited")

    # ------------------------------------------------------------------
    # Run control: the server-side analog of the settrace handler
    # ------------------------------------------------------------------

    def _advance(self, mode: str) -> List[str]:
        """Consume events until a pause decision; return the record lines."""
        if self._events is None:
            return [protocol.format_error("the inferior has not been started")]
        if self._exited:
            return [protocol.format_error("the inferior has exited")]
        records: List[str] = []
        engine = self.engine
        engine.arm("resume" if mode == "continue" else mode, self._depth)
        engine.refresh()
        while True:
            if self._interrupt_pending():
                self._interrupt_requested = False
                return self._stop(
                    records,
                    {
                        "reason": "interrupted",
                        "line": self._line,
                        "depth": self._depth,
                    },
                )
            try:
                event = next(self._events)
            except StopIteration:
                stopped = self._stop_exited(records)
                return stopped
            if isinstance(event, OutputEvent):
                self._stdout += event.text
                records.append(protocol.format_stream(event.text))
                continue
            if isinstance(event, AllocEvent):
                records.append(
                    protocol.format_notify(
                        "alloc",
                        {
                            "kind": event.kind,
                            "address": event.address,
                            "size": event.size,
                        },
                    )
                )
                continue
            if isinstance(event, ExitEvent):
                self._exit_code = event.code
                return self._stop_exited(records, event)
            if isinstance(event, CallEvent):
                self._depth = event.depth
                self._event_kind = EVENT_CALL
                self._func = event.function
                reason = self._check_call(event)
                if reason is not None:
                    return self._stop(records, reason)
                continue
            if isinstance(event, ReturnEvent):
                self._event_kind = EVENT_RETURN
                self._func = event.function
                reason = self._check_return(event)
                self._depth = max(event.depth - 1, 0)
                if reason is not None:
                    return self._stop(records, reason)
                continue
            if isinstance(event, LineEvent):
                self._depth = event.depth
                self._event_kind = EVENT_LINE
                self._func = event.function
                self._last_line = self._line
                self._line = event.line
                reason = self._check_line(event)
                if reason is not None:
                    return self._stop(records, reason)
                continue
            # WriteEvent and any future event kinds: no run-control effect.

    def _interrupt_pending(self) -> bool:
        """Whether an interrupt arrived (flag, or stdin every N events)."""
        if self._interrupt_requested:
            return True
        self._events_since_poll += 1
        if (
            self.interrupt_poll is not None
            and self._events_since_poll >= _INTERRUPT_POLL_EVERY
        ):
            self._events_since_poll = 0
            return self.interrupt_poll()
        return False

    def _stop(
        self, records: List[str], reason: Dict[str, Any]
    ) -> List[str]:
        self.engine.record_pause(
            _REASON_TYPES.get(reason.get("reason"), reason.get("reason"))
        )
        self._last_stop = reason
        self._record_snapshot(reason)
        records.append(protocol.format_stopped(reason))
        return records

    def _stop_exited(
        self, records: List[str], event: Optional[ExitEvent] = None
    ) -> List[str]:
        self._exited = True
        self.engine.note_event("exit")
        payload: Dict[str, Any] = {
            "reason": "exited",
            "exitcode": self._exit_code if self._exit_code is not None else 0,
        }
        error = self.inferior.exit_error()
        if event is not None and event.error:
            error = event.error
        if error:
            payload["error"] = error
        return self._stop(records, payload)

    def _check_call(self, event: CallEvent) -> Optional[Dict[str, Any]]:
        engine = self.engine
        engine.note_event("call")
        if not engine.may_match_function(event.function):
            return None
        matched = engine.match_function_breakpoint(event.function, event.depth)
        if matched is not None:
            return {
                "reason": "breakpoint-hit",
                "func": event.function,
                "line": event.line,
                "depth": event.depth,
                "bkptno": getattr(matched, "number", 0),
            }
        if engine.match_tracked(event.function, event.depth) is not None:
            return {
                "reason": "function-entry",
                "func": event.function,
                "line": event.line,
                "depth": event.depth,
            }
        return None

    def _check_return(self, event: ReturnEvent) -> Optional[Dict[str, Any]]:
        engine = self.engine
        engine.note_event("return")
        if not engine.may_match_function(event.function):
            return None
        if engine.match_tracked(event.function, event.depth) is not None:
            return {
                "reason": "function-exit",
                "func": event.function,
                "line": event.line,
                "depth": event.depth,
                "retval": event.value,
            }
        return None

    def _check_line(self, event: LineEvent) -> Optional[Dict[str, Any]]:
        engine = self.engine
        engine.note_event("line")
        if not self._watch_baseline_done:
            # C globals exist (initialized) before the first line runs, so
            # the first check only records baselines — a watch fires on
            # *modification*, not on the pre-existing initial value.
            self._watch_baseline_done = True
            engine.baseline_watches(self.inferior.render_watch)
        elif engine.has_watchpoints:
            hit = engine.evaluate_watches(
                event.depth, self.inferior.render_watch
            )
            if hit is not None:
                watch, old, new = hit
                return {
                    "reason": "watchpoint-trigger",
                    "var": watch.variable_id,
                    "old": old,
                    "new": new,
                    "line": event.line,
                    "func": event.function,
                    "depth": event.depth,
                    "wpnum": getattr(watch, "number", 0),
                }
        # The program counter is only fetched when something needs it:
        # an address breakpoint is installed or a stop payload is built.
        pc: Optional[int] = None
        if engine.may_match_line(event.line):
            matched = engine.match_line(None, event.line, event.depth)
            if matched is not None:
                pc = self.inferior.current_pc()
                return {
                    "reason": "breakpoint-hit",
                    "line": event.line,
                    "func": event.function,
                    "depth": event.depth,
                    "bkptno": getattr(matched, "number", 0),
                    "pc": pc,
                }
        if engine.has_address_breakpoints:
            pc = self.inferior.current_pc()
            matched = engine.match_address(pc, event.depth)
            if matched is not None:
                return {
                    "reason": "breakpoint-hit",
                    "line": event.line,
                    "func": event.function,
                    "depth": event.depth,
                    "bkptno": getattr(matched, "number", 0),
                    "pc": pc,
                }
        if engine.should_step_pause(event.depth):
            if pc is None:
                pc = self.inferior.current_pc()
            return {
                "reason": "end-stepping-range",
                "line": event.line,
                "func": event.function,
                "depth": event.depth,
                "pc": pc,
            }
        return None

    # ------------------------------------------------------------------
    # Timeline recording: the server-side half of time travel
    # ------------------------------------------------------------------

    def _cmd_timeline_start(self, command) -> List[str]:
        interval = command.option_int("keyframe-interval")
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError:
            source = ""
        self._timeline = Timeline(
            keyframe_interval=interval if interval is not None else 16,
            max_snapshots=command.option_int("max-snapshots"),
            program=self.path,
            source=source,
            backend="GDB",
        )
        self._recording = True
        if self._running and self._last_stop is not None and not self._exited:
            # Already paused mid-run: the current state opens the timeline.
            self._record_snapshot(self._last_stop)
        return [protocol.format_done({"recording": True})]

    def _cmd_timeline_stop(self, command) -> List[str]:
        self._recording = False
        return [protocol.format_done({"recording": False})]

    def _cmd_timeline_length(self, command) -> List[str]:
        timeline = self._require_timeline()
        return [
            protocol.format_done(
                {
                    "length": len(timeline),
                    "start": timeline.start_index,
                    "retained": timeline.retained,
                }
            )
        ]

    def _cmd_timeline_dump(self, command) -> List[str]:
        return [protocol.format_done(self._require_timeline().to_dict())]

    def _cmd_timeline_snapshot(self, command) -> List[str]:
        if not command.args:
            return [protocol.format_error("timeline-snapshot needs an index")]
        timeline = self._require_timeline()
        return [
            protocol.format_done(
                timeline.snapshot(int(command.args[0])).to_dict()
            )
        ]

    def _cmd_timeline_drop_last(self, command) -> List[str]:
        return [
            protocol.format_done(
                {"dropped": self._require_timeline().drop_last()}
            )
        ]

    def _require_timeline(self) -> Timeline:
        if self._timeline is None:
            raise TrackerError("no timeline; send -timeline-start first")
        return self._timeline

    def _record_snapshot(self, reason: Dict[str, Any]) -> None:
        if self._timeline is None or not self._recording:
            return
        kind = reason.get("reason")
        if kind == "exited":
            self._timeline.append(
                StateSnapshot(
                    frame=None,
                    globals={},
                    filename=self.inferior.filename,
                    line=self._line,
                    depth=0,
                    stdout=self._stdout,
                    exit_code=reason.get("exitcode", 0),
                    reason=PauseReason(type=PauseReasonType.EXIT),
                    event=EVENT_EXIT,
                )
            )
            return
        line = reason.get("line", self._line)
        frame = self.inferior.frame_chain()
        self._timeline.append(
            StateSnapshot(
                frame=frame,
                globals=self.inferior.globals_map(),
                filename=self.inferior.filename,
                line=line,
                depth=reason.get("depth", self._depth),
                stdout=self._stdout,
                exit_code=None,
                reason=self._snapshot_reason(kind, reason, line),
                event=self._event_kind,
                func_name=reason.get("func") or self._func or frame.name,
            )
        )

    def _snapshot_reason(
        self, kind: Optional[str], reason: Dict[str, Any], line: Optional[int]
    ) -> PauseReason:
        """The pause reason as the *client* would build it from the stop
        payload (mirrors ``GDBTracker._ingest``), so recorded snapshots
        look the same whether the recorder ran client- or server-side."""
        if kind == "interrupted":
            return PauseReason(type=PauseReasonType.INTERRUPT, line=line)
        if kind == "watchpoint-trigger":
            return PauseReason(
                type=PauseReasonType.WATCH,
                variable=reason.get("var"),
                old_value=reason.get("old"),
                new_value=reason.get("new"),
                line=line,
            )
        if kind == "function-entry":
            return PauseReason(
                type=PauseReasonType.CALL,
                function=reason.get("func"),
                line=line,
            )
        if kind == "function-exit":
            return PauseReason(
                type=PauseReasonType.RETURN,
                function=reason.get("func"),
                return_value=reason.get("retval"),
                line=line,
            )
        if kind == "breakpoint-hit":
            return PauseReason(
                type=PauseReasonType.BREAKPOINT,
                function=reason.get("func"),
                line=line,
            )
        return PauseReason(type=PauseReasonType.STEP, line=line)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: ``python -m repro.mi.server program.c [args...]``.

    A ``.py`` program is delegated to the out-of-process Python server
    (:mod:`repro.subproc.server`), so one entry point serves every
    substrate.
    """
    argv = argv if argv is not None else sys.argv[1:]
    if not argv:
        print(protocol.format_error("usage: server <program> [args...]"))
        return 2
    if argv[0].endswith(".py"):
        from repro.subproc.server import main as python_main

        return python_main(argv)
    try:
        server = DebugServer(argv[0], argv[1:])
    except (ProgramLoadError, OSError) as error:
        print(protocol.format_error(str(error)), flush=True)
        return 1
    return serve_stdio(server, {"loaded": argv[0]})


if __name__ == "__main__":
    sys.exit(main())
