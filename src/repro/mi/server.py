"""The debug server: GDB's role in the reproduction.

Runs as a subprocess (``python -m repro.mi.server program.c``), reads MI
commands on stdin, emits records on stdout. Inside, it drives a mini-C or
RISC-V inferior through its event generator and implements all run control:
line/function/address breakpoints with the ``maxdepth`` extension, byte-
level watchpoints, function entry/exit tracking, and step/next/finish.

``DebugServer.handle`` is pure (command line in, record lines out), so the
whole server is unit-testable without pipes; ``main`` adds the stdio loop.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.errors import ProgramLoadError, ProtocolError, TrackerError
from repro.core.state import frame_to_dict, variable_to_dict
from repro.minic.events import (
    AllocEvent,
    CallEvent,
    Event,
    ExitEvent,
    LineEvent,
    OutputEvent,
    ReturnEvent,
)
from repro.mi import protocol
from repro.mi.inferiors import InferiorAdapter, open_inferior

_MISSING = object()


@dataclass
class _ServerBreakpoint:
    kind: str  # "line", "function", "address"
    line: int = 0
    function: str = ""
    address: int = 0
    maxdepth: Optional[int] = None
    number: int = 0
    enabled: bool = True


@dataclass
class _ServerWatch:
    variable_id: str
    maxdepth: Optional[int] = None
    number: int = 0
    enabled: bool = True
    last: Any = _MISSING

    def split(self) -> Tuple[Optional[str], str]:
        if ":" in self.variable_id:
            function, name = self.variable_id.split(":", 1)
            return function, name
        return None, self.variable_id


@dataclass
class _ServerTracked:
    function: str
    maxdepth: Optional[int] = None
    number: int = 0
    enabled: bool = True


class DebugServer:
    """One debugging session over one inferior program."""

    def __init__(self, path: str, args: Optional[List[str]] = None):
        self.path = path
        self.inferior: InferiorAdapter = open_inferior(path, args)
        self._events: Optional[Iterator[Event]] = None
        self._breakpoints: List[_ServerBreakpoint] = []
        self._watches: List[_ServerWatch] = []
        self._tracked: List[_ServerTracked] = []
        self._number = 0
        self._running = False
        self._exited = False
        self._exit_code: Optional[int] = None
        self._depth = 0
        self._line: Optional[int] = None
        self._last_line: Optional[int] = None
        self._finished = False
        self._watch_baseline_done = False

    # ------------------------------------------------------------------
    # Command dispatch
    # ------------------------------------------------------------------

    def handle(self, line: str) -> List[str]:
        """Process one command line; return the record lines to emit."""
        try:
            command = protocol.parse_command(line)
        except ProtocolError as error:
            return [protocol.format_error(str(error))]
        handler = getattr(
            self, "_cmd_" + command.name.lstrip("-").replace("-", "_"), None
        )
        if handler is None:
            return [protocol.format_error(f"undefined command {command.name}")]
        try:
            return handler(command)
        except (TrackerError, ProgramLoadError) as error:
            return [protocol.format_error(str(error))]
        except Exception as error:  # defensive: never kill the pipe
            return [protocol.format_error(f"{type(error).__name__}: {error}")]

    # -- lifecycle -------------------------------------------------------

    def _cmd_file_exec_and_symbols(self, command) -> List[str]:
        return [protocol.format_done({"file": self.inferior.filename})]

    def _cmd_exec_run(self, command) -> List[str]:
        if self._running:
            return [protocol.format_error("the inferior is already running")]
        self._events = self.inferior.events()
        self._running = True
        return [protocol.format_running()] + self._advance("step")

    def _cmd_exec_continue(self, command) -> List[str]:
        return self._exec("continue")

    def _cmd_exec_step(self, command) -> List[str]:
        return self._exec("step")

    def _cmd_exec_next(self, command) -> List[str]:
        return self._exec("next")

    def _cmd_exec_finish(self, command) -> List[str]:
        return self._exec("finish")

    def _exec(self, mode: str) -> List[str]:
        if not self._running:
            return [protocol.format_error("the inferior has not been started")]
        if self._exited:
            return [protocol.format_error("the inferior has exited")]
        return [protocol.format_running()] + self._advance(mode)

    def _cmd_gdb_exit(self, command) -> List[str]:
        self._finished = True
        return [protocol.format_done()]

    # -- control points --------------------------------------------------

    def _cmd_break_insert(self, command) -> List[str]:
        if not command.args:
            return [protocol.format_error("break-insert needs a location")]
        location = command.args[0]
        maxdepth = command.option_int("maxdepth")
        self._number += 1
        breakpoint_ = _ServerBreakpoint(kind="", maxdepth=maxdepth, number=self._number)
        if location.startswith("*"):
            breakpoint_.kind = "address"
            breakpoint_.address = int(location[1:], 0)
        elif ":" in location:
            breakpoint_.kind = "line"
            breakpoint_.line = int(location.rsplit(":", 1)[1])
        elif location.isdigit():
            breakpoint_.kind = "line"
            breakpoint_.line = int(location)
        else:
            breakpoint_.kind = "function"
            breakpoint_.function = location
        self._breakpoints.append(breakpoint_)
        return [protocol.format_done({"number": breakpoint_.number})]

    def _cmd_break_watch(self, command) -> List[str]:
        if not command.args:
            return [protocol.format_error("break-watch needs a variable id")]
        self._number += 1
        watch = _ServerWatch(
            variable_id=command.args[0],
            maxdepth=command.option_int("maxdepth"),
            number=self._number,
        )
        function, name = watch.split()
        if self._running:
            watch.last = self.inferior.render_watch(function, name)
            if watch.last is None:
                watch.last = _MISSING
        self._watches.append(watch)
        return [protocol.format_done({"number": watch.number})]

    def _cmd_track_function(self, command) -> List[str]:
        if not command.args:
            return [protocol.format_error("track-function needs a name")]
        self._number += 1
        self._tracked.append(
            _ServerTracked(
                function=command.args[0],
                maxdepth=command.option_int("maxdepth"),
                number=self._number,
            )
        )
        return [protocol.format_done({"number": self._number})]

    def _cmd_break_delete(self, command) -> List[str]:
        if not command.args or command.args[0] == "all":
            self._breakpoints.clear()
            self._watches.clear()
            self._tracked.clear()
            return [protocol.format_done()]
        number = int(command.args[0])
        before = (
            len(self._breakpoints) + len(self._watches) + len(self._tracked)
        )
        self._breakpoints = [b for b in self._breakpoints if b.number != number]
        self._watches = [w for w in self._watches if w.number != number]
        self._tracked = [t for t in self._tracked if t.number != number]
        after = len(self._breakpoints) + len(self._watches) + len(self._tracked)
        if after == before:
            return [protocol.format_error(f"no control point {number}")]
        return [protocol.format_done()]

    def _cmd_break_disable(self, command) -> List[str]:
        return self._set_enabled(command, False)

    def _cmd_break_enable(self, command) -> List[str]:
        return self._set_enabled(command, True)

    def _set_enabled(self, command, enabled: bool) -> List[str]:
        number = int(command.args[0])
        for point in self._breakpoints + self._watches + self._tracked:
            if point.number == number:
                point.enabled = enabled
                return [protocol.format_done()]
        return [protocol.format_error(f"no control point {number}")]

    # -- inspection --------------------------------------------------------

    def _cmd_stack_list_frames(self, command) -> List[str]:
        self._require_paused()
        return [protocol.format_done(frame_to_dict(self.inferior.frame_chain()))]

    def _cmd_data_list_globals(self, command) -> List[str]:
        self._require_paused()
        payload = {
            name: variable_to_dict(variable)
            for name, variable in self.inferior.globals_map().items()
        }
        return [protocol.format_done(payload)]

    def _cmd_data_list_register_values(self, command) -> List[str]:
        registers = self.inferior.registers()
        if registers is None:
            return [protocol.format_error("this inferior has no registers")]
        return [protocol.format_done(registers)]

    def _cmd_data_read_memory(self, command) -> List[str]:
        address = int(command.args[0], 0)
        count = int(command.args[1], 0)
        raw = self.inferior.read_memory(address, count)
        return [protocol.format_done({"address": address, "bytes": raw.hex()})]

    def _cmd_data_disassemble(self, command) -> List[str]:
        return [protocol.format_done(self.inferior.disassemble(command.args[0]))]

    def _cmd_data_evaluate_expression(self, command) -> List[str]:
        self._require_paused()
        name = command.args[0]
        frame_name = command.options.get("frame")
        rendered = self.inferior.render_watch(frame_name, name)
        if rendered is None:
            return [protocol.format_error(f"no variable {name!r} in scope")]
        return [protocol.format_done({"value": rendered})]

    def _cmd_inferior_position(self, command) -> List[str]:
        return [
            protocol.format_done(
                {"file": self.inferior.filename, "line": self._line}
            )
        ]

    def _cmd_list_functions(self, command) -> List[str]:
        return [protocol.format_done(self.inferior.function_names())]

    def _cmd_heap_blocks(self, command) -> List[str]:
        payload = {
            f"{address:#x}": size
            for address, size in self.inferior.heap_blocks().items()
        }
        return [protocol.format_done(payload)]

    def _require_paused(self) -> None:
        if not self._running:
            raise TrackerError("the inferior has not been started")
        if self._exited:
            raise TrackerError("the inferior has exited")

    # ------------------------------------------------------------------
    # Run control: the server-side analog of the settrace handler
    # ------------------------------------------------------------------

    def _advance(self, mode: str) -> List[str]:
        """Consume events until a pause decision; return the record lines."""
        if self._events is None:
            return [protocol.format_error("the inferior has not been started")]
        if self._exited:
            return [protocol.format_error("the inferior has exited")]
        records: List[str] = []
        issue_depth = self._depth
        while True:
            try:
                event = next(self._events)
            except StopIteration:
                stopped = self._stop_exited(records)
                return stopped
            if isinstance(event, OutputEvent):
                records.append(protocol.format_stream(event.text))
                continue
            if isinstance(event, AllocEvent):
                records.append(
                    protocol.format_notify(
                        "alloc",
                        {
                            "kind": event.kind,
                            "address": event.address,
                            "size": event.size,
                        },
                    )
                )
                continue
            if isinstance(event, ExitEvent):
                self._exit_code = event.code
                return self._stop_exited(records, event)
            if isinstance(event, CallEvent):
                self._depth = event.depth
                reason = self._check_call(event)
                if reason is not None:
                    records.append(protocol.format_stopped(reason))
                    return records
                continue
            if isinstance(event, ReturnEvent):
                reason = self._check_return(event)
                self._depth = max(event.depth - 1, 0)
                if reason is not None:
                    records.append(protocol.format_stopped(reason))
                    return records
                continue
            if isinstance(event, LineEvent):
                self._depth = event.depth
                self._last_line = self._line
                self._line = event.line
                reason = self._check_line(event, mode, issue_depth)
                if reason is not None:
                    records.append(protocol.format_stopped(reason))
                    return records
                continue
            # WriteEvent and any future event kinds: no run-control effect.

    def _stop_exited(
        self, records: List[str], event: Optional[ExitEvent] = None
    ) -> List[str]:
        self._exited = True
        payload: Dict[str, Any] = {
            "reason": "exited",
            "exitcode": self._exit_code if self._exit_code is not None else 0,
        }
        error = self.inferior.exit_error()
        if event is not None and event.error:
            error = event.error
        if error:
            payload["error"] = error
        records.append(protocol.format_stopped(payload))
        return records

    def _check_call(self, event: CallEvent) -> Optional[Dict[str, Any]]:
        for breakpoint_ in self._breakpoints:
            if (
                breakpoint_.enabled
                and breakpoint_.kind == "function"
                and breakpoint_.function == event.function
                and _depth_ok(breakpoint_.maxdepth, event.depth)
            ):
                return {
                    "reason": "breakpoint-hit",
                    "func": event.function,
                    "line": event.line,
                    "depth": event.depth,
                    "bkptno": breakpoint_.number,
                }
        for tracked in self._tracked:
            if (
                tracked.enabled
                and tracked.function == event.function
                and _depth_ok(tracked.maxdepth, event.depth)
            ):
                return {
                    "reason": "function-entry",
                    "func": event.function,
                    "line": event.line,
                    "depth": event.depth,
                }
        return None

    def _check_return(self, event: ReturnEvent) -> Optional[Dict[str, Any]]:
        for tracked in self._tracked:
            if (
                tracked.enabled
                and tracked.function == event.function
                and _depth_ok(tracked.maxdepth, event.depth)
            ):
                return {
                    "reason": "function-exit",
                    "func": event.function,
                    "line": event.line,
                    "depth": event.depth,
                    "retval": event.value,
                }
        return None

    def _check_line(
        self, event: LineEvent, mode: str, issue_depth: int
    ) -> Optional[Dict[str, Any]]:
        watch_hit = self._check_watches(event)
        if watch_hit is not None:
            return watch_hit
        pc = self.inferior.current_pc()
        for breakpoint_ in self._breakpoints:
            if not breakpoint_.enabled:
                continue
            hit = False
            if breakpoint_.kind == "line" and breakpoint_.line == event.line:
                hit = True
            elif (
                breakpoint_.kind == "address"
                and pc is not None
                and breakpoint_.address == pc
            ):
                hit = True
            if hit and _depth_ok(breakpoint_.maxdepth, event.depth):
                return {
                    "reason": "breakpoint-hit",
                    "line": event.line,
                    "func": event.function,
                    "depth": event.depth,
                    "bkptno": breakpoint_.number,
                    "pc": pc,
                }
        if mode == "step":
            return self._step_stop(event, pc)
        if mode == "next" and event.depth <= issue_depth:
            return self._step_stop(event, pc)
        if mode == "finish" and event.depth < issue_depth:
            return self._step_stop(event, pc)
        return None

    def _step_stop(self, event: LineEvent, pc: Optional[int]) -> Dict[str, Any]:
        return {
            "reason": "end-stepping-range",
            "line": event.line,
            "func": event.function,
            "depth": event.depth,
            "pc": pc,
        }

    def _check_watches(self, event: LineEvent) -> Optional[Dict[str, Any]]:
        if not self._watch_baseline_done:
            # C globals exist (initialized) before the first line runs, so
            # the first check only records baselines — a watch fires on
            # *modification*, not on the pre-existing initial value.
            self._watch_baseline_done = True
            for watch in self._watches:
                function, name = watch.split()
                current = self.inferior.render_watch(function, name)
                watch.last = _MISSING if current is None else current
            return None
        for watch in self._watches:
            if not watch.enabled:
                continue
            function, name = watch.split()
            current = self.inferior.render_watch(function, name)
            rendered = _MISSING if current is None else current
            previous = watch.last
            watch.last = rendered
            if previous is rendered:  # both missing
                continue
            if previous != rendered and rendered is not _MISSING:
                if _depth_ok(watch.maxdepth, event.depth):
                    return {
                        "reason": "watchpoint-trigger",
                        "var": watch.variable_id,
                        "old": None if previous is _MISSING else previous,
                        "new": rendered,
                        "line": event.line,
                        "func": event.function,
                        "depth": event.depth,
                        "wpnum": watch.number,
                    }
        return None


def _depth_ok(maxdepth: Optional[int], depth: int) -> bool:
    return maxdepth is None or depth <= maxdepth


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: ``python -m repro.mi.server program.c [args...]``."""
    argv = argv if argv is not None else sys.argv[1:]
    if not argv:
        print(protocol.format_error("usage: server <program> [args...]"))
        return 2
    try:
        server = DebugServer(argv[0], argv[1:])
    except (ProgramLoadError, OSError) as error:
        print(protocol.format_error(str(error)), flush=True)
        return 1
    print(protocol.format_done({"loaded": argv[0]}), flush=True)
    for line in sys.stdin:
        if not line.strip():
            continue
        for record in server.handle(line):
            print(record, flush=True)
        if server._finished:
            break
    return 0


if __name__ == "__main__":
    sys.exit(main())
