"""The machine-interface layer: protocol, debug server, client.

Reproduces the paper's GDB/MI architecture (Fig. 4): the tracker process
talks to a debugger subprocess over a pipe; the debugger owns the inferior
and serializes abstract program state back across the pipe.
"""

from repro.mi.client import MIClient
from repro.mi.inferiors import (
    InferiorAdapter,
    MinicInferior,
    RiscvInferior,
    open_inferior,
)
from repro.mi.protocol import (
    Command,
    Record,
    format_command,
    format_done,
    format_error,
    format_notify,
    format_running,
    format_stopped,
    format_stream,
    parse_command,
    parse_record,
)
from repro.mi.server import DebugServer
from repro.mi.staterender import CStateRenderer, render_watch

__all__ = [
    "CStateRenderer",
    "Command",
    "DebugServer",
    "InferiorAdapter",
    "MIClient",
    "MinicInferior",
    "Record",
    "RiscvInferior",
    "format_command",
    "format_done",
    "format_error",
    "format_notify",
    "format_running",
    "format_stopped",
    "format_stream",
    "open_inferior",
    "parse_command",
    "parse_record",
    "render_watch",
]
