"""The shared client half of every out-of-process tracker.

Two trackers drive a debug-server subprocess over the MI pipe: the GDB
tracker (mini-C / RISC-V inferiors) and the subprocess-isolated Python
tracker. Their client logic is identical — supervised command execution
with deadlines and crash recovery, incremental control-point sync,
``*stopped`` payload ingestion, serialized-state inspection, and the
server-side ``-timeline-*`` recording family — so it lives here once, in
:class:`MIRemoteTracker`. Subclasses override small hooks where the
substrates genuinely differ (how a tracked function is installed, how a
breakpoint number maps back to a pause reason, how a return value is
decoded).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.engine import TrackerStats
from repro.core.errors import (
    ControlTimeout,
    NotStartedError,
    ProtocolError,
    TrackerError,
)
from repro.core.pause import PauseReason, PauseReasonType
from repro.core.state import (
    Frame,
    Variable,
    frame_from_dict,
    variable_from_dict,
)
from repro.core.supervision import (
    BACKEND_RESTARTED,
    BACKEND_UNAVAILABLE,
    INFERIOR_INTERRUPTED,
    BackoffPolicy,
    Deadline,
    SupervisionEvent,
    run_with_recovery,
)
from repro.core.timeline import Timeline
from repro.core.tracker import (
    FunctionBreakpoint,
    LineBreakpoint,
    TrackedFunction,
    Tracker,
    Watchpoint,
)
from repro.mi.client import MIClient


class MIRemoteTracker(Tracker):
    """Base of trackers that drive a debug-server subprocess over MI.

    Args:
        restart_policy: backoff schedule for debug-server crash recovery
            (:class:`repro.core.supervision.BackoffPolicy`). On a server
            crash or garbled pipe, the client restarts the backend,
            re-installs the full control-point registry from the
            client-side engine index, re-runs the inferior to its first
            pause, and retries the failed command; exhausted retries put
            the tracker in the terminal ``"unavailable"`` health state.
            ``BackoffPolicy(max_restarts=0)`` disables recovery.
        transport_factory: forwarded to :class:`MIClient` (fault
            injection hook, see :mod:`repro.testing.faults`).
    """

    #: whether the local engine counts "interrupted" stop payloads; a
    #: subclass whose server-side tracker already counts them (so the
    #: ``-tracker-stats`` merge would double count) sets this False.
    _count_interrupts_locally = True

    def __init__(
        self,
        restart_policy: Optional[BackoffPolicy] = None,
        transport_factory: Optional[Callable[[], Any]] = None,
    ) -> None:
        super().__init__()
        self._client: Optional[MIClient] = None
        self._restart_policy = restart_policy or BackoffPolicy()
        self._transport_factory = transport_factory
        self._filename = ""
        #: whether -exec-run has completed once (vs. still in flight);
        #: decides if a backend restart must re-launch the inferior
        self._inferior_launched = False
        #: timeline recording lives server-side (-timeline-* family):
        #: _remote_recording = a server timeline exists; _remote_enabled =
        #: it is currently capturing; the client caches the last dump.
        self._remote_recording = False
        self._remote_enabled = False
        self._timeline_cache: Optional[Timeline] = None
        self._timeline_dirty = False

    # ------------------------------------------------------------------
    # Substrate hooks
    # ------------------------------------------------------------------

    def _make_transport_factory(
        self, path: str, args: List[str]
    ) -> Optional[Callable[[], Any]]:
        """The transport factory for this substrate's server.

        ``None`` (the default) lets :class:`MIClient` spawn the standard
        ``python -m repro.mi.server`` subprocess.
        """
        return self._transport_factory

    def _install_tracked(self, point: TrackedFunction) -> None:
        """Install one tracked function on the server."""
        self._client.execute(
            "-track-function", [point.function], _maxdepth(point.maxdepth)
        )

    def _map_breakpoint_pause(
        self, payload: Dict[str, Any], line: Optional[int]
    ) -> Optional[PauseReason]:
        """Substrate-specific mapping of a ``breakpoint-hit`` payload.

        Return ``None`` to fall through to the generic BREAKPOINT reason.
        """
        return None

    def _decode_retval(self, payload: Dict[str, Any]) -> Any:
        """Decode a ``function-exit`` payload's serialized return value."""
        return payload.get("retval")

    def _reset_backend_state(self) -> None:
        """Clear substrate bookkeeping invalidated by a restart/clear."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _load_program(self, path: str, args: List[str]) -> None:
        self._client = MIClient(
            path,
            args,
            transport_factory=self._make_transport_factory(path, args),
        )
        loaded = self._execute("-file-exec-and-symbols", [path])
        self._filename = loaded["file"] if loaded else path

    def _start(self) -> None:
        self._sync_control_points()
        payload = self._run_control("-exec-run")
        self._inferior_launched = True
        self._ingest(payload)

    def _terminate(self) -> None:
        if self._client is not None:
            self._client.close()

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------

    def _resume(self) -> None:
        self._ingest(self._run_control("-exec-continue"))

    def _next(self) -> None:
        self._ingest(self._run_control("-exec-next"))

    def _step(self) -> None:
        self._ingest(self._run_control("-exec-step"))

    def _finish(self) -> None:
        self._ingest(self._run_control("-exec-finish"))

    # ------------------------------------------------------------------
    # Supervised server calls: deadlines + crash recovery
    # ------------------------------------------------------------------

    def _attempt_deadline(self) -> Optional[Deadline]:
        """A fresh deadline per attempt, from the active control call.

        Each recovery retry restarts the clock: the budget bounds one
        server interaction, not the whole backoff schedule (which is
        itself bounded by the policy).
        """
        if self._control_deadline is not None:
            return Deadline(self._control_deadline.timeout)
        if self.default_timeout is not None:
            return Deadline(self.default_timeout)
        return None

    def _execute(
        self,
        name: str,
        args: Optional[List[str]] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """A synchronous server command, with crash recovery."""
        return self._supervised_call(
            lambda: self._client.execute(
                name, args, options, deadline=self._attempt_deadline()
            )
        )

    def _run_control(self, name: str) -> Dict[str, Any]:
        """An exec command, with deadline interrupt and crash recovery."""
        payload = self._dispatch_run_control(name)
        if payload.get("reason") == "interrupted":
            if self._count_interrupts_locally:
                self.engine.stats.interrupts += 1
            self._emit_supervision_event(
                SupervisionEvent(
                    INFERIOR_INTERRUPTED,
                    f"{name} exceeded its deadline; the inferior was "
                    "interrupted and is paused",
                    {"line": payload.get("line")},
                )
            )
        return payload

    def _dispatch_run_control(self, name: str) -> Dict[str, Any]:
        """Run one exec command on the server and return its stop payload.

        A hook because crash semantics differ per substrate: for the GDB
        server a crash is the *tool stack's* failure (the interpreter died
        under a healthy inferior) and is recovered by restart; a subclass
        whose server process hosts the inferior itself (the subprocess
        Python tracker) overrides this to translate a crash into the
        inferior's own death.
        """
        return self._supervised_call(
            lambda: self._client.run_control(
                name, deadline=self._attempt_deadline()
            )
        )

    def _supervised_call(self, operation: Callable[[], Any]) -> Any:
        try:
            return run_with_recovery(
                operation,
                restart=self._restart_backend,
                policy=self._restart_policy,
                recoverable=(ProtocolError,),
                on_restarted=self._note_restarted,
                on_unavailable=self._note_unavailable,
            )
        except ControlTimeout:
            self.engine.stats.control_timeouts += 1
            raise

    def _restart_backend(self, error: BaseException) -> None:
        """Respawn the server and rebuild the whole session on it.

        The client-side engine registry is the source of truth: every
        control point is re-installed on the fresh server
        (:meth:`ControlPointEngine.resync_points` under
        ``_sync_control_points``), and an already-started inferior is
        re-run to a clean first-line pause so a retried control command
        finds the server in a valid ``STOPPED`` state.
        """
        self._client.restart()
        loaded = self._client.execute(
            "-file-exec-and-symbols",
            [self._program],
            deadline=self._attempt_deadline(),
        )
        self._filename = loaded["file"] if loaded else self._program
        self._reset_backend_state()
        self.engine.reset_sync()
        self._sync_control_points()
        # Re-launch only an inferior that had fully launched; a crash
        # during -exec-run itself leaves the relaunch to the retry.
        if self._inferior_launched and self._exit_code is None:
            self._client.run_control(
                "-exec-run", deadline=self._attempt_deadline()
            )

    def _note_restarted(self, error: BaseException, attempt: int) -> None:
        self.engine.stats.backend_restarts += 1
        self._emit_supervision_event(
            SupervisionEvent(
                BACKEND_RESTARTED,
                f"debug server restarted (attempt {attempt}) after: {error}",
                {"attempt": attempt, "error": str(error)},
            )
        )

    def _note_unavailable(self, error: BaseException) -> None:
        self.health = "unavailable"
        self._emit_supervision_event(
            SupervisionEvent(
                BACKEND_UNAVAILABLE,
                "debug server crash recovery exhausted; the tracker is "
                f"unavailable (last error: {error})",
                {"error": str(error)},
            )
        )

    def _control_points_changed(self) -> None:
        super()._control_points_changed()
        if self._client is not None:
            self._sync_control_points()

    def clear_control_points(self) -> None:
        """Remove every control point, server side included."""
        super().clear_control_points()
        self._reset_backend_state()
        if self._client is not None:
            self._execute("-break-delete", ["all"])

    def _sync_control_points(self) -> None:
        """Send any not-yet-registered control points to the server.

        The engine tracks which points have already crossed the pipe
        (:meth:`ControlPointEngine.take_unsynced`), so re-syncs after new
        installs are incremental.
        """
        if self._client is None:
            return
        for point in self.engine.take_unsynced():
            if isinstance(point, LineBreakpoint):
                location = (
                    f"{point.filename}:{point.line}"
                    if point.filename
                    else str(point.line)
                )
                self._client.execute(
                    "-break-insert",
                    [location],
                    _point_options(point),
                )
            elif isinstance(point, FunctionBreakpoint):
                self._client.execute(
                    "-break-insert",
                    [point.function],
                    _point_options(point),
                )
            elif isinstance(point, Watchpoint):
                self._client.execute(
                    "-break-watch",
                    [point.variable_id],
                    _maxdepth(point.maxdepth),
                )
            elif isinstance(point, TrackedFunction):
                self._install_tracked(point)

    # ------------------------------------------------------------------
    # Stopped-payload ingestion
    # ------------------------------------------------------------------

    def _ingest(self, payload: Dict[str, Any]) -> None:
        self._timeline_dirty = True
        reason = payload.get("reason")
        line = payload.get("line")
        if line is not None:
            self.last_lineno = self.next_lineno
            self.next_lineno = line
        if reason == "exited":
            self._exit_code = payload.get("exitcode", 0)
            self._pause_reason = PauseReason(type=PauseReasonType.EXIT)
            self.exit_error = payload.get("error")
            return
        if reason == "interrupted":
            self._pause_reason = self._with_thread(payload, PauseReason(
                type=PauseReasonType.INTERRUPT, line=line
            ))
            return
        if reason == "deadlock-suspected":
            self._pause_reason = self._with_thread(payload, PauseReason(
                type=PauseReasonType.DEADLOCK_SUSPECTED,
                line=line,
                details=payload.get("deadlock"),
            ))
            return
        if reason == "watchpoint-trigger":
            self._pause_reason = self._with_thread(payload, PauseReason(
                type=PauseReasonType.WATCH,
                variable=payload.get("var"),
                old_value=payload.get("old"),
                new_value=payload.get("new"),
                line=line,
            ))
            return
        if reason == "function-entry":
            self._pause_reason = self._with_thread(payload, PauseReason(
                type=PauseReasonType.CALL,
                function=payload.get("func"),
                line=line,
            ))
            return
        if reason == "function-exit":
            self._pause_reason = self._with_thread(payload, PauseReason(
                type=PauseReasonType.RETURN,
                function=payload.get("func"),
                return_value=self._decode_retval(payload),
                line=line,
            ))
            return
        if reason == "breakpoint-hit":
            mapped = self._map_breakpoint_pause(payload, line)
            if mapped is not None:
                self._pause_reason = self._with_thread(payload, mapped)
                return
            self._pause_reason = self._with_thread(payload, PauseReason(
                type=PauseReasonType.BREAKPOINT,
                function=payload.get("func"),
                line=line,
            ))
            return
        self._pause_reason = self._with_thread(
            payload, PauseReason(type=PauseReasonType.STEP, line=line)
        )

    @staticmethod
    def _with_thread(payload: Dict[str, Any], reason: PauseReason) -> PauseReason:
        """Stamp a decoded pause with the stop payload's thread fields."""
        reason.thread = payload.get("thread")
        reason.thread_name = payload.get("thread-name")
        return reason

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def _get_current_frame(self) -> Frame:
        return frame_from_dict(self._execute("-stack-list-frames"))

    def _get_global_variables(self) -> Dict[str, Variable]:
        payload = self._execute("-data-list-globals")
        return {
            name: variable_from_dict(data) for name, data in payload.items()
        }

    def _get_position(self) -> Tuple[str, Optional[int]]:
        payload = self._execute("-inferior-position")
        return payload["file"], payload["line"]

    def get_threads(self):
        """The server-side inferior's threads (``-thread-info``)."""
        from repro.core.threads import thread_from_dict

        if self._client is None:
            return super().get_threads()
        payload = self._execute("-thread-info")
        return [thread_from_dict(data) for data in payload.get("threads", [])]

    def get_stats(self) -> TrackerStats:
        """Client-side counters merged with the server's ``-tracker-stats``.

        The pause decisions happen server-side (the server runs the same
        :class:`ControlPointEngine` over the raw event stream), so the
        event/pause counters come across the pipe; the local engine only
        contributes client-side bookkeeping.
        """
        local = self.engine.stats
        if self._client is not None:
            local.transport_lines_dropped = (
                self._client.transport_lines_dropped()
            )
        if self._client is None or not self._client.alive():
            return local
        try:
            payload = self._client.execute("-tracker-stats")
        except TrackerError:
            return local
        return local.merged(TrackerStats.from_dict(payload))

    def get_output(self) -> str:
        """Everything the inferior printed so far."""
        replayed = self._replay_snapshot()
        if replayed is not None:
            return replayed.stdout
        return "".join(self._client.console)

    def list_functions(self) -> List[str]:
        """Names of the inferior's functions."""
        return self._execute("-list-functions")

    # ------------------------------------------------------------------
    # Timeline recording: delegated to the server (-timeline-* family)
    # ------------------------------------------------------------------

    def enable_recording(
        self,
        keyframe_interval: int = 16,
        max_snapshots: Optional[int] = None,
        tracedir: Optional[str] = None,
        index: bool = True,
    ):
        """Start recording — in the *server* process.

        The server captures a snapshot at every ``*stopped`` record, so
        recording does not serialize state across the pipe per pause; the
        whole timeline crosses once, when :attr:`timeline` is first read.
        Queries are better sent with :meth:`timeline_query`, which runs
        server-side and ships only the matches. Returns ``None``: the
        recorder object lives server-side.

        ``tracedir`` is not supported on remote backends (the server owns
        the timeline; a client-side spill directory would record nothing)
        and raises :class:`TraceStoreError`. ``index`` is accepted for
        signature compatibility; the server maintains its query index on
        demand.
        """
        if tracedir is not None:
            from repro.core.errors import TraceStoreError

            raise TraceStoreError(
                "tracedir recording is not supported on remote backends; "
                "record locally or save the dumped timeline instead"
            )
        if self._client is None:
            raise NotStartedError(
                "load the program before enabling recording"
            )
        options: Dict[str, Any] = {"keyframe-interval": keyframe_interval}
        if max_snapshots is not None:
            options["max-snapshots"] = max_snapshots
        self._execute("-timeline-start", options=options)
        self._remote_recording = True
        self._remote_enabled = True
        self._timeline_cache = None
        self._timeline_dirty = True
        return None

    def disable_recording(self) -> None:
        """Stop recording; the server keeps the timeline navigable."""
        if self._remote_enabled and self._client is not None:
            self._execute("-timeline-stop")
        self._remote_enabled = False

    @property
    def timeline(self) -> Optional[Timeline]:
        if not self._remote_recording:
            return super().timeline
        if (
            self._timeline_dirty or self._timeline_cache is None
        ) and self._client is not None:
            self._timeline_cache = Timeline.from_dict(
                self._execute("-timeline-dump")
            )
            self._timeline_dirty = False
        return self._timeline_cache

    def timeline_query(self, text: str) -> Dict[str, Any]:
        """Run a trace query server-side (``-timeline-query``).

        The query grammar is :func:`repro.core.tracestore.parse_query`
        (``x changed``, ``f() == INVALID``, ``len(heap) > 100``). Only
        the structured result crosses the pipe — the recording itself
        stays in the server process.
        """
        if not self._remote_recording:
            # Local recording (or none): answer through the unified view.
            return self.timeline_view().query(text).to_dict()
        return self._execute("-timeline-query", [text])

    def _after_control(self, record: Optional[bool]) -> None:
        if self._remote_recording:
            # The server already recorded this pause; record=False means
            # the caller wants it off the record.
            if (
                record is False
                and self._remote_enabled
                and self._client is not None
            ):
                self._execute("-timeline-drop-last")
            self._timeline_dirty = True
            return
        super()._after_control(record)


def _maxdepth(value: Optional[int]) -> Optional[Dict[str, int]]:
    return {"maxdepth": value} if value is not None else None


def _point_options(point: Any) -> Optional[Dict[str, int]]:
    """MI options for a control point: ``--maxdepth`` and ``--thread``."""
    options: Dict[str, int] = {}
    if getattr(point, "maxdepth", None) is not None:
        options["maxdepth"] = point.maxdepth
    if getattr(point, "thread", None) is not None:
        options["thread"] = point.thread
    return options or None
