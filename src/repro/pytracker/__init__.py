"""The Python trackers: in-process, ``sys.settrace``- or
``sys.monitoring``-based."""

from repro.pytracker.introspect import (
    PyVariable,
    Snapshotter,
    build_frame_chain,
    build_globals,
    build_variable,
)
from repro.pytracker.monitoring import MonitoringTracker
from repro.pytracker.tracker import PythonTracker

__all__ = [
    "MonitoringTracker",
    "PythonTracker",
    "PyVariable",
    "Snapshotter",
    "build_frame_chain",
    "build_globals",
    "build_variable",
]
