"""The Python tracker: in-process, ``sys.settrace``-based."""

from repro.pytracker.introspect import (
    PyVariable,
    Snapshotter,
    build_frame_chain,
    build_globals,
    build_variable,
)
from repro.pytracker.tracker import PythonTracker

__all__ = [
    "PythonTracker",
    "PyVariable",
    "Snapshotter",
    "build_frame_chain",
    "build_globals",
    "build_variable",
]
