"""The Python tracker: ``sys.settrace``-based control of Python inferiors.

Implementation notes (Section II-C2 of the paper):

- The inferior runs **in a dedicated thread of the tool's interpreter** so
  that control calls can block the tool thread until the inferior pauses
  (Fig. 5 of the paper). The handshake is a condition variable plus a pause
  generation counter.
- The tracker registers a trace function with ``sys.settrace`` in the
  inferior thread. The interpreter calls it before every source line and at
  function call/return boundaries; all pause decisions are delegated to the
  shared :class:`repro.core.engine.ControlPointEngine`, whose compiled
  indexes make the common no-hit case one ``frozenset`` lookup instead of a
  scan over every installed breakpoint.
- Watchpoints are implemented by checking, before the execution of every
  line, whether the value of any watched variable has changed. This is why
  ``resume`` still single-steps internally — the paper notes that this slows
  execution down a lot but is acceptable in the pedagogical context
  (quantified in ``benchmarks/test_overhead.py``). When no control point
  can possibly fire in a frame, the engine lets the trace function return
  ``None`` on the frame's call event, disabling per-line tracing for the
  whole frame.
- **Threads.** ``threading.settrace`` installs the same trace function in
  every thread the inferior spawns; a thread is registered (stable index,
  0 = the thread executing module code) on its first traced call event in
  an inferior frame. Pause semantics are *all-stop*: one thread delivers a
  pause and owns the handshake, the others park at their next trace event
  until the tool resumes; threads that hit control points while parked
  deliver their pauses one control call at a time (GDB-style pending
  stops). Interrupts are flag-based and thread-agnostic, so a ``timeout=``
  deadline is serviced by whichever thread next executes a traced event.
  When *no* thread can — every one of them is blocked on a lock — the
  :class:`repro.core.supervision.StallDetector` classifies the hang and
  the control call returns a ``DEADLOCK_SUSPECTED`` pause carrying the
  lock-wait graph instead of timing out.
"""

from __future__ import annotations

import os
import sys
import threading
import warnings
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import (
    ControlTimeout,
    InferiorCrashError,
    ProgramLoadError,
)
from repro.core.pause import PauseReason, PauseReasonType
from repro.core.ringbuffer import DEFAULT_OUTPUT_LIMIT, RingTextBuffer
from repro.core.state import Frame, Variable
from repro.core.supervision import (
    INFERIOR_DEADLOCK_SUSPECTED,
    INFERIOR_INTERRUPTED,
    INFERIOR_WEDGED,
    StallDetector,
    SupervisionEvent,
    format_thread_stack,
)
from repro.core.threads import (
    THREAD_BLOCKED,
    THREAD_FINISHED,
    THREAD_PARKED,
    THREAD_PAUSED,
    THREAD_RUNNING,
    TaskInfo,
    ThreadInfo,
)
from repro.core.tracker import Tracker
from repro.pytracker.introspect import (
    CaptureLimits,
    Snapshotter,
    build_frame_chain,
    build_globals,
)

_MISSING = object()


def _split_watch_path(name: str):
    """Split ``"obj.attr[0].x"`` into ``("obj", [".attr", "[0]", ".x"])``.

    Watch identifiers may address *inside* an object: attribute steps with
    ``.name`` and element steps with ``[index]`` (int or quoted-string
    keys). A plain name has an empty path.
    """
    import re

    match = re.match(r"^[A-Za-z_][A-Za-z0-9_]*", name)
    if match is None:
        return name, []
    base = match.group(0)
    rest = name[len(base):]
    steps = re.findall(r"\.[A-Za-z_][A-Za-z0-9_]*|\[[^]]*\]", rest)
    return base, steps


def _follow_watch_path(holder, steps):
    """Walk attribute/element steps; any failure means 'not watchable now'."""
    value = holder
    for step in steps:
        if value is _MISSING:
            return _MISSING
        try:
            if step.startswith("."):
                value = getattr(value, step[1:])
            else:
                key_text = step[1:-1].strip()
                if (
                    len(key_text) >= 2
                    and key_text[0] in "'\""
                    and key_text[-1] == key_text[0]
                ):
                    key = key_text[1:-1]
                else:
                    key = int(key_text)
                value = value[key]
        except (AttributeError, LookupError, ValueError, TypeError):
            return _MISSING
    return value


class _KillInferior(BaseException):
    """Raised inside the inferior thread to unwind it on ``terminate``.

    Derives from ``BaseException`` so inferior ``except Exception`` handlers
    cannot swallow it.
    """


class _InferiorThreadRecord:
    """One registered inferior thread: stable index plus live handles."""

    __slots__ = ("index", "ident", "name", "thread", "exception")

    def __init__(
        self, index: int, ident: int, name: str, thread: threading.Thread
    ):
        self.index = index
        self.ident = ident
        self.name = name
        self.thread = thread
        #: The unhandled exception that killed this thread, if any.
        self.exception: Optional[BaseException] = None


class PythonTracker(Tracker):
    """Tracker for Python inferiors, built directly on ``sys.settrace``.

    Args:
        capture_output: when true, everything the inferior prints is
            collected (readable via :meth:`get_output`) instead of going to
            the tool's stdout. The swap is only in effect while the inferior
            thread is actually executing, so tool prints are unaffected.
        snapshot_depth: optional cap on the depth of object-graph snapshots
            taken during inspection (``None`` = unlimited, cycle-safe).
        terminate_grace: seconds :meth:`terminate` waits for the inferior
            thread to unwind before abandoning it (tracker goes
            ``"invalid"``, the wedge is warned about and counted).
        capture_limits: hard bounds on how much of the inferior's object
            graph a single pause captures
            (:class:`repro.pytracker.introspect.CaptureLimits`; defaults
            to the module defaults). Everything a bound cuts is marked
            ``Value.truncated``.
        output_limit: maximum characters of inferior output retained by
            :meth:`get_output` (``None`` = unbounded). Evicted characters
            are counted in ``TrackerStats.output_chars_dropped``.
    """

    backend = "python"

    def __init__(
        self,
        capture_output: bool = False,
        snapshot_depth: Optional[int] = None,
        terminate_grace: float = 5.0,
        capture_limits: Optional[CaptureLimits] = None,
        output_limit: Optional[int] = DEFAULT_OUTPUT_LIMIT,
    ):
        super().__init__()
        self._capture_output = capture_output
        self._snapshot_depth = snapshot_depth
        self._capture_limits = capture_limits
        self._terminate_grace = terminate_grace
        self._interrupt_requested = False
        self._output = RingTextBuffer(output_limit)
        self._guard_active = False
        self._source_code = None
        self._code = None
        self._globals: Dict[str, Any] = {}
        self._thread: Optional[threading.Thread] = None
        self._condition = threading.Condition()
        self._pause_count = 0
        self._finished = False
        self._command: Optional[str] = None
        self._killed = False
        self._paused_py_frame = None
        self._paused_event: Optional[str] = None
        self._inferior_exception: Optional[BaseException] = None
        self._saved_stdout = None
        # -- thread dimension ------------------------------------------
        #: OS ident -> stable inferior thread index (0 = main).
        self._thread_ids: Dict[int, int] = {}
        #: index -> registration record.
        self._thread_records: Dict[int, _InferiorThreadRecord] = {}
        self._next_thread_index = 0
        #: All-stop state: True while one thread owns the pause handshake;
        #: the others park at their next trace event until it clears.
        self._pause_active = False
        #: Idents currently parked by the all-stop barrier (inspection).
        self._parked_idents: set = set()
        #: Index of the thread that delivered the current pause.
        self._paused_thread_index = 0
        #: OS ident of the thread owning the live pause handshake.
        self._paused_owner_ident: Optional[int] = None
        self._saved_threading_trace: Any = None
        self._saved_excepthook: Any = None
        self._stall_detector = StallDetector()
        #: Thread indexes the last stall verdict found blocked on locks;
        #: cleared when a real (handshake) pause lands.
        self._stall_blocked: set = set()

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------

    def _load_program(self, path: str, args: List[str]) -> None:
        if not os.path.exists(path):
            raise ProgramLoadError(f"no such program: {path}")
        with open(path, "r", encoding="utf-8") as source:
            self._source_code = source.read()
        try:
            self._code = compile(self._source_code, os.path.abspath(path), "exec")
        except SyntaxError as error:
            raise ProgramLoadError(f"syntax error in {path}: {error}") from error
        self._program_abspath = os.path.abspath(path)

    def _start(self) -> None:
        self.engine.arm("step")  # pause before the first executable line
        self._globals = {
            "__name__": "__main__",
            "__file__": self._program_abspath,
            "__builtins__": __builtins__,
        }
        self._stall_detector = StallDetector(
            is_inferior_file=lambda filename: (
                filename == self._program_abspath
            ),
            machinery_files=[__file__],
        )
        self._install_excepthook()
        self._thread = threading.Thread(
            target=self._run_inferior, name="repro-inferior", daemon=True
        )
        self._thread.start()
        self._wait_for_pause()

    def _terminate(self) -> None:
        try:
            if self._thread is None or not self._thread.is_alive():
                return
            with self._condition:
                self._killed = True
                self._command = "kill"
                self._condition.notify_all()
                # A free-running inferior whose frames were untraced (the
                # engine's frame-skip fast path) would never see the kill via
                # line events; force per-line tracing back on so it does.
                self._retrace_live_frames()
            self._thread.join(timeout=self._terminate_grace)
            stuck = []
            if self._thread.is_alive():
                stuck.append(self._thread)
            for record in list(self._thread_records.values()):
                if record.index != 0 and record.thread.is_alive():
                    record.thread.join(timeout=0.1)
                    if record.thread.is_alive():
                        stuck.append(record.thread)
            for thread in stuck:
                # The inferior is stuck somewhere the tracer cannot reach
                # (typically blocking native code). Abandon the thread, but
                # loudly: mark the tracker invalid, count the wedge, and
                # report where the inferior is stuck.
                self.health = "invalid"
                self.engine.stats.wedged_inferiors += 1
                stack = format_thread_stack(thread)
                message = (
                    f"inferior thread {thread.name!r} did not exit within "
                    f"{self._terminate_grace:.1f}s; abandoning it and "
                    "marking the tracker invalid"
                )
                self._emit_supervision_event(
                    SupervisionEvent(INFERIOR_WEDGED, message, {"stack": stack})
                )
                warnings.warn(
                    f"{message}; the inferior is currently at:\n{stack}",
                    RuntimeWarning,
                    stacklevel=4,
                )
        finally:
            self._remove_excepthook()

    # ------------------------------------------------------------------
    # Worker-thread crash handling
    # ------------------------------------------------------------------

    def _install_excepthook(self) -> None:
        """Route unhandled exceptions of inferior worker threads here.

        ``threading.excepthook`` is process-global; the saved hook keeps
        handling threads that are not this tracker's (including nested
        trackers — each installed hook delegates unknown threads onward).
        """
        self._saved_excepthook = threading.excepthook
        threading.excepthook = self._thread_excepthook

    def _remove_excepthook(self) -> None:
        if self._saved_excepthook is not None:
            if threading.excepthook is self._thread_excepthook:
                threading.excepthook = self._saved_excepthook
            self._saved_excepthook = None

    def _thread_excepthook(self, hook_args) -> None:
        ident = hook_args.thread.ident if hook_args.thread is not None else None
        index = self._thread_ids.get(ident) if ident is not None else None
        if index is None:
            saved = self._saved_excepthook
            if saved is not None:
                saved(hook_args)
            return
        if hook_args.exc_type is _KillInferior:
            return  # terminate unwound the worker; silence is correct
        record = self._thread_records.get(index)
        if record is not None:
            record.exception = hook_args.exc_value
        self._emit_supervision_event(
            SupervisionEvent(
                "inferior-thread-crashed",
                f"inferior thread {index} raised "
                f"{hook_args.exc_type.__name__}: {hook_args.exc_value}",
                {"thread": index},
            )
        )

    def get_thread_exceptions(self) -> Dict[int, BaseException]:
        """Unhandled exceptions that killed worker threads, by thread index.

        The main inferior thread's crash is reported through
        :meth:`get_inferior_exception` / :meth:`raise_if_crashed` as
        before; worker crashes do not terminate the inferior (Python
        semantics), so they are collected here instead.
        """
        return {
            record.index: record.exception
            for record in self._thread_records.values()
            if record.exception is not None
        }

    # ------------------------------------------------------------------
    # Control hooks: set the step mode, wake the inferior, wait for a pause
    # ------------------------------------------------------------------

    def _resume(self) -> None:
        self._issue("resume")

    def _next(self) -> None:
        self._issue("next", self._current_depth())

    def _step(self) -> None:
        self._issue("step")

    def _finish(self) -> None:
        self._issue("finish", self._current_depth())

    def _issue(self, mode: str, depth: int = 0) -> None:
        with self._condition:
            if self._finished:
                return
            # Arm the engine's step machine while the inferior is parked in
            # the pause handshake, so the write is race-free. Step modes
            # are scoped to the thread that owns the current pause, so a
            # sibling thread's next line cannot complete this thread's
            # step; resume is thread-agnostic.
            thread = self._paused_thread_index if mode != "resume" else None
            self.engine.arm(mode, depth, thread=thread)
            before = self._pause_count
            stalled = self._paused_event == "stall"
            self._command = "go"
            self._condition.notify_all()
            if stalled and self._classify_stall(before):
                # The previous pause was a synthesized deadlock verdict and
                # the inferior is still wedged: re-report immediately
                # instead of burning another control deadline (crash-only —
                # control calls return paused, they never hang).
                return
            self._await_pause(before)

    def _wait_for_pause(self) -> None:
        with self._condition:
            self._await_pause(0)

    def _await_pause(self, before: int) -> None:
        """Wait (holding the condition) until a pause or termination.

        Honors the active control-call deadline: on expiry the inferior is
        interrupted (it then pauses with ``PauseReasonType.INTERRUPT``);
        if even the interrupt cannot land within the grace period —
        the inferior is blocked in native code the tracer never
        re-enters — the call gives up with :class:`ControlTimeout`.
        """
        deadline = self._control_deadline
        while self._pause_count == before and not self._finished:
            if deadline is None:
                # No supervision deadline of our own — but a remote
                # supervisor (the subprocess server's client) can still
                # request an interrupt asynchronously, which never notifies
                # this condition. Poll for the flag, and when it goes
                # unanswered because every inferior thread is blocked on
                # locks, classify the stall exactly like a local deadline
                # expiry would.
                self._condition.wait(timeout=0.25)
                if (
                    self._interrupt_requested
                    and self._pause_count == before
                    and not self._finished
                    and self._classify_stall(before)
                ):
                    return
                continue
            if not deadline.interrupt_requested:
                remaining = deadline.remaining()
                if remaining > 0:
                    self._condition.wait(timeout=remaining)
                    continue
                deadline.interrupt_requested = True
                self._request_interrupt()
                # An interrupt lands at the next trace event — but a
                # deadlocked inferior never executes one. Classify the
                # stall now so a lock-cycle returns DEADLOCK_SUSPECTED
                # within ~1x the deadline instead of burning the grace.
                if self._classify_stall(before):
                    return
            remaining = deadline.grace_remaining()
            if remaining <= 0:
                if self._classify_stall(before):
                    return
                self.engine.stats.control_timeouts += 1
                raise ControlTimeout(
                    f"the inferior did not pause within {deadline.timeout}s "
                    "and could not be interrupted within the grace period "
                    "(it is probably blocked in native code); call "
                    "terminate() to release it"
                )
            self._condition.wait(timeout=remaining)
        if (
            deadline is not None
            and deadline.interrupt_requested
            and not self._finished
        ):
            self._emit_supervision_event(
                SupervisionEvent(
                    INFERIOR_INTERRUPTED,
                    f"control call exceeded its {deadline.timeout}s "
                    "deadline; the inferior was interrupted and is paused",
                    {"line": self.next_lineno},
                )
            )

    def _request_interrupt(self) -> None:
        """Ask the inferior to pause at its next trace event (async-safe).

        The flag is thread-agnostic: whichever inferior thread next
        executes a traced event delivers the interrupt pause, so deadlines
        work even when the hot thread is a worker.
        """
        self._interrupt_requested = True
        self._retrace_live_frames()

    def _retrace_live_frames(self) -> None:
        """Re-enable per-line tracing on every live inferior frame.

        Frames the engine's fast path left untraced (local trace function
        dropped) would otherwise never deliver the interrupt or kill flag;
        installing ``f_trace`` from the tool thread re-arms them. All
        registered inferior threads are covered (``sys._current_frames``),
        so an async pause lands even when a worker thread is the only one
        still running.
        """
        idents = set(self._thread_ids)
        thread = self._thread
        if thread is not None and thread.ident is not None:
            idents.add(thread.ident)
        if not idents:
            return
        live = sys._current_frames()
        for ident in idents:
            frame = live.get(ident)
            while frame is not None:
                if self._is_inferior_frame(frame):
                    frame.f_trace = self._trace
                    frame.f_trace_lines = True
                frame = frame.f_back

    # ------------------------------------------------------------------
    # Stall classification (deadline expired, interrupt cannot land)
    # ------------------------------------------------------------------

    def _sampling_targets(self):
        """``(index, name, ident)`` triples for the stall detector."""
        targets = []
        for record in self._thread_records.values():
            if record.thread.is_alive():
                targets.append((record.index, record.name, record.ident))
        return targets

    def _classify_stall(self, before: int) -> bool:
        """Sample all inferior threads; deliver a DEADLOCK_SUSPECTED pause
        if every one of them is blocked on synchronization primitives.

        Runs in the tool thread, holding ``self._condition``; the
        detector's confirmation delay is served by ``condition.wait`` so a
        late-landing interrupt can still deliver its pause — in which case
        the verdict is abandoned (``pause_count`` moved on).
        """
        targets = self._sampling_targets()
        if not targets:
            return False
        verdict = self._stall_detector.confirmed_deadlock(
            targets,
            sleep=lambda seconds: self._condition.wait(timeout=seconds),
        )
        if verdict is None:
            return False
        if self._pause_count != before or self._finished:
            return False  # a real pause won the race during sampling
        self._synthesize_deadlock_pause(verdict)
        return True

    def _synthesize_deadlock_pause(self, verdict) -> None:
        """Deliver a tool-side pause for a deadlocked inferior.

        The blocked threads cannot run the handshake (they are stuck in
        C-level lock waits), so the pause is synthesized from the sampled
        frames: inspection serves the chosen thread's stack, and the
        lock-wait graph rides in ``pause_reason.details``. The inferior
        stays deadlocked — every further control call re-reports it —
        which is the crash-only contract: paused or terminated, never
        hung.
        """
        chosen = verdict.cycle[0] if verdict.cycle else verdict.samples[0].thread
        sample = next(
            (s for s in verdict.samples if s.thread == chosen),
            verdict.samples[0],
        )
        record = self._thread_records.get(sample.thread)
        frame = None
        if record is not None:
            frame = sys._current_frames().get(record.ident)
        while frame is not None and not self._is_inferior_frame(frame):
            frame = frame.f_back
        details = verdict.to_details()
        reason = PauseReason(
            type=PauseReasonType.DEADLOCK_SUSPECTED,
            line=sample.line,
            thread=sample.thread,
            thread_name=sample.name,
            details=details,
        )
        self.engine.note_event("stall")
        self.engine.record_pause(PauseReasonType.DEADLOCK_SUSPECTED)
        self.last_lineno = self.next_lineno
        self.next_lineno = sample.line
        self._pause_reason = reason
        if frame is not None:
            self._paused_py_frame = frame
        self._paused_event = "stall"
        self._paused_thread_index = sample.thread
        self._stall_blocked = {s.thread for s in verdict.samples}
        # The inferior cannot run the handshake, so the tool performs the
        # pause's side of the stdout swap itself (idempotent; the blocked
        # threads are not printing).
        self._swap_stdout_out()
        self._pause_count += 1
        self._emit_supervision_event(
            SupervisionEvent(
                INFERIOR_DEADLOCK_SUSPECTED,
                f"all {len(verdict.samples)} inferior thread(s) are blocked "
                "on locks; reporting a suspected deadlock",
                {"graph": details},
            )
        )

    # ------------------------------------------------------------------
    # Inferior thread
    # ------------------------------------------------------------------

    def _run_inferior(self) -> None:
        saved_argv = sys.argv
        sys.argv = [self._program_abspath] + self._program_args
        self._register_thread(threading.get_ident(), name="main")
        self._swap_stdout_in()
        exit_code = 0
        try:
            self._arm_instrumentation()
            try:
                exec(self._code, self._globals)
                # The module returned; like a real process, the "program"
                # is over only when its non-daemon threads are. Workers
                # can still hit control points and pause during the join.
                self._join_workers()
            finally:
                self._disarm_instrumentation()
        except _KillInferior:
            exit_code = -9
        except SystemExit as error:
            code = error.code
            if code is None:
                exit_code = 0
            elif isinstance(code, int):
                exit_code = code
            else:
                exit_code = 1
        except BaseException as error:  # inferior bug: report, do not crash tool
            exit_code = 1
            self._inferior_exception = error
        finally:
            self._swap_stdout_out()
            sys.argv = saved_argv
            with self._condition:
                self.engine.stats.output_chars_dropped = self._output.dropped
                self._exit_code = exit_code
                self._finished = True
                self._pause_reason = PauseReason(type=PauseReasonType.EXIT)
                self.engine.note_event("exit")
                self.engine.record_pause(PauseReasonType.EXIT)
                self._paused_py_frame = None
                self._condition.notify_all()

    def _arm_instrumentation(self) -> None:
        """Install the tracing substrate (runs in the inferior thread).

        The settrace backend registers the per-thread trace function plus
        the profile-hook tamper guard (settrace is per-thread state only
        this thread can read; see :meth:`_profile`). ``threading.settrace``
        additionally seeds the same trace function into every thread the
        inferior spawns, which is how worker threads come under control.
        The ``python-mon`` subclass replaces this with per-code-object
        ``sys.monitoring`` event sets, which are interpreter-global and
        armed before the inferior thread even starts.
        """
        self._saved_threading_trace = threading.gettrace()
        threading.settrace(self._trace)
        sys.settrace(self._trace)
        sys.setprofile(self._profile)
        self._guard_active = True

    def _disarm_instrumentation(self) -> None:
        """Remove the tracing substrate (inferior thread, on its way out)."""
        self._guard_active = False
        sys.setprofile(None)
        sys.settrace(None)
        threading.settrace(self._saved_threading_trace)
        self._saved_threading_trace = None

    # ------------------------------------------------------------------
    # Thread registry
    # ------------------------------------------------------------------

    def _register_thread(self, ident: int, name: Optional[str] = None) -> int:
        """Register the calling thread as an inferior thread (idempotent).

        Returns the thread's stable index; 0 is always the thread that
        executes the program's module code.
        """
        with self._condition:
            existing = self._thread_ids.get(ident)
            if existing is not None:
                record = self._thread_records.get(existing)
                if (
                    record is None
                    or record.thread is threading.current_thread()
                ):
                    return existing
                # The OS reused a finished worker's ident for this new
                # thread. Fall through: the new thread gets a fresh
                # stable index and takes over the ident mapping; the dead
                # record keeps its index and reports as finished.
            index = self._next_thread_index
            self._next_thread_index += 1
            thread = threading.current_thread()
            record = _InferiorThreadRecord(
                index=index,
                ident=ident,
                name=name if name is not None else thread.name,
                thread=thread,
            )
            self._thread_ids[ident] = index
            self._thread_records[index] = record
            return index

    def _thread_index(self) -> int:
        """Stable index of the calling inferior thread (0 if unknown)."""
        index = self._thread_ids.get(threading.get_ident())
        return 0 if index is None else index

    def _ensure_thread_registered(self) -> None:
        """Register the calling thread, robust to OS ident reuse.

        Idents are recycled as soon as a thread exits, so a fresh worker
        can come up wearing the ident of a finished one; a plain
        ident-in-dict test would silently alias it onto the dead thread's
        stable index (and a ``thread=``-scoped control point for the new
        index would never fire). Once any worker has registered, verify
        the mapped record still belongs to the calling thread object.
        """
        ident = threading.get_ident()
        index = self._thread_ids.get(ident)
        if index is None:
            self._register_thread(ident)
            return
        if self._next_thread_index > 1:
            record = self._thread_records.get(index)
            if (
                record is not None
                and record.thread is not threading.current_thread()
            ):
                self._register_thread(ident)

    def _join_workers(self) -> None:
        """Wait for the inferior's non-daemon worker threads to finish.

        Runs in the main inferior thread after the module code returned,
        mirroring process semantics. The short join slices keep the kill
        flag responsive — ``terminate`` must not wait behind a stuck
        worker here.
        """
        while not self._killed:
            pending = [
                record.thread
                for record in list(self._thread_records.values())
                if record.index != 0
                and not record.thread.daemon
                and record.thread.is_alive()
            ]
            if not pending:
                return
            pending[0].join(timeout=0.05)

    def _swap_stdout_in(self) -> None:
        if self._capture_output:
            self._saved_stdout = sys.stdout
            sys.stdout = self._output

    def _swap_stdout_out(self) -> None:
        if self._capture_output and self._saved_stdout is not None:
            sys.stdout = self._saved_stdout
            self._saved_stdout = None

    # ------------------------------------------------------------------
    # The trace function: every pause decision happens here
    # ------------------------------------------------------------------

    def _trace(self, frame, event: str, arg: Any):
        if self._killed or self._finished:
            # Kill every registered inferior thread; after the program
            # "process" exited (module done, non-daemon workers joined),
            # straggling daemon workers die the same way. Other threads
            # that inherited the trace via threading.settrace are simply
            # untraced.
            if threading.get_ident() in self._thread_ids:
                raise _KillInferior()
            return None
        if not self._is_inferior_frame(frame):
            return None  # do not trace library code called by the inferior
        if self._pause_active:
            # All-stop: another thread owns the pause; park here until it
            # is released (the owner thread itself is inside _pause, never
            # here).
            self._park(frame)
        if self._interrupt_requested:
            self._deliver_interrupt(frame)
            return self._trace
        if event == "call":
            self._ensure_thread_registered()
            self._handle_call(frame)
            # The engine's per-file map knows whether anything could pause
            # inside this frame; if not, drop its local trace function and
            # skip every line/return event of the whole frame.
            if self.engine.can_skip_frame(
                frame.f_code.co_filename, frame.f_code.co_name
            ):
                return None
        elif event == "line":
            self._handle_line(frame)
        elif event == "return":
            self._handle_return(frame, arg)
        return self._trace

    def _park(self, frame) -> None:
        """Block the calling thread while another thread's pause is live."""
        ident = threading.get_ident()
        with self._condition:
            while self._pause_active and not self._killed:
                if ident == self._paused_owner_ident:
                    break  # defensive: the owner never parks on itself
                self._parked_idents.add(ident)
                try:
                    self._condition.wait()
                finally:
                    self._parked_idents.discard(ident)
            if self._killed:
                raise _KillInferior()

    def _profile(self, frame, event: str, arg: Any) -> None:
        """Detect and undo ``sys.settrace`` tampering by the inferior.

        ``sys.settrace`` is per-thread state: only the inferior thread can
        read it back, so the guard must run *in* that thread. The profile
        hook fires on every call/return (including C calls such as
        ``sys.settrace(None)`` itself), which makes it the earliest
        in-thread point after a tampering where we can re-arm. A hostile
        inferior can still clear the profile hook too — in-process
        hardening is best-effort; the ``python-subproc`` backend is the
        real containment boundary.
        """
        if not self._guard_active or self._killed:
            return
        if sys.gettrace() is not self._trace:
            self.engine.stats.settrace_tamperings += 1
            sys.settrace(self._trace)
            # Frames that lost their local trace function while the global
            # hook was off must be re-armed explicitly.
            self._retrace_live_frames()

    def _deliver_interrupt(self, frame) -> None:
        """Pause here because the supervisor requested an async interrupt."""
        self._interrupt_requested = False
        self.engine.note_event("interrupt")
        self.engine.stats.interrupts += 1
        self.last_lineno = self.next_lineno
        self.next_lineno = frame.f_lineno
        self._pause(
            frame,
            "interrupt",
            PauseReason(type=PauseReasonType.INTERRUPT, line=frame.f_lineno),
        )

    def _is_inferior_frame(self, frame) -> bool:
        return frame.f_code.co_filename == self._program_abspath

    def _frame_depth(self, frame) -> int:
        depth = -1
        current = frame
        while current is not None:
            if self._is_inferior_frame(current):
                depth += 1
            current = current.f_back
        return depth

    def _current_depth(self) -> int:
        if self._paused_py_frame is None:
            return 0
        return self._frame_depth(self._paused_py_frame)

    def _handle_call(self, frame) -> None:
        engine = self.engine
        engine.refresh()
        engine.note_event("call")
        function = frame.f_code.co_name
        if function == "<module>":
            return
        if not engine.may_match_function(function):
            return
        depth = self._frame_depth(frame)
        thread = self._thread_index()
        if engine.match_function_breakpoint(function, depth, thread) is not None:
            self._pause(
                frame,
                "call",
                PauseReason(
                    type=PauseReasonType.BREAKPOINT,
                    function=function,
                    line=frame.f_lineno,
                ),
            )
            return
        if engine.match_tracked(function, depth, thread) is not None:
            self._pause(
                frame,
                "call",
                PauseReason(
                    type=PauseReasonType.CALL,
                    function=function,
                    line=frame.f_lineno,
                ),
            )

    def _handle_line(self, frame) -> None:
        engine = self.engine
        engine.refresh()
        engine.note_event("line")
        line = frame.f_lineno
        self.last_lineno = self.next_lineno
        self.next_lineno = line

        # Depth is O(stack) to compute, so it is resolved lazily: only once
        # something (watch, candidate breakpoint, armed stepping) needs it.
        # Same for the thread index (one dict hit) — the no-hit fast path
        # touches neither.
        depth = -1
        thread = -1
        if engine.has_watchpoints:
            depth = self._frame_depth(frame)
            thread = self._thread_index()
            hit = engine.evaluate_watches(
                depth,
                lambda function, name: self._render_watched(
                    frame, function, name
                ),
                thread,
            )
            if hit is not None:
                watchpoint, old, new = hit
                self._pause(
                    frame,
                    "line",
                    PauseReason(
                        type=PauseReasonType.WATCH,
                        variable=watchpoint.variable_id,
                        old_value=old,
                        new_value=new,
                        line=line,
                    ),
                )
                return

        if engine.may_match_line(line):
            if depth < 0:
                depth = self._frame_depth(frame)
            if thread < 0:
                thread = self._thread_index()
            if (
                engine.match_line(frame.f_code.co_filename, line, depth, thread)
                is not None
            ):
                self._pause(
                    frame,
                    "line",
                    PauseReason(type=PauseReasonType.BREAKPOINT, line=line),
                )
                return

        if engine.mode != "resume":
            if depth < 0:
                depth = self._frame_depth(frame)
            if thread < 0:
                thread = self._thread_index()
            if engine.should_step_pause(depth, thread):
                self._pause(
                    frame,
                    "line",
                    PauseReason(type=PauseReasonType.STEP, line=line),
                )

    def _handle_return(self, frame, return_value: Any) -> None:
        engine = self.engine
        engine.refresh()
        engine.note_event("return")
        function = frame.f_code.co_name
        if function == "<module>":
            return
        if not engine.may_match_function(function):
            return
        depth = self._frame_depth(frame)
        if engine.match_tracked(function, depth, self._thread_index()) is not None:
            modeled = self._snapshotter().snapshot(return_value)
            self._pause(
                frame,
                "return",
                PauseReason(
                    type=PauseReasonType.RETURN,
                    function=function,
                    return_value=modeled,
                    line=frame.f_lineno,
                ),
            )

    # ------------------------------------------------------------------
    # Watchpoints: value-change detection before every line
    # ------------------------------------------------------------------

    def _render_watched(
        self, frame, function: Optional[str], name: str
    ) -> Optional[str]:
        """Engine fetch callback: current rendered value, ``None`` = missing."""
        current = self._find_watched(frame, function, name)
        return None if current is _MISSING else repr(current)

    def _find_watched(self, frame, function: Optional[str], name: str) -> Any:
        base_name, path = _split_watch_path(name)
        if function is not None:
            holder = _MISSING
            current = frame
            while current is not None:
                if (
                    self._is_inferior_frame(current)
                    and current.f_code.co_name == function
                ):
                    holder = current.f_locals.get(base_name, _MISSING)
                    break
                current = current.f_back
        elif base_name in frame.f_locals:
            holder = frame.f_locals[base_name]
        else:
            holder = self._globals.get(base_name, _MISSING)
        return _follow_watch_path(holder, path)

    # ------------------------------------------------------------------
    # Pause handshake (runs in the inferior thread)
    # ------------------------------------------------------------------

    def _pause(self, frame, event: str, reason: PauseReason) -> None:
        ident = threading.get_ident()
        index = self._thread_ids.get(ident, 0)
        record = self._thread_records.get(index)
        if reason.thread is None:
            reason.thread = index
            reason.thread_name = record.name if record is not None else None
        self.engine.record_pause(reason.type)
        self.engine.stats.output_chars_dropped = self._output.dropped
        with self._condition:
            # All-stop, serialized delivery: if another thread's pause is
            # live, queue behind it — when the tool resumes that pause,
            # the first queued thread takes over the handshake and its
            # control point becomes the *next* control call's pause
            # (GDB-style pending stops).
            while self._pause_active and not self._killed and not self._finished:
                self._parked_idents.add(ident)
                try:
                    self._condition.wait()
                finally:
                    self._parked_idents.discard(ident)
            if self._killed or self._finished:
                raise _KillInferior()
            self._pause_active = True
            self._paused_owner_ident = ident
            # The tool owns the console while a pause is live, so the
            # capture ring is swapped out here — strictly after winning the
            # handshake (a queued thread toggling would unbalance the swap)
            # and swapped back in before release, whichever thread pauses.
            # Sibling prints in the short window before they park go to the
            # real stdout; tool-side prints never land in the capture.
            self._swap_stdout_out()
            self._pause_reason = reason
            self._paused_py_frame = frame
            self._paused_event = event
            self._paused_thread_index = index
            self._stall_blocked.clear()
            if len(self._thread_ids) > 1:
                # Make sibling threads park promptly: frames the fast path
                # left untraced only reach _trace at call events, so re-arm
                # per-line tracing everywhere while this pause is live.
                self._retrace_live_frames()
            self._pause_count += 1
            self._condition.notify_all()
            try:
                while self._command is None:
                    self._condition.wait()
                command = self._command
                self._command = None
            finally:
                self._swap_stdout_in()
                self._pause_active = False
                self._paused_owner_ident = None
                self._condition.notify_all()
        if command == "kill" or self._killed:
            raise _KillInferior()

    # ------------------------------------------------------------------
    # Inspection hooks
    # ------------------------------------------------------------------

    def _snapshotter(self) -> Snapshotter:
        """A fresh per-pause snapshotter honoring this tracker's bounds."""
        return Snapshotter(
            max_depth=self._snapshot_depth, limits=self._capture_limits
        )

    def _get_current_frame(self) -> Frame:
        chain = build_frame_chain(
            self._paused_py_frame, self._is_inferior_frame, self._snapshotter()
        )
        self._tag_thread(chain, self._paused_thread_index)
        return chain

    @staticmethod
    def _tag_thread(chain: Optional[Frame], index: int) -> None:
        """Stamp a model frame chain with its inferior thread index."""
        while chain is not None:
            chain.thread = index
            chain = chain.parent

    def _get_global_variables(self) -> Dict[str, Variable]:
        return build_globals(self._globals, self._snapshotter())

    def _get_position(self) -> Tuple[str, Optional[int]]:
        frame = self._paused_py_frame
        return frame.f_code.co_filename, frame.f_lineno

    # ------------------------------------------------------------------
    # Python-specific extras
    # ------------------------------------------------------------------

    def get_threads(self) -> List[ThreadInfo]:
        """All registered inferior threads (live registry, stable indexes).

        States: the thread owning the current pause is ``"paused"``;
        threads stopped by the all-stop barrier are ``"parked"``; threads
        whose ``threading.Thread`` has exited are ``"finished"``; the rest
        are ``"running"``. Position fields are best-effort samples of each
        thread's innermost inferior frame.
        """
        with self._condition:
            records = sorted(self._thread_records.values(), key=lambda r: r.index)
            parked = set(self._parked_idents)
            paused_index = (
                self._paused_thread_index if self._pause_count else None
            )
            finished = self._finished
        if not records:
            return super().get_threads()
        live = sys._current_frames()
        infos: List[ThreadInfo] = []
        for record in records:
            alive = record.thread.is_alive() and not (
                finished and record.index == 0
            )
            if not alive:
                state = THREAD_FINISHED
            elif record.index == paused_index and self._exit_code is None:
                state = THREAD_PAUSED
            elif record.ident in parked:
                state = THREAD_PARKED
            elif record.index in self._stall_blocked:
                state = THREAD_BLOCKED
            else:
                state = THREAD_RUNNING
            function = line = filename = None
            if record.index == paused_index:
                frame = self._paused_py_frame
            elif alive:
                # Dead records are never sampled: their ident may have
                # been recycled to a newer thread, whose frame this is.
                frame = live.get(record.ident)
            else:
                frame = None
            while frame is not None:
                if self._is_inferior_frame(frame):
                    function = frame.f_code.co_name
                    line = frame.f_lineno
                    filename = frame.f_code.co_filename
                    break
                frame = frame.f_back
            infos.append(
                ThreadInfo(
                    id=record.index,
                    name=record.name,
                    state=state,
                    function=function,
                    line=line,
                    filename=filename,
                    daemon=record.thread.daemon,
                )
            )
        return infos

    def get_thread_frames(self, thread: int) -> List[Frame]:
        """Frames of one inferior thread, innermost first.

        For the thread owning the pause this is exactly ``get_frames``;
        for the others the stack is sampled via ``sys._current_frames``
        (stable under all-stop, best-effort for a running thread).
        """
        self._require_paused()
        if thread == self._paused_thread_index:
            return self.get_frames()
        record = self._thread_records.get(thread)
        if record is None:
            from repro.core.errors import TrackerError

            raise TrackerError(f"no inferior thread {thread}")
        if not record.thread.is_alive():
            return []  # the ident may be recycled; never sample it
        py_frame = sys._current_frames().get(record.ident)
        if py_frame is None:
            return []
        chain = build_frame_chain(
            py_frame, self._is_inferior_frame, self._snapshotter()
        )
        self._tag_thread(chain, thread)
        return chain.stack() if chain is not None else []

    def get_tasks(self) -> List[TaskInfo]:
        """The inferior's asyncio tasks, with await chains.

        Enumerates every task of the process's event loops and keeps those
        whose coroutine stack touches the inferior program (the tool's own
        loops, if any, are filtered out). The await chain is the coroutine
        qualnames from the task's outermost coroutine down to its
        suspension point.
        """
        import asyncio

        try:
            all_tasks = list(asyncio.tasks._all_tasks)
        except AttributeError:  # pragma: no cover - interpreter variance
            return []
        infos: List[TaskInfo] = []
        for task in all_tasks:
            try:
                coro = task.get_coro()
            except Exception:
                continue
            chain: List[str] = []
            line: Optional[int] = None
            inferior = False
            node = coro
            while node is not None:
                code = getattr(node, "cr_code", None) or getattr(
                    node, "gi_code", None
                )
                if code is None:
                    break
                chain.append(code.co_qualname if hasattr(code, "co_qualname")
                             else code.co_name)
                if code.co_filename == self._program_abspath:
                    inferior = True
                frame = getattr(node, "cr_frame", None) or getattr(
                    node, "gi_frame", None
                )
                if frame is not None:
                    line = frame.f_lineno
                node = getattr(node, "cr_await", None) or getattr(
                    node, "gi_yieldfrom", None
                )
            if not inferior:
                continue
            if task.cancelled():
                state = "cancelled"
            elif task.done():
                state = "done"
            else:
                state = "pending"
            infos.append(
                TaskInfo(
                    name=task.get_name(),
                    state=state,
                    coroutine=chain[0] if chain else "",
                    awaiting=chain,
                    line=line,
                )
            )
        infos.sort(key=lambda info: info.name)
        return infos

    def get_output(self) -> str:
        """Everything printed by the inferior so far (``capture_output``)."""
        replayed = self._replay_snapshot()
        if replayed is not None:
            return replayed.stdout
        return self._output.getvalue()

    def get_inferior_exception(self) -> Optional[BaseException]:
        """The unhandled exception that killed the inferior, if any."""
        return self._inferior_exception

    def raise_if_crashed(self) -> None:
        """Raise :class:`InferiorCrashError` if the inferior died on a bug."""
        if self._inferior_exception is not None:
            raise InferiorCrashError(
                f"inferior raised {self._inferior_exception!r}",
                self._inferior_exception,
            )
