"""The Python tracker: ``sys.settrace``-based control of Python inferiors.

Implementation notes (Section II-C2 of the paper):

- The inferior runs **in a dedicated thread of the tool's interpreter** so
  that control calls can block the tool thread until the inferior pauses
  (Fig. 5 of the paper). The handshake is a condition variable plus a pause
  generation counter.
- The tracker registers a trace function with ``sys.settrace`` in the
  inferior thread. The interpreter calls it before every source line and at
  function call/return boundaries; all pause decisions are delegated to the
  shared :class:`repro.core.engine.ControlPointEngine`, whose compiled
  indexes make the common no-hit case one ``frozenset`` lookup instead of a
  scan over every installed breakpoint.
- Watchpoints are implemented by checking, before the execution of every
  line, whether the value of any watched variable has changed. This is why
  ``resume`` still single-steps internally — the paper notes that this slows
  execution down a lot but is acceptable in the pedagogical context
  (quantified in ``benchmarks/test_overhead.py``). When no control point
  can possibly fire in a frame, the engine lets the trace function return
  ``None`` on the frame's call event, disabling per-line tracing for the
  whole frame.
"""

from __future__ import annotations

import os
import sys
import threading
import warnings
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import (
    ControlTimeout,
    InferiorCrashError,
    ProgramLoadError,
)
from repro.core.pause import PauseReason, PauseReasonType
from repro.core.ringbuffer import DEFAULT_OUTPUT_LIMIT, RingTextBuffer
from repro.core.state import Frame, Variable
from repro.core.supervision import (
    INFERIOR_INTERRUPTED,
    INFERIOR_WEDGED,
    SupervisionEvent,
    format_thread_stack,
)
from repro.core.tracker import Tracker
from repro.pytracker.introspect import (
    CaptureLimits,
    Snapshotter,
    build_frame_chain,
    build_globals,
)

_MISSING = object()


def _split_watch_path(name: str):
    """Split ``"obj.attr[0].x"`` into ``("obj", [".attr", "[0]", ".x"])``.

    Watch identifiers may address *inside* an object: attribute steps with
    ``.name`` and element steps with ``[index]`` (int or quoted-string
    keys). A plain name has an empty path.
    """
    import re

    match = re.match(r"^[A-Za-z_][A-Za-z0-9_]*", name)
    if match is None:
        return name, []
    base = match.group(0)
    rest = name[len(base):]
    steps = re.findall(r"\.[A-Za-z_][A-Za-z0-9_]*|\[[^]]*\]", rest)
    return base, steps


def _follow_watch_path(holder, steps):
    """Walk attribute/element steps; any failure means 'not watchable now'."""
    value = holder
    for step in steps:
        if value is _MISSING:
            return _MISSING
        try:
            if step.startswith("."):
                value = getattr(value, step[1:])
            else:
                key_text = step[1:-1].strip()
                if (
                    len(key_text) >= 2
                    and key_text[0] in "'\""
                    and key_text[-1] == key_text[0]
                ):
                    key = key_text[1:-1]
                else:
                    key = int(key_text)
                value = value[key]
        except (AttributeError, LookupError, ValueError, TypeError):
            return _MISSING
    return value


class _KillInferior(BaseException):
    """Raised inside the inferior thread to unwind it on ``terminate``.

    Derives from ``BaseException`` so inferior ``except Exception`` handlers
    cannot swallow it.
    """


class PythonTracker(Tracker):
    """Tracker for Python inferiors, built directly on ``sys.settrace``.

    Args:
        capture_output: when true, everything the inferior prints is
            collected (readable via :meth:`get_output`) instead of going to
            the tool's stdout. The swap is only in effect while the inferior
            thread is actually executing, so tool prints are unaffected.
        snapshot_depth: optional cap on the depth of object-graph snapshots
            taken during inspection (``None`` = unlimited, cycle-safe).
        terminate_grace: seconds :meth:`terminate` waits for the inferior
            thread to unwind before abandoning it (tracker goes
            ``"invalid"``, the wedge is warned about and counted).
        capture_limits: hard bounds on how much of the inferior's object
            graph a single pause captures
            (:class:`repro.pytracker.introspect.CaptureLimits`; defaults
            to the module defaults). Everything a bound cuts is marked
            ``Value.truncated``.
        output_limit: maximum characters of inferior output retained by
            :meth:`get_output` (``None`` = unbounded). Evicted characters
            are counted in ``TrackerStats.output_chars_dropped``.
    """

    backend = "python"

    def __init__(
        self,
        capture_output: bool = False,
        snapshot_depth: Optional[int] = None,
        terminate_grace: float = 5.0,
        capture_limits: Optional[CaptureLimits] = None,
        output_limit: Optional[int] = DEFAULT_OUTPUT_LIMIT,
    ):
        super().__init__()
        self._capture_output = capture_output
        self._snapshot_depth = snapshot_depth
        self._capture_limits = capture_limits
        self._terminate_grace = terminate_grace
        self._interrupt_requested = False
        self._output = RingTextBuffer(output_limit)
        self._guard_active = False
        self._source_code = None
        self._code = None
        self._globals: Dict[str, Any] = {}
        self._thread: Optional[threading.Thread] = None
        self._condition = threading.Condition()
        self._pause_count = 0
        self._finished = False
        self._command: Optional[str] = None
        self._killed = False
        self._paused_py_frame = None
        self._paused_event: Optional[str] = None
        self._inferior_exception: Optional[BaseException] = None
        self._saved_stdout = None

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------

    def _load_program(self, path: str, args: List[str]) -> None:
        if not os.path.exists(path):
            raise ProgramLoadError(f"no such program: {path}")
        with open(path, "r", encoding="utf-8") as source:
            self._source_code = source.read()
        try:
            self._code = compile(self._source_code, os.path.abspath(path), "exec")
        except SyntaxError as error:
            raise ProgramLoadError(f"syntax error in {path}: {error}") from error
        self._program_abspath = os.path.abspath(path)

    def _start(self) -> None:
        self.engine.arm("step")  # pause before the first executable line
        self._globals = {
            "__name__": "__main__",
            "__file__": self._program_abspath,
            "__builtins__": __builtins__,
        }
        self._thread = threading.Thread(
            target=self._run_inferior, name="repro-inferior", daemon=True
        )
        self._thread.start()
        self._wait_for_pause()

    def _terminate(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            return
        with self._condition:
            self._killed = True
            self._command = "kill"
            self._condition.notify_all()
            # A free-running inferior whose frames were untraced (the
            # engine's frame-skip fast path) would never see the kill via
            # line events; force per-line tracing back on so it does.
            self._retrace_live_frames()
        self._thread.join(timeout=self._terminate_grace)
        if self._thread.is_alive():
            # The inferior is stuck somewhere the tracer cannot reach
            # (typically blocking native code). Abandon the daemon thread,
            # but loudly: mark the tracker invalid, count the wedge, and
            # report where the inferior is stuck.
            self.health = "invalid"
            self.engine.stats.wedged_inferiors += 1
            stack = format_thread_stack(self._thread)
            message = (
                "the inferior thread did not exit within "
                f"{self._terminate_grace:.1f}s; abandoning it and marking "
                "the tracker invalid"
            )
            self._emit_supervision_event(
                SupervisionEvent(INFERIOR_WEDGED, message, {"stack": stack})
            )
            warnings.warn(
                f"{message}; the inferior is currently at:\n{stack}",
                RuntimeWarning,
                stacklevel=4,
            )

    # ------------------------------------------------------------------
    # Control hooks: set the step mode, wake the inferior, wait for a pause
    # ------------------------------------------------------------------

    def _resume(self) -> None:
        self._issue("resume")

    def _next(self) -> None:
        self._issue("next", self._current_depth())

    def _step(self) -> None:
        self._issue("step")

    def _finish(self) -> None:
        self._issue("finish", self._current_depth())

    def _issue(self, mode: str, depth: int = 0) -> None:
        with self._condition:
            if self._finished:
                return
            # Arm the engine's step machine while the inferior is parked in
            # the pause handshake, so the write is race-free.
            self.engine.arm(mode, depth)
            before = self._pause_count
            self._command = "go"
            self._condition.notify_all()
            self._await_pause(before)

    def _wait_for_pause(self) -> None:
        with self._condition:
            self._await_pause(0)

    def _await_pause(self, before: int) -> None:
        """Wait (holding the condition) until a pause or termination.

        Honors the active control-call deadline: on expiry the inferior is
        interrupted (it then pauses with ``PauseReasonType.INTERRUPT``);
        if even the interrupt cannot land within the grace period —
        the inferior is blocked in native code the tracer never
        re-enters — the call gives up with :class:`ControlTimeout`.
        """
        deadline = self._control_deadline
        while self._pause_count == before and not self._finished:
            if deadline is None:
                self._condition.wait()
                continue
            if not deadline.interrupt_requested:
                remaining = deadline.remaining()
                if remaining > 0:
                    self._condition.wait(timeout=remaining)
                    continue
                deadline.interrupt_requested = True
                self._request_interrupt()
            remaining = deadline.grace_remaining()
            if remaining <= 0:
                self.engine.stats.control_timeouts += 1
                raise ControlTimeout(
                    f"the inferior did not pause within {deadline.timeout}s "
                    "and could not be interrupted within the grace period "
                    "(it is probably blocked in native code); call "
                    "terminate() to release it"
                )
            self._condition.wait(timeout=remaining)
        if (
            deadline is not None
            and deadline.interrupt_requested
            and not self._finished
        ):
            self._emit_supervision_event(
                SupervisionEvent(
                    INFERIOR_INTERRUPTED,
                    f"control call exceeded its {deadline.timeout}s "
                    "deadline; the inferior was interrupted and is paused",
                    {"line": self.next_lineno},
                )
            )

    def _request_interrupt(self) -> None:
        """Ask the inferior to pause at its next trace event (async-safe)."""
        self._interrupt_requested = True
        self._retrace_live_frames()

    def _retrace_live_frames(self) -> None:
        """Re-enable per-line tracing on every live inferior frame.

        Frames the engine's fast path left untraced (local trace function
        dropped) would otherwise never deliver the interrupt or kill flag;
        installing ``f_trace`` from the tool thread re-arms them.
        """
        thread = self._thread
        if thread is None or thread.ident is None:
            return
        frame = sys._current_frames().get(thread.ident)
        while frame is not None:
            if self._is_inferior_frame(frame):
                frame.f_trace = self._trace
                frame.f_trace_lines = True
            frame = frame.f_back

    # ------------------------------------------------------------------
    # Inferior thread
    # ------------------------------------------------------------------

    def _run_inferior(self) -> None:
        saved_argv = sys.argv
        sys.argv = [self._program_abspath] + self._program_args
        self._swap_stdout_in()
        exit_code = 0
        try:
            self._arm_instrumentation()
            try:
                exec(self._code, self._globals)
            finally:
                self._disarm_instrumentation()
        except _KillInferior:
            exit_code = -9
        except SystemExit as error:
            code = error.code
            if code is None:
                exit_code = 0
            elif isinstance(code, int):
                exit_code = code
            else:
                exit_code = 1
        except BaseException as error:  # inferior bug: report, do not crash tool
            exit_code = 1
            self._inferior_exception = error
        finally:
            self._swap_stdout_out()
            sys.argv = saved_argv
            with self._condition:
                self.engine.stats.output_chars_dropped = self._output.dropped
                self._exit_code = exit_code
                self._finished = True
                self._pause_reason = PauseReason(type=PauseReasonType.EXIT)
                self.engine.note_event("exit")
                self.engine.record_pause(PauseReasonType.EXIT)
                self._paused_py_frame = None
                self._condition.notify_all()

    def _arm_instrumentation(self) -> None:
        """Install the tracing substrate (runs in the inferior thread).

        The settrace backend registers the per-thread trace function plus
        the profile-hook tamper guard (settrace is per-thread state only
        this thread can read; see :meth:`_profile`). The ``python-mon``
        subclass replaces this with per-code-object ``sys.monitoring``
        event sets, which are interpreter-global and armed before the
        inferior thread even starts.
        """
        sys.settrace(self._trace)
        sys.setprofile(self._profile)
        self._guard_active = True

    def _disarm_instrumentation(self) -> None:
        """Remove the tracing substrate (inferior thread, on its way out)."""
        self._guard_active = False
        sys.setprofile(None)
        sys.settrace(None)

    def _swap_stdout_in(self) -> None:
        if self._capture_output:
            self._saved_stdout = sys.stdout
            sys.stdout = self._output

    def _swap_stdout_out(self) -> None:
        if self._capture_output and self._saved_stdout is not None:
            sys.stdout = self._saved_stdout
            self._saved_stdout = None

    # ------------------------------------------------------------------
    # The trace function: every pause decision happens here
    # ------------------------------------------------------------------

    def _trace(self, frame, event: str, arg: Any):
        if self._killed:
            raise _KillInferior()
        if not self._is_inferior_frame(frame):
            return None  # do not trace library code called by the inferior
        if self._interrupt_requested:
            self._deliver_interrupt(frame)
            return self._trace
        if event == "call":
            self._handle_call(frame)
            # The engine's per-file map knows whether anything could pause
            # inside this frame; if not, drop its local trace function and
            # skip every line/return event of the whole frame.
            if self.engine.can_skip_frame(
                frame.f_code.co_filename, frame.f_code.co_name
            ):
                return None
        elif event == "line":
            self._handle_line(frame)
        elif event == "return":
            self._handle_return(frame, arg)
        return self._trace

    def _profile(self, frame, event: str, arg: Any) -> None:
        """Detect and undo ``sys.settrace`` tampering by the inferior.

        ``sys.settrace`` is per-thread state: only the inferior thread can
        read it back, so the guard must run *in* that thread. The profile
        hook fires on every call/return (including C calls such as
        ``sys.settrace(None)`` itself), which makes it the earliest
        in-thread point after a tampering where we can re-arm. A hostile
        inferior can still clear the profile hook too — in-process
        hardening is best-effort; the ``python-subproc`` backend is the
        real containment boundary.
        """
        if not self._guard_active or self._killed:
            return
        if sys.gettrace() is not self._trace:
            self.engine.stats.settrace_tamperings += 1
            sys.settrace(self._trace)
            # Frames that lost their local trace function while the global
            # hook was off must be re-armed explicitly.
            self._retrace_live_frames()

    def _deliver_interrupt(self, frame) -> None:
        """Pause here because the supervisor requested an async interrupt."""
        self._interrupt_requested = False
        self.engine.note_event("interrupt")
        self.engine.stats.interrupts += 1
        self.last_lineno = self.next_lineno
        self.next_lineno = frame.f_lineno
        self._pause(
            frame,
            "interrupt",
            PauseReason(type=PauseReasonType.INTERRUPT, line=frame.f_lineno),
        )

    def _is_inferior_frame(self, frame) -> bool:
        return frame.f_code.co_filename == self._program_abspath

    def _frame_depth(self, frame) -> int:
        depth = -1
        current = frame
        while current is not None:
            if self._is_inferior_frame(current):
                depth += 1
            current = current.f_back
        return depth

    def _current_depth(self) -> int:
        if self._paused_py_frame is None:
            return 0
        return self._frame_depth(self._paused_py_frame)

    def _handle_call(self, frame) -> None:
        engine = self.engine
        engine.refresh()
        engine.note_event("call")
        function = frame.f_code.co_name
        if function == "<module>":
            return
        if not engine.may_match_function(function):
            return
        depth = self._frame_depth(frame)
        if engine.match_function_breakpoint(function, depth) is not None:
            self._pause(
                frame,
                "call",
                PauseReason(
                    type=PauseReasonType.BREAKPOINT,
                    function=function,
                    line=frame.f_lineno,
                ),
            )
            return
        if engine.match_tracked(function, depth) is not None:
            self._pause(
                frame,
                "call",
                PauseReason(
                    type=PauseReasonType.CALL,
                    function=function,
                    line=frame.f_lineno,
                ),
            )

    def _handle_line(self, frame) -> None:
        engine = self.engine
        engine.refresh()
        engine.note_event("line")
        line = frame.f_lineno
        self.last_lineno = self.next_lineno
        self.next_lineno = line

        # Depth is O(stack) to compute, so it is resolved lazily: only once
        # something (watch, candidate breakpoint, armed stepping) needs it.
        depth = -1
        if engine.has_watchpoints:
            depth = self._frame_depth(frame)
            hit = engine.evaluate_watches(
                depth,
                lambda function, name: self._render_watched(
                    frame, function, name
                ),
            )
            if hit is not None:
                watchpoint, old, new = hit
                self._pause(
                    frame,
                    "line",
                    PauseReason(
                        type=PauseReasonType.WATCH,
                        variable=watchpoint.variable_id,
                        old_value=old,
                        new_value=new,
                        line=line,
                    ),
                )
                return

        if engine.may_match_line(line):
            if depth < 0:
                depth = self._frame_depth(frame)
            if (
                engine.match_line(frame.f_code.co_filename, line, depth)
                is not None
            ):
                self._pause(
                    frame,
                    "line",
                    PauseReason(type=PauseReasonType.BREAKPOINT, line=line),
                )
                return

        if engine.mode != "resume":
            if depth < 0:
                depth = self._frame_depth(frame)
            if engine.should_step_pause(depth):
                self._pause(
                    frame,
                    "line",
                    PauseReason(type=PauseReasonType.STEP, line=line),
                )

    def _handle_return(self, frame, return_value: Any) -> None:
        engine = self.engine
        engine.refresh()
        engine.note_event("return")
        function = frame.f_code.co_name
        if function == "<module>":
            return
        if not engine.may_match_function(function):
            return
        depth = self._frame_depth(frame)
        if engine.match_tracked(function, depth) is not None:
            modeled = self._snapshotter().snapshot(return_value)
            self._pause(
                frame,
                "return",
                PauseReason(
                    type=PauseReasonType.RETURN,
                    function=function,
                    return_value=modeled,
                    line=frame.f_lineno,
                ),
            )

    # ------------------------------------------------------------------
    # Watchpoints: value-change detection before every line
    # ------------------------------------------------------------------

    def _render_watched(
        self, frame, function: Optional[str], name: str
    ) -> Optional[str]:
        """Engine fetch callback: current rendered value, ``None`` = missing."""
        current = self._find_watched(frame, function, name)
        return None if current is _MISSING else repr(current)

    def _find_watched(self, frame, function: Optional[str], name: str) -> Any:
        base_name, path = _split_watch_path(name)
        if function is not None:
            holder = _MISSING
            current = frame
            while current is not None:
                if (
                    self._is_inferior_frame(current)
                    and current.f_code.co_name == function
                ):
                    holder = current.f_locals.get(base_name, _MISSING)
                    break
                current = current.f_back
        elif base_name in frame.f_locals:
            holder = frame.f_locals[base_name]
        else:
            holder = self._globals.get(base_name, _MISSING)
        return _follow_watch_path(holder, path)

    # ------------------------------------------------------------------
    # Pause handshake (runs in the inferior thread)
    # ------------------------------------------------------------------

    def _pause(self, frame, event: str, reason: PauseReason) -> None:
        self.engine.record_pause(reason.type)
        self.engine.stats.output_chars_dropped = self._output.dropped
        self._swap_stdout_out()
        with self._condition:
            self._pause_reason = reason
            self._paused_py_frame = frame
            self._paused_event = event
            self._pause_count += 1
            self._condition.notify_all()
            while self._command is None:
                self._condition.wait()
            command = self._command
            self._command = None
        self._swap_stdout_in()
        if command == "kill" or self._killed:
            raise _KillInferior()

    # ------------------------------------------------------------------
    # Inspection hooks
    # ------------------------------------------------------------------

    def _snapshotter(self) -> Snapshotter:
        """A fresh per-pause snapshotter honoring this tracker's bounds."""
        return Snapshotter(
            max_depth=self._snapshot_depth, limits=self._capture_limits
        )

    def _get_current_frame(self) -> Frame:
        return build_frame_chain(
            self._paused_py_frame, self._is_inferior_frame, self._snapshotter()
        )

    def _get_global_variables(self) -> Dict[str, Variable]:
        return build_globals(self._globals, self._snapshotter())

    def _get_position(self) -> Tuple[str, Optional[int]]:
        frame = self._paused_py_frame
        return frame.f_code.co_filename, frame.f_lineno

    # ------------------------------------------------------------------
    # Python-specific extras
    # ------------------------------------------------------------------

    def get_output(self) -> str:
        """Everything printed by the inferior so far (``capture_output``)."""
        replayed = self._replay_snapshot()
        if replayed is not None:
            return replayed.stdout
        return self._output.getvalue()

    def get_inferior_exception(self) -> Optional[BaseException]:
        """The unhandled exception that killed the inferior, if any."""
        return self._inferior_exception

    def raise_if_crashed(self) -> None:
        """Raise :class:`InferiorCrashError` if the inferior died on a bug."""
        if self._inferior_exception is not None:
            raise InferiorCrashError(
                f"inferior raised {self._inferior_exception!r}",
                self._inferior_exception,
            )
