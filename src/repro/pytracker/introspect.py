"""Convert live Python objects and frames into the abstract state model.

The Python tracker runs in the same interpreter as the inferior, so — as the
paper notes — inspection is the easy half: we walk real objects with ``id()``
providing addresses. Conceptually every Python variable is a ``REF`` value in
the stack pointing at an object in the heap, and that is exactly how this
module builds the model: :func:`build_variable` wraps the heap snapshot of
the object in a ``REF``.

Snapshots are *deep copies into the model*: mutating the inferior afterwards
does not change an already-taken snapshot. Shared objects are memoized by
identity so aliasing is visible (two variables referencing one list yield two
``REF`` values whose targets are the same ``Value`` instance), and reference
cycles are handled by filling container contents after memoization.
"""

from __future__ import annotations

import inspect
import types
from typing import Any, Dict, Optional

from repro.core.state import AbstractType, Frame, Location, Value, Variable

#: Global names never shown to tools (interpreter plumbing, not user state).
HIDDEN_GLOBALS = frozenset(
    {
        "__builtins__",
        "__cached__",
        "__doc__",
        "__file__",
        "__loader__",
        "__name__",
        "__package__",
        "__spec__",
        "__annotations__",
    }
)

_PRIMITIVE_TYPES = (int, float, str, bool, complex, bytes)


class PyVariable(Variable):
    """A :class:`Variable` that also carries the live Python object.

    This is the "extended API" of Section II-C2: tools that only target
    Python inferiors may read :attr:`raw_object` directly instead of walking
    the abstract model.
    """

    def __init__(self, name: str, value: Value, scope: str, raw_object: Any):
        super().__init__(name=name, value=value, scope=scope)
        self.raw_object = raw_object


class Snapshotter:
    """Builds :class:`Value` graphs from live objects, with memoization.

    One snapshotter is used per pause so that sharing within a single pause
    is preserved while distinct pauses get independent snapshots.

    Args:
        max_depth: cap on container nesting depth; deeper content is
            replaced by an ``INVALID``-free primitive summary. ``None``
            means unlimited (cycles are still safe).
    """

    def __init__(self, max_depth: Optional[int] = None):
        self.max_depth = max_depth
        self._memo: Dict[int, Value] = {}

    def snapshot(self, obj: Any, depth: int = 0) -> Value:
        """Return the heap :class:`Value` modeling ``obj``."""
        address = id(obj)
        if address in self._memo:
            return self._memo[address]
        if self.max_depth is not None and depth > self.max_depth:
            return Value(
                abstract_type=AbstractType.PRIMITIVE,
                content=_summarize(obj),
                location=Location.HEAP,
                address=address,
                language_type=type(obj).__name__,
            )
        if obj is None:
            return Value(
                abstract_type=AbstractType.NONE,
                content=None,
                location=Location.HEAP,
                address=address,
                language_type="NoneType",
            )
        if isinstance(obj, bool):
            # bool before int: isinstance(True, int) holds.
            return self._primitive(obj)
        if isinstance(obj, _PRIMITIVE_TYPES):
            return self._primitive(obj)
        if isinstance(obj, (list, tuple)):
            return self._sequence(obj, depth)
        if isinstance(obj, (set, frozenset)):
            return self._sequence(obj, depth, ordered=sorted(obj, key=repr))
        if isinstance(obj, dict):
            return self._mapping(obj, depth)
        if _is_function_like(obj):
            return Value(
                abstract_type=AbstractType.FUNCTION,
                content=_function_name(obj),
                location=Location.HEAP,
                address=address,
                language_type=type(obj).__name__,
            )
        return self._instance(obj, depth)

    # -- builders --------------------------------------------------------

    def _primitive(self, obj: Any) -> Value:
        content = obj
        if isinstance(obj, complex):
            # complex is not JSON-serializable; keep its repr, still PRIMITIVE.
            content = repr(obj)
        value = Value(
            abstract_type=AbstractType.PRIMITIVE,
            content=content,
            location=Location.HEAP,
            address=id(obj),
            language_type=type(obj).__name__,
        )
        self._memo[id(obj)] = value
        return value

    def _sequence(self, obj: Any, depth: int, ordered: Any = None) -> Value:
        value = Value(
            abstract_type=AbstractType.LIST,
            content=(),
            location=Location.HEAP,
            address=id(obj),
            language_type=type(obj).__name__,
        )
        # Memoize before recursing so self-referencing containers terminate.
        self._memo[id(obj)] = value
        elements = obj if ordered is None else ordered
        value.content = tuple(
            self.snapshot(element, depth + 1) for element in elements
        )
        return value

    def _mapping(self, obj: dict, depth: int) -> Value:
        value = Value(
            abstract_type=AbstractType.DICT,
            content={},
            location=Location.HEAP,
            address=id(obj),
            language_type=type(obj).__name__,
        )
        self._memo[id(obj)] = value
        content: Dict[Value, Value] = {}
        for key, item in obj.items():
            key_value = _Keyed.wrap(self.snapshot(key, depth + 1))
            content[key_value] = self.snapshot(item, depth + 1)
        value.content = content
        return value

    def _instance(self, obj: Any, depth: int) -> Value:
        value = Value(
            abstract_type=AbstractType.STRUCT,
            content={},
            location=Location.HEAP,
            address=id(obj),
            language_type=type(obj).__name__,
        )
        self._memo[id(obj)] = value
        fields: Dict[str, Value] = {}
        attributes = getattr(obj, "__dict__", None)
        if attributes is not None:
            for name, attr in attributes.items():
                fields[name] = self.snapshot(attr, depth + 1)
        elif hasattr(type(obj), "__slots__"):
            for name in type(obj).__slots__:
                if hasattr(obj, name):
                    fields[name] = self.snapshot(getattr(obj, name), depth + 1)
        else:
            fields["<repr>"] = Value(
                abstract_type=AbstractType.PRIMITIVE,
                content=_summarize(obj),
                location=Location.HEAP,
                address=id(obj),
                language_type=type(obj).__name__,
            )
        value.content = fields
        return value


class _Keyed(Value):
    """Structurally hashable Value for use as a DICT content key."""

    @classmethod
    def wrap(cls, value: Value) -> "_Keyed":
        wrapped = cls.__new__(cls)
        wrapped.abstract_type = value.abstract_type
        wrapped.content = value.content
        wrapped.location = value.location
        wrapped.address = value.address
        wrapped.language_type = value.language_type
        return wrapped

    def __hash__(self) -> int:
        return hash((self.abstract_type, self.render()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Value):
            return NotImplemented
        return (
            self.abstract_type is other.abstract_type
            and self.render() == other.render()
        )


def _is_function_like(obj: Any) -> bool:
    return isinstance(
        obj,
        (
            types.FunctionType,
            types.BuiltinFunctionType,
            types.MethodType,
            types.LambdaType,
            type,
        ),
    ) or inspect.isroutine(obj)


def _function_name(obj: Any) -> str:
    return getattr(obj, "__qualname__", None) or getattr(obj, "__name__", repr(obj))


def _summarize(obj: Any) -> str:
    text = repr(obj)
    if len(text) > 120:
        text = text[:117] + "..."
    return text


def build_variable(
    name: str,
    obj: Any,
    scope: str,
    snapshotter: Snapshotter,
    ref_location: Location = Location.STACK,
) -> PyVariable:
    """Model one Python variable: a stack ``REF`` to the heap snapshot.

    Args:
        name: variable name.
        obj: the live object the variable is bound to.
        scope: ``"local"``, ``"argument"`` or ``"global"``.
        snapshotter: the per-pause snapshotter (preserves sharing).
        ref_location: where the reference cell itself lives.
    """
    target = snapshotter.snapshot(obj)
    reference = Value(
        abstract_type=AbstractType.REF,
        content=target,
        location=ref_location,
        address=None,
        language_type=type(obj).__name__,
    )
    return PyVariable(name=name, value=reference, scope=scope, raw_object=obj)


def build_frame_chain(
    py_frame: Any,
    is_inferior_frame,
    snapshotter: Optional[Snapshotter] = None,
    max_depth: Optional[int] = None,
) -> Frame:
    """Build the model :class:`Frame` chain from a live Python frame.

    Args:
        py_frame: the innermost inferior ``types.FrameType``.
        is_inferior_frame: predicate selecting inferior frames (the chain
            stops at, and skips, tracker/runner frames).
        snapshotter: shared snapshotter; a fresh one is created if omitted.
        max_depth: snapshot depth cap, forwarded to a fresh snapshotter.

    Returns:
        The innermost :class:`Frame`, with ``parent`` links to the entry
        frame and ``depth`` 0 at the entry frame.
    """
    if snapshotter is None:
        snapshotter = Snapshotter(max_depth=max_depth)
    raw_frames = []
    frame = py_frame
    while frame is not None:
        if is_inferior_frame(frame):
            raw_frames.append(frame)
        frame = frame.f_back
    # raw_frames is innermost-first; depth counts from the entry frame.
    total = len(raw_frames)
    model_frames = []
    for index, raw in enumerate(raw_frames):
        depth = total - 1 - index
        code = raw.f_code
        arg_names = set(
            code.co_varnames[: code.co_argcount + code.co_kwonlyargcount]
        )
        variables: Dict[str, Variable] = {}
        for var_name, obj in raw.f_locals.items():
            if var_name.startswith("__") and var_name.endswith("__"):
                continue
            scope = "argument" if var_name in arg_names else "local"
            variables[var_name] = build_variable(
                var_name, obj, scope, snapshotter
            )
        model_frames.append(
            Frame(
                name=code.co_name,
                depth=depth,
                variables=variables,
                parent=None,
                line=raw.f_lineno,
                filename=code.co_filename,
            )
        )
    for inner, outer in zip(model_frames, model_frames[1:]):
        inner.parent = outer
    if not model_frames:
        return Frame(name="<module>", depth=0)
    return model_frames[0]


def build_globals(
    globals_dict: Dict[str, Any], snapshotter: Optional[Snapshotter] = None
) -> Dict[str, Variable]:
    """Model the inferior's global namespace (interpreter plumbing hidden)."""
    if snapshotter is None:
        snapshotter = Snapshotter()
    result: Dict[str, Variable] = {}
    for name, obj in globals_dict.items():
        if name in HIDDEN_GLOBALS:
            continue
        if isinstance(obj, types.ModuleType):
            continue
        result[name] = build_variable(
            name, obj, "global", snapshotter, ref_location=Location.GLOBAL
        )
    return result
