"""Convert live Python objects and frames into the abstract state model.

The Python tracker runs in the same interpreter as the inferior, so — as the
paper notes — inspection is the easy half: we walk real objects with ``id()``
providing addresses. Conceptually every Python variable is a ``REF`` value in
the stack pointing at an object in the heap, and that is exactly how this
module builds the model: :func:`build_variable` wraps the heap snapshot of
the object in a ``REF``.

Snapshots are *deep copies into the model*: mutating the inferior afterwards
does not change an already-taken snapshot. Shared objects are memoized by
identity so aliasing is visible (two variables referencing one list yield two
``REF`` values whose targets are the same ``Value`` instance), and reference
cycles are handled by filling container contents after memoization.
"""

from __future__ import annotations

import inspect
import itertools
import reprlib
import types
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.state import AbstractType, Frame, Location, Value, Variable

#: Global names never shown to tools (interpreter plumbing, not user state).
HIDDEN_GLOBALS = frozenset(
    {
        "__builtins__",
        "__cached__",
        "__doc__",
        "__file__",
        "__loader__",
        "__name__",
        "__package__",
        "__spec__",
        "__annotations__",
    }
)

_PRIMITIVE_TYPES = (int, float, str, bool, complex, bytes)

#: Bounded-cost repr for summaries (never walks a whole bomb container).
_SUMMARY_REPR = reprlib.Repr()
_SUMMARY_REPR.maxstring = 120
_SUMMARY_REPR.maxother = 120


@dataclass(frozen=True)
class CaptureLimits:
    """Bounds on how much of the inferior's object graph a pause captures.

    A hostile (or merely enormous) inferior state — a million-element
    list, a megabyte string, a structure nested hundreds of levels deep —
    must never wedge or exhaust the tool at a pause. Every bound marks
    what it cut with ``Value.truncated = True`` so tools can show the cut
    explicitly instead of silently lying about the state.

    Attributes:
        max_items: elements captured per container (list/tuple/set/dict
            entries, instance attributes); the rest are dropped.
        max_string: characters (or bytes) captured per string value.
        max_depth: hard cap on capture nesting depth — a safety net far
            below the interpreter recursion limit, independent of the
            presentation-level ``snapshot_depth``.
        max_values: total values captured per snapshot across the whole
            graph; beyond it everything collapses to summaries.

    ``None`` disables the corresponding bound.
    """

    max_items: Optional[int] = 1000
    max_string: Optional[int] = 4096
    max_depth: Optional[int] = 100
    max_values: Optional[int] = 100_000


#: The default bounds: generous for pedagogy, fatal for memory bombs.
DEFAULT_CAPTURE_LIMITS = CaptureLimits()

#: Opt-out: capture everything (the seed behavior, cycles still safe).
UNBOUNDED_CAPTURE = CaptureLimits(
    max_items=None, max_string=None, max_depth=None, max_values=None
)


class PyVariable(Variable):
    """A :class:`Variable` that also carries the live Python object.

    This is the "extended API" of Section II-C2: tools that only target
    Python inferiors may read :attr:`raw_object` directly instead of walking
    the abstract model.
    """

    def __init__(self, name: str, value: Value, scope: str, raw_object: Any):
        super().__init__(name=name, value=value, scope=scope)
        self.raw_object = raw_object


class Snapshotter:
    """Builds :class:`Value` graphs from live objects, with memoization.

    One snapshotter is used per pause so that sharing within a single pause
    is preserved while distinct pauses get independent snapshots.

    Args:
        max_depth: cap on container nesting depth; deeper content is
            replaced by an ``INVALID``-free primitive summary. ``None``
            means unlimited (cycles are still safe).
        limits: hard safety bounds on capture size
            (:class:`CaptureLimits`); defaults to
            :data:`DEFAULT_CAPTURE_LIMITS`. Everything a bound cuts is
            marked with ``Value.truncated``.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        limits: Optional[CaptureLimits] = None,
    ):
        self.max_depth = max_depth
        self.limits = limits if limits is not None else DEFAULT_CAPTURE_LIMITS
        self._memo: Dict[int, Value] = {}
        self._captured = 0

    def snapshot(self, obj: Any, depth: int = 0) -> Value:
        """Return the heap :class:`Value` modeling ``obj``."""
        address = id(obj)
        if address in self._memo:
            return self._memo[address]
        limits = self.limits
        self._captured += 1
        if (
            limits.max_values is not None and self._captured > limits.max_values
        ) or (limits.max_depth is not None and depth > limits.max_depth):
            return self._summary(obj, truncated=True)
        if self.max_depth is not None and depth > self.max_depth:
            return self._summary(obj)
        if obj is None:
            return Value(
                abstract_type=AbstractType.NONE,
                content=None,
                location=Location.HEAP,
                address=address,
                language_type="NoneType",
            )
        if isinstance(obj, bool):
            # bool before int: isinstance(True, int) holds.
            return self._primitive(obj)
        if isinstance(obj, _PRIMITIVE_TYPES):
            return self._primitive(obj)
        if isinstance(obj, (list, tuple)):
            return self._sequence(obj, depth)
        if isinstance(obj, (set, frozenset)):
            elements = obj
            if limits.max_items is not None and len(obj) > limits.max_items:
                # Slice before sorting so a giant set costs O(max_items log
                # max_items), not a full sort of the bomb.
                elements = itertools.islice(obj, limits.max_items)
            return self._sequence(obj, depth, ordered=sorted(elements, key=repr))
        if isinstance(obj, dict):
            return self._mapping(obj, depth)
        if _is_function_like(obj):
            return Value(
                abstract_type=AbstractType.FUNCTION,
                content=_function_name(obj),
                location=Location.HEAP,
                address=address,
                language_type=type(obj).__name__,
            )
        return self._instance(obj, depth)

    # -- builders --------------------------------------------------------

    def _summary(self, obj: Any, truncated: bool = False) -> Value:
        return Value(
            abstract_type=AbstractType.PRIMITIVE,
            content=_summarize(obj),
            location=Location.HEAP,
            address=id(obj),
            language_type=type(obj).__name__,
            truncated=truncated,
        )

    def _primitive(self, obj: Any) -> Value:
        content = obj
        truncated = False
        limit = self.limits.max_string
        if (
            isinstance(obj, (str, bytes))
            and limit is not None
            and len(obj) > limit
        ):
            content = obj[:limit]
            truncated = True
        if isinstance(obj, complex):
            # complex is not JSON-serializable; keep its repr, still PRIMITIVE.
            content = repr(obj)
        value = Value(
            abstract_type=AbstractType.PRIMITIVE,
            content=content,
            location=Location.HEAP,
            address=id(obj),
            language_type=type(obj).__name__,
            truncated=truncated,
        )
        self._memo[id(obj)] = value
        return value

    def _sequence(self, obj: Any, depth: int, ordered: Any = None) -> Value:
        value = Value(
            abstract_type=AbstractType.LIST,
            content=(),
            location=Location.HEAP,
            address=id(obj),
            language_type=type(obj).__name__,
        )
        # Memoize before recursing so self-referencing containers terminate.
        self._memo[id(obj)] = value
        elements = obj if ordered is None else ordered
        cap = self.limits.max_items
        if cap is not None:
            elements = itertools.islice(elements, cap)
        value.content = tuple(
            self.snapshot(element, depth + 1) for element in elements
        )
        if cap is not None and len(value.content) < len(obj):
            value.truncated = True
        return value

    def _mapping(self, obj: dict, depth: int) -> Value:
        value = Value(
            abstract_type=AbstractType.DICT,
            content={},
            location=Location.HEAP,
            address=id(obj),
            language_type=type(obj).__name__,
        )
        self._memo[id(obj)] = value
        cap = self.limits.max_items
        content: Dict[Value, Value] = {}
        items = obj.items()
        if cap is not None:
            items = itertools.islice(items, cap)
            if len(obj) > cap:
                value.truncated = True
        for key, item in items:
            key_value = _Keyed.wrap(self.snapshot(key, depth + 1))
            content[key_value] = self.snapshot(item, depth + 1)
        value.content = content
        return value

    def _instance(self, obj: Any, depth: int) -> Value:
        value = Value(
            abstract_type=AbstractType.STRUCT,
            content={},
            location=Location.HEAP,
            address=id(obj),
            language_type=type(obj).__name__,
        )
        self._memo[id(obj)] = value
        cap = self.limits.max_items
        fields: Dict[str, Value] = {}
        attributes = getattr(obj, "__dict__", None)
        if attributes is not None:
            for name, attr in attributes.items():
                if cap is not None and len(fields) >= cap:
                    value.truncated = True
                    break
                fields[name] = self.snapshot(attr, depth + 1)
        elif hasattr(type(obj), "__slots__"):
            for name in type(obj).__slots__:
                if cap is not None and len(fields) >= cap:
                    value.truncated = True
                    break
                if hasattr(obj, name):
                    fields[name] = self.snapshot(getattr(obj, name), depth + 1)
        else:
            fields["<repr>"] = self._summary(obj)
        value.content = fields
        return value


class _Keyed(Value):
    """Structurally hashable Value for use as a DICT content key."""

    @classmethod
    def wrap(cls, value: Value) -> "_Keyed":
        wrapped = cls.__new__(cls)
        wrapped.abstract_type = value.abstract_type
        wrapped.content = value.content
        wrapped.location = value.location
        wrapped.address = value.address
        wrapped.language_type = value.language_type
        wrapped.truncated = value.truncated
        return wrapped

    def __hash__(self) -> int:
        return hash((self.abstract_type, self.render()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Value):
            return NotImplemented
        return (
            self.abstract_type is other.abstract_type
            and self.render() == other.render()
        )


def _is_function_like(obj: Any) -> bool:
    return isinstance(
        obj,
        (
            types.FunctionType,
            types.BuiltinFunctionType,
            types.MethodType,
            types.LambdaType,
            type,
        ),
    ) or inspect.isroutine(obj)


def _function_name(obj: Any) -> str:
    return getattr(obj, "__qualname__", None) or getattr(obj, "__name__", repr(obj))


def _summarize(obj: Any) -> str:
    # reprlib bounds the cost of summarizing huge builtin containers (a
    # plain repr() of a million-element list would build the whole string
    # before we could truncate it) and survives a raising __repr__.
    try:
        text = _SUMMARY_REPR.repr(obj)
    except Exception:
        text = object.__repr__(obj)
    if len(text) > 120:
        text = text[:117] + "..."
    return text


def build_variable(
    name: str,
    obj: Any,
    scope: str,
    snapshotter: Snapshotter,
    ref_location: Location = Location.STACK,
) -> PyVariable:
    """Model one Python variable: a stack ``REF`` to the heap snapshot.

    Args:
        name: variable name.
        obj: the live object the variable is bound to.
        scope: ``"local"``, ``"argument"`` or ``"global"``.
        snapshotter: the per-pause snapshotter (preserves sharing).
        ref_location: where the reference cell itself lives.
    """
    target = snapshotter.snapshot(obj)
    reference = Value(
        abstract_type=AbstractType.REF,
        content=target,
        location=ref_location,
        address=None,
        language_type=type(obj).__name__,
    )
    return PyVariable(name=name, value=reference, scope=scope, raw_object=obj)


def build_frame_chain(
    py_frame: Any,
    is_inferior_frame,
    snapshotter: Optional[Snapshotter] = None,
    max_depth: Optional[int] = None,
    limits: Optional[CaptureLimits] = None,
) -> Frame:
    """Build the model :class:`Frame` chain from a live Python frame.

    Args:
        py_frame: the innermost inferior ``types.FrameType``.
        is_inferior_frame: predicate selecting inferior frames (the chain
            stops at, and skips, tracker/runner frames).
        snapshotter: shared snapshotter; a fresh one is created if omitted.
        max_depth: snapshot depth cap, forwarded to a fresh snapshotter.
        limits: capture bounds, forwarded to a fresh snapshotter.

    Returns:
        The innermost :class:`Frame`, with ``parent`` links to the entry
        frame and ``depth`` 0 at the entry frame.
    """
    if snapshotter is None:
        snapshotter = Snapshotter(max_depth=max_depth, limits=limits)
    raw_frames = []
    frame = py_frame
    while frame is not None:
        if is_inferior_frame(frame):
            raw_frames.append(frame)
        frame = frame.f_back
    # raw_frames is innermost-first; depth counts from the entry frame.
    total = len(raw_frames)
    model_frames = []
    for index, raw in enumerate(raw_frames):
        depth = total - 1 - index
        code = raw.f_code
        arg_names = set(
            code.co_varnames[: code.co_argcount + code.co_kwonlyargcount]
        )
        variables: Dict[str, Variable] = {}
        for var_name, obj in raw.f_locals.items():
            if var_name.startswith("__") and var_name.endswith("__"):
                continue
            if isinstance(obj, types.ModuleType):
                # Same rule as build_globals: imported modules are
                # interpreter plumbing, not program state — and walking
                # one (e.g. ``threading._active``) can pull the *tool's*
                # object graph into an inferior snapshot.
                continue
            scope = "argument" if var_name in arg_names else "local"
            variables[var_name] = build_variable(
                var_name, obj, scope, snapshotter
            )
        model_frames.append(
            Frame(
                name=code.co_name,
                depth=depth,
                variables=variables,
                parent=None,
                line=raw.f_lineno,
                filename=code.co_filename,
            )
        )
    for inner, outer in zip(model_frames, model_frames[1:]):
        inner.parent = outer
    if not model_frames:
        return Frame(name="<module>", depth=0)
    return model_frames[0]


def build_globals(
    globals_dict: Dict[str, Any],
    snapshotter: Optional[Snapshotter] = None,
    limits: Optional[CaptureLimits] = None,
) -> Dict[str, Variable]:
    """Model the inferior's global namespace (interpreter plumbing hidden)."""
    if snapshotter is None:
        snapshotter = Snapshotter(limits=limits)
    result: Dict[str, Variable] = {}
    for name, obj in globals_dict.items():
        if name in HIDDEN_GLOBALS:
            continue
        if isinstance(obj, types.ModuleType):
            continue
        result[name] = build_variable(
            name, obj, "global", snapshotter, ref_location=Location.GLOBAL
        )
    return result
