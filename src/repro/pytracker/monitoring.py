"""The ``sys.monitoring`` (PEP 669) fast backend: factory name ``"python-mon"``.

CPython 3.12 replaced the one-size-fits-all ``sys.settrace`` callback with
per-event, per-code-object instrumentation. That model maps one-to-one
onto the :class:`repro.core.engine.ControlPointEngine`'s compiled indexes:

- ``LINE`` events are enabled only where a line control point could match
  (``engine.lines_may_fire_in``), or while stepping / watching;
- a line callback at a location where nothing can pause returns
  :data:`sys.monitoring.DISABLE`, so the interpreter stops reporting that
  location entirely — steady-state ``resume`` with no matching breakpoints
  runs **uninstrumented**, at close to native speed;
- when the engine recompiles its indexes (a breakpoint was added, a mode
  changed), the backend re-arms via ``sys.monitoring.restart_events()``
  and re-derives the per-code-object event masks, so previously-disabled
  locations fire again exactly when they become interesting.

Everything above the instrumentation layer is inherited unchanged from
:class:`repro.pytracker.tracker.PythonTracker`: the inferior thread and
pause handshake, the engine's step/next/finish state machine, supervision
deadlines and the async-interrupt flag (honored from monitoring
callbacks), timeline recording, and bounded value capture. The parity
suites assert identical pause sequences against the settrace backend.

Availability and trade-offs:

- Requires Python >= 3.12; constructing the tracker on an older
  interpreter raises :class:`repro.core.errors.BackendUnavailableError`.
- Instruments the code objects reachable from the compiled program
  (functions, classes, lambdas, comprehensions) at load, plus anything
  the inferior compiles dynamically under the program's filename: a
  global ``PY_START`` net adopts unseen code objects on first call
  (foreign code silences itself location-by-location with ``DISABLE``).
- Instrumentation is interpreter-global, so worker threads are covered
  for free; callbacks register each thread on its first event and honor
  the all-stop parking protocol exactly like the settrace backend.
- ``sys.monitoring`` state is interpreter-global (one of six tool ids),
  not per-thread; the backend claims ``DEBUGGER_ID`` and falls back to
  any free id, releasing it when the inferior exits.
"""

from __future__ import annotations

import sys
import threading
import types
from typing import Any, Iterator, List, Optional

from repro.core.errors import BackendUnavailableError
from repro.pytracker.tracker import PythonTracker, _KillInferior

_monitoring = getattr(sys, "monitoring", None)

#: Whether this interpreter has PEP 669 monitoring (CPython >= 3.12).
HAVE_MONITORING = _monitoring is not None

#: The canonical skip/availability message. Tests skip with exactly this
#: text and CI greps for it to prove the python-mon suites were *skipped,
#: not silently absent* on older interpreters.
SKIP_REASON = "python-mon requires Python 3.12+ (sys.monitoring)"


def _candidate_tool_ids() -> List[int]:
    """Tool ids to try, preferred first (DEBUGGER_ID, then any other)."""
    preferred = _monitoring.DEBUGGER_ID
    return [preferred] + [i for i in range(6) if i != preferred]


def _walk_code_objects(root: types.CodeType) -> Iterator[types.CodeType]:
    """Every code object reachable from ``root`` through ``co_consts``."""
    seen = set()
    stack = [root]
    while stack:
        code = stack.pop()
        if id(code) in seen:
            continue
        seen.add(id(code))
        yield code
        for const in code.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)


class MonitoringTracker(PythonTracker):
    """In-process Python tracker on ``sys.monitoring`` instead of settrace.

    Drop-in for :class:`PythonTracker` (same constructor arguments, same
    pause sequences); the difference is the cost model — see the module
    docstring. Raises :class:`BackendUnavailableError` at construction on
    interpreters without ``sys.monitoring``.
    """

    backend = "python-mon"

    def __init__(self, **kwargs: Any):
        if _monitoring is None:
            raise BackendUnavailableError(
                f"{SKIP_REASON}; this is Python "
                f"{sys.version_info.major}.{sys.version_info.minor} — use "
                'the "python" (settrace) backend here'
            )
        self._tool_id: Optional[int] = None
        self._tool_name = f"repro-python-mon-{id(self):x}"
        self._mon_code_objects: List[types.CodeType] = []
        #: ``id()`` index over ``_mon_code_objects`` for the O(1) adoption
        #: check the global ``PY_START`` net performs on every first call.
        self._mon_code_ids: set = set()
        self._events_armed = False
        #: Cached per-code-object event mask (avoids re-issuing identical
        #: ``set_local_events`` calls on every control call).
        self._local_mask: Optional[int] = None
        #: Whether DISABLEd locations must be restarted before the next
        #: resume: set when control points change (a location disabled as
        #: uninteresting may have become a breakpoint).
        self._needs_restart = True
        self._in_event_sync = False
        super().__init__(**kwargs)

    # ------------------------------------------------------------------
    # Tool-id lifecycle
    # ------------------------------------------------------------------

    def _acquire_tool_id(self) -> int:
        """Claim a free monitoring tool id, preferring ``DEBUGGER_ID``.

        Six ids exist per interpreter and other tools (coverage,
        profilers, another tracker) may hold some; any free one works
        because all registrations are per-tool-id.
        """
        for candidate in _candidate_tool_ids():
            try:
                _monitoring.use_tool_id(candidate, self._tool_name)
            except ValueError:
                continue  # taken by another tool; try the next id
            return candidate
        raise BackendUnavailableError(
            "all six sys.monitoring tool ids are in use; free one "
            "(sys.monitoring.free_tool_id) or use the \"python\" backend"
        )

    def _setup_monitoring(self) -> None:
        """Claim a tool id, register callbacks, compile the event masks."""
        self._tool_id = self._acquire_tool_id()
        events = _monitoring.events
        _monitoring.register_callback(self._tool_id, events.LINE, self._on_line)
        _monitoring.register_callback(
            self._tool_id, events.PY_START, self._on_py_start
        )
        _monitoring.register_callback(
            self._tool_id, events.PY_RETURN, self._on_py_return
        )
        _monitoring.register_callback(
            self._tool_id, events.RAISE, self._on_raise
        )
        # RAISE is a global-only event (it cannot be enabled per code
        # object, nor DISABLEd); the callback filters on the program
        # filename first so foreign raises cost one comparison. PY_START
        # is *also* enabled globally: it is the net that catches code the
        # inferior compiles dynamically under the program's filename —
        # unseen program code objects are adopted on first call, and
        # foreign locations silence themselves with DISABLE.
        _monitoring.set_events(self._tool_id, events.RAISE | events.PY_START)
        self._mon_code_objects = list(_walk_code_objects(self._code))
        self._mon_code_ids = {id(code) for code in self._mon_code_objects}
        self._events_armed = True
        self.engine.add_recompile_listener(self._on_engine_recompile)
        self._sync_local_events()

    def _teardown_monitoring(self) -> None:
        """Clear every event set and callback, release the tool id.

        Idempotent; runs in the inferior thread when the program exits and
        again (as a no-op, or for real if the inferior wedged) from
        ``terminate`` in the tool thread.
        """
        tool_id, self._tool_id = self._tool_id, None
        if tool_id is None:
            return
        self._events_armed = False
        events = _monitoring.events
        try:
            _monitoring.set_events(tool_id, 0)
            for code in self._mon_code_objects:
                _monitoring.set_local_events(tool_id, code, 0)
            for event in (
                events.LINE, events.PY_START, events.PY_RETURN, events.RAISE
            ):
                _monitoring.register_callback(tool_id, event, None)
            _monitoring.free_tool_id(tool_id)
        except ValueError:  # pragma: no cover - tool freed under our feet
            pass

    # ------------------------------------------------------------------
    # Lifecycle hooks (instrumentation is global, not per-thread)
    # ------------------------------------------------------------------

    def _start(self) -> None:
        # Arm the step machine *before* compiling the event masks so the
        # entry pause (a step pause on the first line) has LINE events on.
        self.engine.arm("step")
        self._setup_monitoring()
        try:
            super()._start()
        except BaseException:
            self._teardown_monitoring()
            raise

    def _arm_instrumentation(self) -> None:
        """Nothing to do in the inferior thread: ``sys.monitoring`` event
        sets are interpreter-global and were installed by ``_start``. The
        settrace tamper guard does not apply (there is no per-thread trace
        function to tamper with)."""

    def _disarm_instrumentation(self) -> None:
        self._teardown_monitoring()

    def _terminate(self) -> None:
        super()._terminate()
        # Normal exits tore monitoring down in the inferior thread; this
        # covers a wedged-and-abandoned inferior, which keeps running but
        # must stop owning a global tool id.
        self._teardown_monitoring()

    # ------------------------------------------------------------------
    # Engine index -> event-set compilation
    # ------------------------------------------------------------------

    def _local_event_mask(self, mode: str) -> int:
        """The per-code-object event set the current engine state needs."""
        events = _monitoring.events
        engine = self.engine
        mask = events.PY_START
        if engine.has_tracked_functions:
            mask |= events.PY_RETURN
        if (
            mode != "resume"
            or engine.has_watchpoints
            or self._interrupt_requested
            or self._killed
            or engine.lines_may_fire_in(self._program_abspath)
        ):
            mask |= events.LINE
        return mask

    def _sync_local_events(self, mode: Optional[str] = None) -> None:
        """Re-derive and apply the event masks from the engine indexes."""
        if not self._events_armed:
            return
        self._in_event_sync = True
        try:
            self.engine.refresh()
            mask = self._local_event_mask(
                self.engine.mode if mode is None else mode
            )
            self._apply_local_events(mask)
        finally:
            self._in_event_sync = False

    def _apply_local_events(self, mask: int) -> None:
        if mask == self._local_mask:
            return
        tool_id = self._tool_id
        if tool_id is None:
            return
        for code in self._mon_code_objects:
            _monitoring.set_local_events(tool_id, code, mask)
        self._local_mask = mask

    def _adopt_code(self, code: types.CodeType) -> None:
        """Instrument a dynamically compiled program code object.

        Fires from the global ``PY_START`` net the first time the inferior
        calls into code it built itself (``exec(compile(...))`` under the
        program's filename). The whole nested tree is adopted at once so
        inner functions are armed before their own first call.
        """
        tool_id = self._tool_id
        if tool_id is None:
            return
        mask = self._local_mask
        if mask is None:
            mask = self._local_event_mask(self.engine.mode)
        for nested in _walk_code_objects(code):
            if id(nested) in self._mon_code_ids:
                continue
            self._mon_code_objects.append(nested)
            self._mon_code_ids.add(id(nested))
            _monitoring.set_local_events(tool_id, nested, mask)

    def _on_engine_recompile(self) -> None:
        """Dirty-flag hook: the indexes changed underneath the event sets.

        Wherever the triggering ``refresh`` ran (a callback in the
        inferior thread, a control call in the tool thread), the masks are
        re-derived and every ``DISABLE``d location is restarted — a
        location disabled as boring may just have become a breakpoint.
        """
        if not self._events_armed or self._in_event_sync:
            return
        self._sync_local_events()
        self._needs_restart = True
        _monitoring.restart_events()

    def _control_points_changed(self) -> None:
        super()._control_points_changed()
        self._needs_restart = True

    def _issue(self, mode: str, depth: int = 0) -> None:
        if self._events_armed:
            self._sync_local_events(mode)
            # DISABLEd locations stay disabled across plain resumes (their
            # disposition cannot have changed), which is what keeps the
            # steady state uninstrumented; anything else re-arms them.
            if mode != "resume" or self._needs_restart:
                self._needs_restart = False
                _monitoring.restart_events()
        super()._issue(mode, depth)

    def _retrace_live_frames(self) -> None:
        """Interrupt/kill delivery: force events back on everywhere.

        The settrace backend re-installs per-frame trace functions; here
        the equivalent is forcing the full event mask onto every code
        object and restarting ``DISABLE``d locations so the very next
        line/call/return/raise anywhere in the inferior reaches a
        callback, which then sees the flag.
        """
        if not self._events_armed:
            return
        events = _monitoring.events
        self._apply_local_events(
            events.LINE | events.PY_START | events.PY_RETURN
        )
        self._needs_restart = True
        _monitoring.restart_events()

    # ------------------------------------------------------------------
    # Monitoring callbacks (run in the inferior thread)
    # ------------------------------------------------------------------

    def _callback_frame(self, code: types.CodeType):
        """The frame executing ``code`` (callbacks run on its stack)."""
        frame = sys._getframe(1)
        while frame is not None and frame.f_code is not code:
            frame = frame.f_back
        return frame

    def _mon_sync(self) -> None:
        """Kill / thread-registration / all-stop parking prologue.

        Mirrors the settrace backend's ``_trace`` preamble: callbacks fire
        in whichever thread executes inferior code, so each thread is
        registered on its first event, and while another thread's pause is
        live this one parks until release.
        """
        if self._killed or self._finished:
            raise _KillInferior()
        self._ensure_thread_registered()
        if self._pause_active:
            self._park(None)

    def _on_line(self, code: types.CodeType, line_number: int):
        self._mon_sync()
        frame = self._callback_frame(code)
        if frame is None:  # pragma: no cover - defensive
            return None
        if self._interrupt_requested:
            self._deliver_interrupt(frame)
            return None
        self._handle_line(frame)
        # Decided *after* any pause, against the engine state the control
        # call that woke us re-armed: if nothing can ever pause at this
        # location under the current indexes, stop reporting it. This is
        # the fast path — the next visit costs nothing at all.
        engine = self.engine
        if (
            engine.mode == "resume"
            and not engine.has_watchpoints
            and not self._interrupt_requested
            and not self._killed
            and not engine.may_match_line(line_number)
        ):
            return _monitoring.DISABLE
        return None

    def _on_py_start(self, code: types.CodeType, instruction_offset: int):
        if code.co_filename != self._program_abspath:
            # The global PY_START net sees every call in the interpreter;
            # foreign locations silence themselves so the steady-state
            # cost is one callback per location per restart_events().
            return _monitoring.DISABLE
        if id(code) not in self._mon_code_ids:
            self._adopt_code(code)
        self._mon_sync()
        frame = self._callback_frame(code)
        if frame is None:  # pragma: no cover - defensive
            return None
        if self._interrupt_requested:
            self._deliver_interrupt(frame)
            return None
        self._handle_call(frame)
        engine = self.engine
        if (
            engine.mode == "resume"
            and not self._interrupt_requested
            and not self._killed
            and not engine.may_match_function(code.co_name)
        ):
            return _monitoring.DISABLE
        return None

    def _on_py_return(
        self, code: types.CodeType, instruction_offset: int, retval: Any
    ):
        self._mon_sync()
        frame = self._callback_frame(code)
        if frame is None:  # pragma: no cover - defensive
            return None
        if self._interrupt_requested:
            self._deliver_interrupt(frame)
            return None
        self._handle_return(frame, retval)
        engine = self.engine
        if (
            engine.mode == "resume"
            and not self._interrupt_requested
            and not self._killed
            and not engine.may_match_function(code.co_name)
        ):
            return _monitoring.DISABLE
        return None

    def _on_raise(
        self, code: types.CodeType, instruction_offset: int, exc: BaseException
    ) -> None:
        # Global event: filter foreign code first, and never return
        # DISABLE (exception events cannot be disabled).
        if code.co_filename != self._program_abspath:
            return
        self._mon_sync()
        self.engine.note_event("raise")
        if self._interrupt_requested:
            frame = self._callback_frame(code)
            if frame is not None:
                self._deliver_interrupt(frame)
