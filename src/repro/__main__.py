"""``python -m repro`` dispatches to the CLI front-end."""

import sys

from repro.cli import main

sys.exit(main())
