"""The RISC-V substrate: RV32IM assembler and machine simulator.

Stands in for the RISC-V toolchain used by the paper's Fig. 7 viewer (which
the original authors also could not rebuild for their artifact): registers,
pc, sp and raw memory are observable at every instruction step.
"""

from repro.riscv.assembler import (
    ABI_NAMES,
    AsmError,
    DATA_BASE,
    Instruction,
    Program,
    TEXT_BASE,
    assemble,
)
from repro.riscv.machine import (
    HEAP_BASE,
    Machine,
    MachineFault,
    RVFrame,
    STACK_TOP,
)

__all__ = [
    "ABI_NAMES",
    "AsmError",
    "DATA_BASE",
    "HEAP_BASE",
    "Instruction",
    "Machine",
    "MachineFault",
    "Program",
    "RVFrame",
    "STACK_TOP",
    "TEXT_BASE",
    "assemble",
]
