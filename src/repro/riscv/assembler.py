"""Two-pass assembler for a RISC-V (RV32IM) subset.

Supports the instructions, pseudo-instructions, registers (numeric and ABI
names) and directives that appear in teaching material: ``.text``,
``.data``, ``.globl``, ``.word``, ``.byte``, ``.half``, ``.asciz``/
``.string``, ``.space``, ``.align``, labels, and ``#`` / ``;`` comments.

The assembler resolves labels in a first pass and produces a
:class:`Program` of :class:`Instruction` records, each carrying its source
line — the debug server steps the machine by these lines, and the GDB-style
tracker's function-exit discovery literally scans a function's instruction
listing for its ``ret`` (the RISC-V retargeting of the paper's x86 ``retq``
scan).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ProgramLoadError

TEXT_BASE = 0x0001_0000
DATA_BASE = 0x2000_0000

#: ABI register names, index = register number.
ABI_NAMES = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
]

_REGISTERS: Dict[str, int] = {}
for _index, _name in enumerate(ABI_NAMES):
    _REGISTERS[_name] = _index
    _REGISTERS[f"x{_index}"] = _index
_REGISTERS["fp"] = 8

#: rd, rs1, rs2
R_TYPE = frozenset(
    "add sub and or xor sll srl sra slt sltu mul mulh div divu rem remu".split()
)
#: rd, rs1, imm
I_TYPE = frozenset(
    "addi andi ori xori slti sltiu slli srli srai".split()
)
#: rd, offset(rs1)
LOAD = frozenset("lw lh lb lhu lbu".split())
#: rs2, offset(rs1)
STORE = frozenset("sw sh sb".split())
#: rs1, rs2, label
BRANCH = frozenset("beq bne blt bge bltu bgeu".split())


class AsmError(ProgramLoadError):
    """Source text that is not valid assembly for this subset."""


@dataclass
class Instruction:
    """One assembled instruction.

    Attributes:
        address: byte address in the text segment (instructions are 4 bytes).
        mnemonic: canonical (post-pseudo-expansion) mnemonic.
        operands: resolved operands — register numbers and immediates.
        line: 1-based source line of the instruction.
        text: the original source text (shown by the disassembly command).
    """

    address: int
    mnemonic: str
    operands: Tuple
    line: int
    text: str

    def is_return(self) -> bool:
        """Whether this is the function-return instruction (``jalr x0, 0(ra)``)."""
        return (
            self.mnemonic == "jalr"
            and self.operands[0] == 0
            and self.operands[1] == 1
            and self.operands[2] == 0
        )


@dataclass
class Program:
    """An assembled program: instructions, data image, and symbols."""

    instructions: List[Instruction] = field(default_factory=list)
    data: bytes = b""
    #: label -> address (text labels point at instructions, data at bytes)
    symbols: Dict[str, int] = field(default_factory=dict)
    #: text labels in address order; used to attribute addresses to functions
    text_labels: List[Tuple[int, str]] = field(default_factory=list)
    entry: int = TEXT_BASE
    filename: str = "<asm>"

    def instruction_at(self, address: int) -> Optional[Instruction]:
        index = (address - TEXT_BASE) // 4
        if 0 <= index < len(self.instructions):
            return self.instructions[index]
        return None

    def function_of(self, address: int) -> str:
        """Name of the function (nearest preceding text label) at ``address``."""
        name = "<start>"
        for label_address, label in self.text_labels:
            if label_address <= address:
                name = label
            else:
                break
        return name

    def function_body(self, name: str) -> List[Instruction]:
        """The instructions of a function: its label to the next label."""
        start = self.symbols.get(name)
        if start is None:
            raise AsmError(f"unknown function {name!r}")
        end = TEXT_BASE + 4 * len(self.instructions)
        for label_address, _ in self.text_labels:
            if label_address > start:
                end = label_address
                break
        return [
            instruction
            for instruction in self.instructions
            if start <= instruction.address < end
        ]


def assemble(source: str, filename: str = "<asm>") -> Program:
    """Assemble RISC-V source text into a :class:`Program`."""
    return _Assembler(source, filename).run()


@dataclass
class _PendingInstruction:
    mnemonic: str
    operands: List[str]
    line: int
    text: str
    address: int


class _Assembler:
    def __init__(self, source: str, filename: str):
        self.source = source
        self.filename = filename
        self.symbols: Dict[str, int] = {}
        self.text_labels: List[Tuple[int, str]] = []
        self.pending: List[_PendingInstruction] = []
        self.data = bytearray()
        self.errors: List[str] = []
        self.globl: set = set()

    def _error(self, line: int, message: str) -> AsmError:
        return AsmError(f"{self.filename}:{line}: {message}")

    # ------------------------------------------------------------------
    # Pass 1: layout + symbols
    # ------------------------------------------------------------------

    def run(self) -> Program:
        section = "text"
        text_address = TEXT_BASE
        for line_number, raw_line in enumerate(self.source.splitlines(), start=1):
            line = _strip_comment(raw_line).strip()
            if not line:
                continue
            # Labels (several may share a line with an instruction).
            while ":" in line:
                label, _, rest = line.partition(":")
                label = label.strip()
                if not _is_identifier(label):
                    break
                address = text_address if section == "text" else DATA_BASE + len(self.data)
                if label in self.symbols:
                    raise self._error(line_number, f"duplicate label {label!r}")
                self.symbols[label] = address
                if section == "text":
                    self.text_labels.append((address, label))
                line = rest.strip()
            if not line:
                continue
            if line.startswith("."):
                section, text_address = self._directive(
                    line, line_number, section, text_address
                )
                continue
            if section != "text":
                raise self._error(line_number, "instruction outside .text")
            mnemonic, operands = _split_instruction(line)
            for expansion in self._expand_pseudo(mnemonic, operands, line_number, line):
                expansion.address = text_address
                self.pending.append(expansion)
                text_address += 4
        return self._finish()

    def _directive(
        self, line: str, line_number: int, section: str, text_address: int
    ) -> Tuple[str, int]:
        parts = line.split(None, 1)
        name = parts[0]
        argument = parts[1].strip() if len(parts) > 1 else ""
        if name == ".text":
            return "text", text_address
        if name == ".data":
            return "data", text_address
        if name in (".globl", ".global"):
            for symbol in argument.split(","):
                self.globl.add(symbol.strip())
            return section, text_address
        if name in (".type", ".size", ".section", ".option"):
            return section, text_address
        if name == ".word":
            for item in argument.split(","):
                value = _int_value(item.strip(), self.symbols) & 0xFFFFFFFF
                self.data += value.to_bytes(4, "little")
            return section, text_address
        if name == ".half":
            for item in argument.split(","):
                self.data += (_int_value(item.strip(), self.symbols) & 0xFFFF).to_bytes(2, "little")
            return section, text_address
        if name == ".byte":
            for item in argument.split(","):
                self.data += bytes([_int_value(item.strip(), self.symbols) & 0xFF])
            return section, text_address
        if name in (".asciz", ".string", ".ascii"):
            text = _parse_string_literal(argument)
            self.data += text.encode("latin-1")
            if name != ".ascii":
                self.data += b"\x00"
            return section, text_address
        if name == ".space" or name == ".zero":
            self.data += bytes(_int_value(argument, self.symbols))
            return section, text_address
        if name == ".align":
            align = 1 << _int_value(argument, self.symbols)
            while len(self.data) % align:
                self.data += b"\x00"
            return section, text_address
        raise self._error(line_number, f"unknown directive {name}")

    # ------------------------------------------------------------------
    # Pseudo-instruction expansion
    # ------------------------------------------------------------------

    def _expand_pseudo(
        self, mnemonic: str, operands: List[str], line: int, text: str
    ) -> List[_PendingInstruction]:
        def make(m: str, ops: List[str]) -> _PendingInstruction:
            return _PendingInstruction(m, ops, line, text, 0)

        if mnemonic == "nop":
            return [make("addi", ["x0", "x0", "0"])]
        if mnemonic == "li":
            # Real-assembler expansion: addi for 12-bit immediates, else a
            # lui+addi pair. Symbolic immediates take the two-instruction
            # form because their value is unknown in this pass.
            immediate = operands[1].strip()
            try:
                value = _int_value(immediate, {})
            except AsmError:
                value = None
            if value is not None and -2048 <= value < 2048:
                return [make("addi", [operands[0], "x0", immediate])]
            return [
                make("lui", [operands[0], f"%hi({immediate})"]),
                make("addi", [operands[0], operands[0], f"%lo({immediate})"]),
            ]
        if mnemonic == "la":
            # Always the two-instruction absolute-address form.
            return [
                make("lui", [operands[0], f"%hi({operands[1]})"]),
                make("addi", [operands[0], operands[0], f"%lo({operands[1]})"]),
            ]
        if mnemonic == "mv":
            return [make("addi", [operands[0], operands[1], "0"])]
        if mnemonic == "not":
            return [make("xori", [operands[0], operands[1], "-1"])]
        if mnemonic == "neg":
            return [make("sub", [operands[0], "x0", operands[1]])]
        if mnemonic == "seqz":
            return [make("sltiu", [operands[0], operands[1], "1"])]
        if mnemonic == "snez":
            return [make("sltu", [operands[0], "x0", operands[1]])]
        if mnemonic == "j":
            return [make("jal", ["x0", operands[0]])]
        if mnemonic == "jr":
            return [make("jalr", ["x0", "0(" + operands[0] + ")"])]
        if mnemonic == "ret":
            return [make("jalr", ["x0", "0(ra)"])]
        if mnemonic == "call":
            return [make("jal", ["ra", operands[0]])]
        if mnemonic == "tail":
            return [make("jal", ["x0", operands[0]])]
        if mnemonic == "beqz":
            return [make("beq", [operands[0], "x0", operands[1]])]
        if mnemonic == "bnez":
            return [make("bne", [operands[0], "x0", operands[1]])]
        if mnemonic == "blez":
            return [make("bge", ["x0", operands[0], operands[1]])]
        if mnemonic == "bgez":
            return [make("bge", [operands[0], "x0", operands[1]])]
        if mnemonic == "bltz":
            return [make("blt", [operands[0], "x0", operands[1]])]
        if mnemonic == "bgtz":
            return [make("blt", ["x0", operands[0], operands[1]])]
        if mnemonic == "ble":
            return [make("bge", [operands[1], operands[0], operands[2]])]
        if mnemonic == "bgt":
            return [make("blt", [operands[1], operands[0], operands[2]])]
        if mnemonic == "jal" and len(operands) == 1:
            return [make("jal", ["ra", operands[0]])]
        if mnemonic == "jalr" and len(operands) == 1:
            return [make("jalr", ["ra", "0(" + operands[0] + ")"])]
        return [make(mnemonic, operands)]

    # ------------------------------------------------------------------
    # Pass 2: operand resolution
    # ------------------------------------------------------------------

    def _finish(self) -> Program:
        instructions: List[Instruction] = []
        for pending in self.pending:
            instructions.append(self._resolve(pending))
        entry = self.symbols.get("main", self.symbols.get("_start", TEXT_BASE))
        text_labels = sorted(self.text_labels)
        if self.globl:
            # As in a real toolchain, only declared-global symbols and call
            # targets delimit functions; other labels are local (loop heads,
            # branch targets) and attribute to the enclosing function.
            function_addresses = {
                address
                for address, label in text_labels
                if label in self.globl or address == entry
            }
            for instruction in instructions:
                if instruction.mnemonic == "jal" and instruction.operands[0] == 1:
                    function_addresses.add(instruction.operands[1])
            text_labels = [
                (address, label)
                for address, label in text_labels
                if address in function_addresses
            ]
        return Program(
            instructions=instructions,
            data=bytes(self.data),
            symbols=dict(self.symbols),
            text_labels=text_labels,
            entry=entry,
            filename=self.filename,
        )

    def _resolve(self, pending: _PendingInstruction) -> Instruction:
        mnemonic = pending.mnemonic
        operands = pending.operands
        line = pending.line

        def reg(text: str) -> int:
            name = text.strip().lower()
            if name not in _REGISTERS:
                raise self._error(line, f"unknown register {text!r}")
            return _REGISTERS[name]

        def imm(text: str) -> int:
            return _int_value(text.strip(), self.symbols)

        def mem(text: str) -> Tuple[int, int]:
            """Parse ``offset(base)`` into (offset, base register).

            A bare symbol or number (the ``lw rd, symbol`` pseudo form) is
            treated as an absolute address with base ``x0``.
            """
            text = text.strip()
            if "(" not in text:
                return imm(text), 0
            offset_text, _, rest = text.partition("(")
            base = rest.rstrip(")")
            offset = imm(offset_text) if offset_text.strip() else 0
            return offset, reg(base)

        try:
            if mnemonic in R_TYPE:
                resolved = (reg(operands[0]), reg(operands[1]), reg(operands[2]))
            elif mnemonic in I_TYPE:
                resolved = (reg(operands[0]), reg(operands[1]), imm(operands[2]))
            elif mnemonic in LOAD:
                offset, base = mem(operands[1])
                resolved = (reg(operands[0]), base, offset)
            elif mnemonic in STORE:
                offset, base = mem(operands[1])
                resolved = (reg(operands[0]), base, offset)
            elif mnemonic in BRANCH:
                resolved = (
                    reg(operands[0]),
                    reg(operands[1]),
                    self._target(operands[2], line),
                )
            elif mnemonic == "jal":
                resolved = (reg(operands[0]), self._target(operands[1], line))
            elif mnemonic == "jalr":
                offset, base = mem(operands[1])
                resolved = (reg(operands[0]), base, offset)
            elif mnemonic in ("lui", "auipc"):
                resolved = (reg(operands[0]), imm(operands[1]))
            elif mnemonic in ("ecall", "ebreak"):
                resolved = ()
            else:
                raise self._error(line, f"unknown instruction {mnemonic!r}")
        except IndexError:
            raise self._error(
                line, f"wrong operand count for {mnemonic}"
            ) from None
        return Instruction(
            address=pending.address,
            mnemonic=mnemonic,
            operands=resolved,
            line=line,
            text=pending.text,
        )

    def _target(self, text: str, line: int) -> int:
        text = text.strip()
        if text in self.symbols:
            return self.symbols[text]
        try:
            return _int_value(text, self.symbols)
        except AsmError:
            raise self._error(line, f"unknown label {text!r}") from None


# ---------------------------------------------------------------------------
# Text helpers
# ---------------------------------------------------------------------------


def _strip_comment(line: str) -> str:
    in_string = False
    for index, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char in "#;" and not in_string:
            return line[:index]
    return line


def _is_identifier(text: str) -> bool:
    return bool(text) and (text[0].isalpha() or text[0] in "_.") and all(
        c.isalnum() or c in "_.$" for c in text
    )


def _split_instruction(line: str) -> Tuple[str, List[str]]:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    if len(parts) == 1:
        return mnemonic, []
    operands = [op.strip() for op in parts[1].split(",")]
    return mnemonic, operands


def _int_value(text: str, symbols: Dict[str, int]) -> int:
    text = text.strip()
    if text in symbols:
        return symbols[text]
    if text.startswith("%lo(") and text.endswith(")"):
        value = _int_value(text[4:-1], symbols)
        return value - (((value + 0x800) >> 12) << 12)
    if text.startswith("%hi(") and text.endswith(")"):
        return ((_int_value(text[4:-1], symbols) + 0x800) >> 12) & 0xFFFFF
    try:
        if text.lower().startswith("0x") or text.lower().startswith("-0x"):
            return int(text, 16)
        if text.startswith("'") and text.endswith("'") and len(text) >= 3:
            return ord(text[1:-1])
        return int(text, 10)
    except ValueError:
        raise AsmError(f"not a number or symbol: {text!r}") from None


def _parse_string_literal(text: str) -> str:
    text = text.strip()
    if not (text.startswith('"') and text.endswith('"')):
        raise AsmError(f"expected a string literal, got {text!r}")
    body = text[1:-1]
    return (
        body.replace("\\n", "\n")
        .replace("\\t", "\t")
        .replace("\\0", "\0")
        .replace('\\"', '"')
        .replace("\\\\", "\\")
    )
