"""RV32IM machine simulator with generator-based stepping.

Like the mini-C interpreter, :meth:`Machine.run` is a generator yielding one
event per executed instruction line (plus call/return/output/exit events),
so the MI debug server pauses the machine simply by holding the generator.

The simulator tracks a *call stack* by observing ``jal``/``jalr`` link
instructions and returns through ``ra``, which is how the tracker attributes
frames and depths to what is otherwise a flat instruction stream. Registers
and raw memory are exposed for the paper's ``get_registers_gdb`` and
``get_value_at_gdb`` inspection entry points (the Fig. 7 viewer).

Environment calls follow the teaching-simulator convention (RARS/Venus):
``a7``=1 print int, 4 print string, 11 print char, 10 exit(0), 93 exit(a0);
``a7``=9 is ``sbrk`` (heap allocation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.core.errors import TrackerError
from repro.minic.events import (
    CallEvent,
    Event,
    ExitEvent,
    LineEvent,
    OutputEvent,
    ReturnEvent,
)
from repro.riscv.assembler import (
    ABI_NAMES,
    DATA_BASE,
    Instruction,
    Program,
    TEXT_BASE,
)

STACK_TOP = 0x7FFF_F000
STACK_SIZE = 1 << 16
HEAP_BASE = 0x3000_0000


class MachineFault(TrackerError):
    """An invalid memory access or illegal instruction in the simulator."""


@dataclass
class RVFrame:
    """One entry of the simulator's inferred call stack."""

    function: str
    return_address: int
    entry_sp: int


class Machine:
    """Executes an assembled RISC-V :class:`~repro.riscv.assembler.Program`.

    Args:
        program: the assembled program.
        max_steps: instruction budget (protects against runaway loops).
    """

    def __init__(self, program: Program, max_steps: int = 2_000_000):
        self.program = program
        self.max_steps = max_steps
        self.registers: List[int] = [0] * 32
        self.pc = program.entry
        self.registers[2] = STACK_TOP  # sp
        self.exit_code: Optional[int] = None
        self.error: Optional[str] = None
        self.output: List[str] = []
        self.call_stack: List[RVFrame] = [
            RVFrame(
                function=program.function_of(program.entry),
                return_address=0,
                entry_sp=STACK_TOP,
            )
        ]
        self._data = bytearray(program.data)
        self._stack = bytearray(STACK_SIZE)
        self._heap = bytearray()
        self._heap_brk = HEAP_BASE
        self._steps = 0
        self._text_image: Optional[bytes] = None

    @property
    def text_image(self) -> bytes:
        """The text segment as real machine words (lazily encoded).

        Instructions that have no single-word encoding (e.g. the
        absolute-address ``lw rd, symbol`` convenience form) appear as a
        zero word rather than failing the whole image.
        """
        if self._text_image is None:
            from repro.riscv.encoding import EncodingError, encode

            image = bytearray()
            for instruction in self.program.instructions:
                try:
                    word = encode(instruction)
                except EncodingError:
                    word = 0
                image += word.to_bytes(4, "little")
            self._text_image = bytes(image)
        return self._text_image

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------

    def read_memory(self, address: int, size: int) -> bytes:
        chunk = bytearray()
        for offset in range(size):
            chunk.append(self._read_byte(address + offset))
        return bytes(chunk)

    def write_memory(self, address: int, raw: bytes) -> None:
        for offset, byte in enumerate(raw):
            self._write_byte(address + offset, byte)

    def _read_byte(self, address: int) -> int:
        segment, offset = self._locate(address, "read")
        return segment[offset]

    def _write_byte(self, address: int, byte: int) -> None:
        segment, offset = self._locate(address, "write")
        segment[offset] = byte & 0xFF

    def _locate(self, address: int, operation: str):
        if DATA_BASE <= address < DATA_BASE + len(self._data):
            return self._data, address - DATA_BASE
        if STACK_TOP - STACK_SIZE <= address < STACK_TOP:
            return self._stack, address - (STACK_TOP - STACK_SIZE)
        if HEAP_BASE <= address < HEAP_BASE + len(self._heap):
            return self._heap, address - HEAP_BASE
        if (
            operation == "read"
            and TEXT_BASE <= address < TEXT_BASE + 4 * len(self.program.instructions)
        ):
            # The text segment is readable (a memory viewer pointed at it
            # shows the real encoded machine words) but not writable.
            return self.text_image, address - TEXT_BASE
        raise MachineFault(
            f"invalid {operation} at {address:#x} (pc={self.pc:#x})"
        )

    def read_word(self, address: int) -> int:
        return int.from_bytes(self.read_memory(address, 4), "little")

    def write_word(self, address: int, value: int) -> None:
        self.write_memory(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def read_cstring(self, address: int, limit: int = 4096) -> str:
        chars: List[int] = []
        for offset in range(limit):
            try:
                byte = self._read_byte(address + offset)
            except MachineFault:
                break
            if byte == 0:
                break
            chars.append(byte)
        return bytes(chars).decode("latin-1")

    # ------------------------------------------------------------------
    # Register helpers
    # ------------------------------------------------------------------

    def get_register(self, name_or_number) -> int:
        if isinstance(name_or_number, int):
            return self.registers[name_or_number]
        try:
            index = ABI_NAMES.index(name_or_number)
        except ValueError:
            if name_or_number == "pc":
                return self.pc
            if name_or_number.startswith("x"):
                index = int(name_or_number[1:])
            else:
                raise MachineFault(f"unknown register {name_or_number!r}") from None
        return self.registers[index]

    def register_map(self) -> Dict[str, int]:
        """All registers by ABI name, plus ``pc`` (unsigned 32-bit values)."""
        values = {
            name: self.registers[index] & 0xFFFFFFFF
            for index, name in enumerate(ABI_NAMES)
        }
        values["pc"] = self.pc & 0xFFFFFFFF
        return values

    def _set(self, register: int, value: int) -> None:
        if register != 0:
            self.registers[register] = _signed32(value)

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self.call_stack) - 1

    def current_function(self) -> str:
        return self.call_stack[-1].function

    def run(self) -> Iterator[Event]:
        """Execute until exit, yielding one event per instruction line."""
        try:
            while self.exit_code is None:
                instruction = self.program.instruction_at(self.pc)
                if instruction is None:
                    raise MachineFault(f"pc out of text segment: {self.pc:#x}")
                self._steps += 1
                if self._steps > self.max_steps:
                    raise MachineFault(
                        f"instruction budget of {self.max_steps} exceeded"
                    )
                yield LineEvent(
                    line=instruction.line,
                    function=self.current_function(),
                    depth=self.depth,
                )
                for event in self._execute(instruction):
                    yield event
        except MachineFault as fault:
            self.exit_code = 139
            self.error = str(fault)
        yield ExitEvent(code=self.exit_code, error=self.error)

    # ------------------------------------------------------------------
    # Instruction semantics
    # ------------------------------------------------------------------

    def _execute(self, instruction: Instruction) -> List[Event]:
        mnemonic = instruction.mnemonic
        ops = instruction.operands
        next_pc = self.pc + 4
        events: List[Event] = []
        regs = self.registers

        if mnemonic == "add":
            self._set(ops[0], regs[ops[1]] + regs[ops[2]])
        elif mnemonic == "sub":
            self._set(ops[0], regs[ops[1]] - regs[ops[2]])
        elif mnemonic == "and":
            self._set(ops[0], regs[ops[1]] & regs[ops[2]])
        elif mnemonic == "or":
            self._set(ops[0], regs[ops[1]] | regs[ops[2]])
        elif mnemonic == "xor":
            self._set(ops[0], regs[ops[1]] ^ regs[ops[2]])
        elif mnemonic == "sll":
            self._set(ops[0], regs[ops[1]] << (regs[ops[2]] & 31))
        elif mnemonic == "srl":
            self._set(ops[0], (regs[ops[1]] & 0xFFFFFFFF) >> (regs[ops[2]] & 31))
        elif mnemonic == "sra":
            self._set(ops[0], regs[ops[1]] >> (regs[ops[2]] & 31))
        elif mnemonic == "slt":
            self._set(ops[0], int(regs[ops[1]] < regs[ops[2]]))
        elif mnemonic == "sltu":
            self._set(
                ops[0],
                int((regs[ops[1]] & 0xFFFFFFFF) < (regs[ops[2]] & 0xFFFFFFFF)),
            )
        elif mnemonic == "mul":
            self._set(ops[0], regs[ops[1]] * regs[ops[2]])
        elif mnemonic == "mulh":
            self._set(ops[0], (regs[ops[1]] * regs[ops[2]]) >> 32)
        elif mnemonic in ("div", "divu"):
            divisor = regs[ops[2]]
            if divisor == 0:
                self._set(ops[0], -1)
            else:
                quotient = abs(regs[ops[1]]) // abs(divisor)
                if (regs[ops[1]] < 0) != (divisor < 0):
                    quotient = -quotient
                self._set(ops[0], quotient)
        elif mnemonic in ("rem", "remu"):
            divisor = regs[ops[2]]
            if divisor == 0:
                self._set(ops[0], regs[ops[1]])
            else:
                quotient = abs(regs[ops[1]]) // abs(divisor)
                if (regs[ops[1]] < 0) != (divisor < 0):
                    quotient = -quotient
                self._set(ops[0], regs[ops[1]] - quotient * divisor)
        elif mnemonic == "addi":
            self._set(ops[0], regs[ops[1]] + ops[2])
        elif mnemonic == "andi":
            self._set(ops[0], regs[ops[1]] & ops[2])
        elif mnemonic == "ori":
            self._set(ops[0], regs[ops[1]] | ops[2])
        elif mnemonic == "xori":
            self._set(ops[0], regs[ops[1]] ^ ops[2])
        elif mnemonic == "slti":
            self._set(ops[0], int(regs[ops[1]] < ops[2]))
        elif mnemonic == "sltiu":
            self._set(ops[0], int((regs[ops[1]] & 0xFFFFFFFF) < (ops[2] & 0xFFFFFFFF)))
        elif mnemonic == "slli":
            self._set(ops[0], regs[ops[1]] << (ops[2] & 31))
        elif mnemonic == "srli":
            self._set(ops[0], (regs[ops[1]] & 0xFFFFFFFF) >> (ops[2] & 31))
        elif mnemonic == "srai":
            self._set(ops[0], regs[ops[1]] >> (ops[2] & 31))
        elif mnemonic == "lui":
            self._set(ops[0], ops[1] << 12)
        elif mnemonic == "auipc":
            self._set(ops[0], self.pc + (ops[1] << 12))
        elif mnemonic == "lw":
            self._set(ops[0], _signed32(self.read_word(regs[ops[1]] + ops[2])))
        elif mnemonic == "lh":
            raw = self.read_memory(regs[ops[1]] + ops[2], 2)
            self._set(ops[0], int.from_bytes(raw, "little", signed=True))
        elif mnemonic == "lhu":
            raw = self.read_memory(regs[ops[1]] + ops[2], 2)
            self._set(ops[0], int.from_bytes(raw, "little"))
        elif mnemonic == "lb":
            raw = self.read_memory(regs[ops[1]] + ops[2], 1)
            self._set(ops[0], int.from_bytes(raw, "little", signed=True))
        elif mnemonic == "lbu":
            self._set(ops[0], self._read_byte(regs[ops[1]] + ops[2]))
        elif mnemonic == "sw":
            self.write_word(regs[ops[1]] + ops[2], regs[ops[0]])
        elif mnemonic == "sh":
            self.write_memory(
                regs[ops[1]] + ops[2],
                (regs[ops[0]] & 0xFFFF).to_bytes(2, "little"),
            )
        elif mnemonic == "sb":
            self._write_byte(regs[ops[1]] + ops[2], regs[ops[0]])
        elif mnemonic == "beq":
            if regs[ops[0]] == regs[ops[1]]:
                next_pc = ops[2]
        elif mnemonic == "bne":
            if regs[ops[0]] != regs[ops[1]]:
                next_pc = ops[2]
        elif mnemonic == "blt":
            if regs[ops[0]] < regs[ops[1]]:
                next_pc = ops[2]
        elif mnemonic == "bge":
            if regs[ops[0]] >= regs[ops[1]]:
                next_pc = ops[2]
        elif mnemonic == "bltu":
            if (regs[ops[0]] & 0xFFFFFFFF) < (regs[ops[1]] & 0xFFFFFFFF):
                next_pc = ops[2]
        elif mnemonic == "bgeu":
            if (regs[ops[0]] & 0xFFFFFFFF) >= (regs[ops[1]] & 0xFFFFFFFF):
                next_pc = ops[2]
        elif mnemonic == "jal":
            self._set(ops[0], self.pc + 4)
            next_pc = ops[1]
            if ops[0] == 1:  # linking call: push an inferred frame
                function = self.program.function_of(next_pc)
                self.call_stack.append(
                    RVFrame(
                        function=function,
                        return_address=self.pc + 4,
                        entry_sp=regs[2],
                    )
                )
                events.append(
                    CallEvent(
                        function=function,
                        line=_line_at(self.program, next_pc),
                        depth=self.depth,
                    )
                )
        elif mnemonic == "jalr":
            target = (regs[ops[1]] + ops[2]) & ~1
            self._set(ops[0], self.pc + 4)
            if ops[0] == 1:  # indirect linking call
                function = self.program.function_of(target)
                self.call_stack.append(
                    RVFrame(
                        function=function,
                        return_address=self.pc + 4,
                        entry_sp=regs[2],
                    )
                )
                events.append(
                    CallEvent(
                        function=function,
                        line=_line_at(self.program, target),
                        depth=self.depth,
                    )
                )
            elif ops[0] == 0 and len(self.call_stack) > 1:
                # ret (or tail jump through ra): pop the inferred frame
                frame = self.call_stack.pop()
                events.append(
                    ReturnEvent(
                        function=frame.function,
                        line=instruction.line,
                        depth=len(self.call_stack),
                        value=str(_signed32(regs[10])),  # a0 by convention
                    )
                )
            next_pc = target
        elif mnemonic == "ecall":
            events.extend(self._ecall())
        elif mnemonic == "ebreak":
            raise MachineFault("ebreak executed")
        else:  # pragma: no cover - assembler rejects unknown mnemonics
            raise MachineFault(f"illegal instruction {mnemonic}")

        self.pc = next_pc
        return events

    def _ecall(self) -> List[Event]:
        service = self.registers[17]  # a7
        argument = self.registers[10]  # a0
        if service == 1:  # print integer
            text = str(_signed32(argument))
            self.output.append(text)
            return [OutputEvent(text=text)]
        if service == 4:  # print string
            text = self.read_cstring(argument & 0xFFFFFFFF)
            self.output.append(text)
            return [OutputEvent(text=text)]
        if service == 11:  # print character
            text = chr(argument & 0xFF)
            self.output.append(text)
            return [OutputEvent(text=text)]
        if service == 9:  # sbrk
            size = argument
            address = self._heap_brk
            self._heap.extend(bytes(size))
            self._heap_brk += size
            self._set(10, address)
            return []
        if service == 10:  # exit(0)
            self.exit_code = 0
            return []
        if service == 93:  # exit(a0)
            self.exit_code = argument & 0xFF
            return []
        raise MachineFault(f"unknown ecall service {service}")


def _signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= 1 << 31 else value


def _line_at(program: Program, address: int) -> int:
    instruction = program.instruction_at(address)
    return instruction.line if instruction else 0
