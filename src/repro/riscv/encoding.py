"""Binary encoding and decoding of RV32IM instructions.

The simulator executes :class:`~repro.riscv.assembler.Instruction` records
directly, but the *image* of a program matters to the tools the paper
targets (a compiler course shows students real machine words), so this
module provides the faithful 32-bit encodings:

- :func:`encode` — one instruction to its little-endian word;
- :func:`decode` — one word back to ``(mnemonic, operands)``;
- :func:`encode_program` — the whole text segment as bytes (what a memory
  viewer pointed at the text segment displays).

Branch and jump targets are held as absolute addresses in ``Instruction``
operands; encoding converts them to pc-relative offsets and decoding
converts back, so ``decode(encode(i), i.address)`` is the identity on every
encodable instruction (property-tested).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.errors import TrackerError
from repro.riscv.assembler import Instruction, Program

OP_R = 0b0110011
OP_I = 0b0010011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_BRANCH = 0b1100011
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_SYSTEM = 0b1110011

#: mnemonic -> (funct3, funct7) for R-type instructions
R_FUNCTS = {
    "add": (0b000, 0b0000000),
    "sub": (0b000, 0b0100000),
    "sll": (0b001, 0b0000000),
    "slt": (0b010, 0b0000000),
    "sltu": (0b011, 0b0000000),
    "xor": (0b100, 0b0000000),
    "srl": (0b101, 0b0000000),
    "sra": (0b101, 0b0100000),
    "or": (0b110, 0b0000000),
    "and": (0b111, 0b0000000),
    "mul": (0b000, 0b0000001),
    "mulh": (0b001, 0b0000001),
    "div": (0b100, 0b0000001),
    "divu": (0b101, 0b0000001),
    "rem": (0b110, 0b0000001),
    "remu": (0b111, 0b0000001),
}

I_FUNCTS = {
    "addi": 0b000,
    "slti": 0b010,
    "sltiu": 0b011,
    "xori": 0b100,
    "ori": 0b110,
    "andi": 0b111,
}

SHIFT_FUNCTS = {
    "slli": (0b001, 0b0000000),
    "srli": (0b101, 0b0000000),
    "srai": (0b101, 0b0100000),
}

LOAD_FUNCTS = {"lb": 0b000, "lh": 0b001, "lw": 0b010, "lbu": 0b100, "lhu": 0b101}
STORE_FUNCTS = {"sb": 0b000, "sh": 0b001, "sw": 0b010}
BRANCH_FUNCTS = {
    "beq": 0b000,
    "bne": 0b001,
    "blt": 0b100,
    "bge": 0b101,
    "bltu": 0b110,
    "bgeu": 0b111,
}

_R_BY_FUNCTS = {functs: name for name, functs in R_FUNCTS.items()}
_I_BY_FUNCT = {funct: name for name, funct in I_FUNCTS.items()}
_LOAD_BY_FUNCT = {funct: name for name, funct in LOAD_FUNCTS.items()}
_STORE_BY_FUNCT = {funct: name for name, funct in STORE_FUNCTS.items()}
_BRANCH_BY_FUNCT = {funct: name for name, funct in BRANCH_FUNCTS.items()}


class EncodingError(TrackerError):
    """The instruction cannot be represented in a single RV32 word."""


def _check_range(value: int, bits: int, what: str) -> None:
    low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not low <= value <= high:
        raise EncodingError(
            f"{what} {value} does not fit in {bits} signed bits"
        )


def encode(instruction: Instruction) -> int:
    """Encode one instruction into its 32-bit word."""
    mnemonic = instruction.mnemonic
    ops = instruction.operands
    if mnemonic in R_FUNCTS:
        funct3, funct7 = R_FUNCTS[mnemonic]
        rd, rs1, rs2 = ops
        return (
            (funct7 << 25) | (rs2 << 20) | (rs1 << 15)
            | (funct3 << 12) | (rd << 7) | OP_R
        )
    if mnemonic in I_FUNCTS:
        rd, rs1, imm = ops
        _check_range(imm, 12, f"{mnemonic} immediate")
        return (
            ((imm & 0xFFF) << 20) | (rs1 << 15)
            | (I_FUNCTS[mnemonic] << 12) | (rd << 7) | OP_I
        )
    if mnemonic in SHIFT_FUNCTS:
        funct3, funct7 = SHIFT_FUNCTS[mnemonic]
        rd, rs1, shamt = ops
        if not 0 <= shamt < 32:
            raise EncodingError(f"shift amount {shamt} out of range")
        return (
            (funct7 << 25) | (shamt << 20) | (rs1 << 15)
            | (funct3 << 12) | (rd << 7) | OP_I
        )
    if mnemonic in LOAD_FUNCTS:
        rd, rs1, offset = ops
        _check_range(offset, 12, "load offset")
        return (
            ((offset & 0xFFF) << 20) | (rs1 << 15)
            | (LOAD_FUNCTS[mnemonic] << 12) | (rd << 7) | OP_LOAD
        )
    if mnemonic in STORE_FUNCTS:
        rs2, rs1, offset = ops
        _check_range(offset, 12, "store offset")
        imm = offset & 0xFFF
        return (
            ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15)
            | (STORE_FUNCTS[mnemonic] << 12) | ((imm & 0x1F) << 7) | OP_STORE
        )
    if mnemonic in BRANCH_FUNCTS:
        rs1, rs2, target = ops
        offset = target - instruction.address
        _check_range(offset, 13, "branch offset")
        if offset % 2:
            raise EncodingError("branch offset must be even")
        imm = offset & 0x1FFF
        return (
            (((imm >> 12) & 1) << 31)
            | (((imm >> 5) & 0x3F) << 25)
            | (rs2 << 20)
            | (rs1 << 15)
            | (BRANCH_FUNCTS[mnemonic] << 12)
            | (((imm >> 1) & 0xF) << 8)
            | (((imm >> 11) & 1) << 7)
            | OP_BRANCH
        )
    if mnemonic == "jal":
        rd, target = ops
        offset = target - instruction.address
        _check_range(offset, 21, "jal offset")
        if offset % 2:
            raise EncodingError("jal offset must be even")
        imm = offset & 0x1FFFFF
        return (
            (((imm >> 20) & 1) << 31)
            | (((imm >> 1) & 0x3FF) << 21)
            | (((imm >> 11) & 1) << 20)
            | (((imm >> 12) & 0xFF) << 12)
            | (rd << 7)
            | OP_JAL
        )
    if mnemonic == "jalr":
        rd, rs1, offset = ops
        _check_range(offset, 12, "jalr offset")
        return (
            ((offset & 0xFFF) << 20) | (rs1 << 15) | (rd << 7) | OP_JALR
        )
    if mnemonic in ("lui", "auipc"):
        rd, imm = ops
        if not 0 <= imm < (1 << 20):
            raise EncodingError(f"{mnemonic} immediate {imm} out of range")
        opcode = OP_LUI if mnemonic == "lui" else OP_AUIPC
        return (imm << 12) | (rd << 7) | opcode
    if mnemonic == "ecall":
        return OP_SYSTEM
    if mnemonic == "ebreak":
        return (1 << 20) | OP_SYSTEM
    raise EncodingError(f"cannot encode {mnemonic!r}")


def decode(word: int, address: int = 0) -> Tuple[str, Tuple]:
    """Decode a 32-bit word into ``(mnemonic, operands)``.

    Branch/jump targets come back as absolute addresses computed against
    ``address``, mirroring the assembler's operand convention.
    """
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F
    if opcode == OP_R:
        name = _R_BY_FUNCTS.get((funct3, funct7))
        if name is None:
            raise EncodingError(f"unknown R-type word {word:#010x}")
        return name, (rd, rs1, rs2)
    if opcode == OP_I:
        if funct3 == 0b001 or (funct3 == 0b101):
            for name, (f3, f7) in SHIFT_FUNCTS.items():
                if f3 == funct3 and f7 == funct7:
                    return name, (rd, rs1, rs2)  # rs2 field = shamt
            raise EncodingError(f"unknown shift word {word:#010x}")
        name = _I_BY_FUNCT.get(funct3)
        if name is None:
            raise EncodingError(f"unknown I-type word {word:#010x}")
        return name, (rd, rs1, _signed(word >> 20, 12))
    if opcode == OP_LOAD:
        name = _LOAD_BY_FUNCT.get(funct3)
        if name is None:
            raise EncodingError(f"unknown load word {word:#010x}")
        return name, (rd, rs1, _signed(word >> 20, 12))
    if opcode == OP_STORE:
        name = _STORE_BY_FUNCT.get(funct3)
        if name is None:
            raise EncodingError(f"unknown store word {word:#010x}")
        offset = _signed(((word >> 25) << 5) | rd, 12)
        return name, (rs2, rs1, offset)
    if opcode == OP_BRANCH:
        name = _BRANCH_BY_FUNCT.get(funct3)
        if name is None:
            raise EncodingError(f"unknown branch word {word:#010x}")
        imm = (
            (((word >> 31) & 1) << 12)
            | (((word >> 7) & 1) << 11)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1)
        )
        return name, (rs1, rs2, address + _signed(imm, 13))
    if opcode == OP_JAL:
        imm = (
            (((word >> 31) & 1) << 20)
            | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 1) << 11)
            | (((word >> 21) & 0x3FF) << 1)
        )
        return "jal", (rd, address + _signed(imm, 21))
    if opcode == OP_JALR:
        return "jalr", (rd, rs1, _signed(word >> 20, 12))
    if opcode == OP_LUI:
        return "lui", (rd, word >> 12)
    if opcode == OP_AUIPC:
        return "auipc", (rd, word >> 12)
    if opcode == OP_SYSTEM:
        return ("ebreak" if (word >> 20) & 0xFFF == 1 else "ecall"), ()
    raise EncodingError(f"unknown opcode in word {word:#010x}")


def encode_program(program: Program) -> bytes:
    """The program's text segment as little-endian machine words."""
    image = bytearray()
    for instruction in program.instructions:
        image += encode(instruction).to_bytes(4, "little")
    return bytes(image)


def disassemble_word(word: int, address: int = 0) -> str:
    """A human-readable rendering of one machine word."""
    try:
        mnemonic, operands = decode(word, address)
    except EncodingError:
        return f".word {word:#010x}"
    rendered = ", ".join(str(operand) for operand in operands)
    return f"{mnemonic} {rendered}".strip()


def _signed(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value
