"""The mini-C standard library.

The interpreter provides these functions natively (there is no libc to
link), which plays the role of the paper's thin runtime-override library:
the allocator entry points report every allocation to the interpreter's
heap-block registry, so the debug tracker always knows whether a pointer
targets a live heap block and how large it is.

``printf`` supports the directives teaching programs use:
``%d %i %u %ld %lu %zu %c %s %f %g %e %x %X %p %%`` with width/precision.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Tuple

from repro.minic.ctypes import (
    CHAR_PTR,
    CType,
    DOUBLE,
    INT,
    IntType,
    LONG,
    PointerType,
    ULONG,
    VOID,
    VOID_PTR,
)
from repro.minic.memory import Memory, NULL

_FORMAT_RE = re.compile(r"%[-+ #0]*\d*(?:\.\d+)?(?:hh|h|ll|l|z)?[diucsfgeExXp%]")


class CRuntimeError(Exception):
    """A runtime error in the inferior (the mini-C analog of a signal)."""

    def __init__(self, message: str, line: Optional[int] = None, code: int = 1):
        super().__init__(message)
        self.line = line
        self.code = code


def format_printf(memory: Memory, fmt: str, args: List[Tuple[CType, object]]) -> str:
    """Render a printf format string against typed arguments."""
    output: List[str] = []
    arg_index = 0
    position = 0
    for match in _FORMAT_RE.finditer(fmt):
        output.append(fmt[position : match.start()])
        position = match.end()
        spec = match.group(0)
        conversion = spec[-1]
        if conversion == "%":
            output.append("%")
            continue
        if arg_index >= len(args):
            raise CRuntimeError(f"printf: missing argument for {spec!r}")
        ctype, value = args[arg_index]
        arg_index += 1
        # Strip the length modifier: Python formatting is width-agnostic.
        py_spec = "%" + re.sub(r"hh|h|ll|l|z", "", spec[1:])
        if conversion == "u":
            # %u reinterprets the bits as unsigned, as C does.
            width = ctype.size if getattr(ctype, "size", 0) in (1, 2, 4, 8) else 4
            unsigned = int(value) & ((1 << (8 * width)) - 1)
            output.append(py_spec.replace("u", "d") % unsigned)
        elif conversion in "di":
            output.append(py_spec.replace("i", "d") % int(value))
        elif conversion == "c":
            output.append(py_spec % chr(int(value) & 0xFF))
        elif conversion == "s":
            text = memory.read_cstring(int(value)) if int(value) != NULL else "(null)"
            output.append(py_spec % text)
        elif conversion in "fge" or conversion == "E":
            output.append(py_spec % float(value))
        elif conversion in "xX":
            output.append(py_spec % (int(value) & (1 << 64) - 1))
        elif conversion == "p":
            output.append("0x%x" % (int(value) & (1 << 64) - 1))
    output.append(fmt[position:])
    return "".join(output)


class Builtin:
    """A native function callable from mini-C code.

    Attributes:
        name: C-visible name.
        return_type: declared return type.
        handler: ``handler(interp, args) -> (return_value, [events])`` where
            ``args`` is a list of ``(ctype, python_value)`` pairs.
    """

    def __init__(self, name: str, return_type: CType, handler: Callable):
        self.name = name
        self.return_type = return_type
        self.handler = handler


def _builtin_printf(interp, args):
    if not args:
        raise CRuntimeError("printf needs a format string")
    fmt = interp.memory.read_cstring(int(args[0][1]))
    text = format_printf(interp.memory, fmt, args[1:])
    return (INT, len(text)), [("output", text)]


def _builtin_puts(interp, args):
    text = interp.memory.read_cstring(int(args[0][1]))
    return (INT, len(text) + 1), [("output", text + "\n")]


def _builtin_putchar(interp, args):
    code = int(args[0][1]) & 0xFF
    return (INT, code), [("output", chr(code))]


def _builtin_malloc(interp, args):
    size = int(args[0][1])
    address = interp.memory.malloc(size)
    return (VOID_PTR, address), [("alloc", "malloc", address, size)]


def _builtin_calloc(interp, args):
    count, size = int(args[0][1]), int(args[1][1])
    address = interp.memory.calloc(count, size)
    return (VOID_PTR, address), [("alloc", "calloc", address, count * size)]


def _builtin_free(interp, args):
    address = int(args[0][1])
    interp.memory.free(address)
    return (VOID, None), [("alloc", "free", address, 0)]


def _builtin_realloc(interp, args):
    address, size = int(args[0][1]), int(args[1][1])
    new_address = interp.memory.realloc(address, size)
    return (VOID_PTR, new_address), [("alloc", "realloc", new_address, size)]


def _builtin_strlen(interp, args):
    text = interp.memory.read_cstring(int(args[0][1]))
    return (ULONG, len(text)), []


def _builtin_strcpy(interp, args):
    dest, src = int(args[0][1]), int(args[1][1])
    text = interp.memory.read_cstring(src)
    interp.memory.write_cstring(dest, text)
    return (CHAR_PTR, dest), []


def _string_difference(left: str, right: str) -> int:
    """glibc-style comparison result: the unsigned-byte difference at the
    first mismatch (0 when equal), which is what teaching examples print."""
    for a, b in zip(left, right):
        if a != b:
            return ord(a) - ord(b)
    if len(left) > len(right):
        return ord(left[len(right)])
    if len(right) > len(left):
        return -ord(right[len(left)])
    return 0


def _builtin_strcmp(interp, args):
    left = interp.memory.read_cstring(int(args[0][1]))
    right = interp.memory.read_cstring(int(args[1][1]))
    return (INT, _string_difference(left, right)), []


def _builtin_strncmp(interp, args):
    count = int(args[2][1])
    left = interp.memory.read_cstring(int(args[0][1]))[:count]
    right = interp.memory.read_cstring(int(args[1][1]))[:count]
    return (INT, _string_difference(left, right)), []


def _builtin_strcat(interp, args):
    dest, src = int(args[0][1]), int(args[1][1])
    combined = interp.memory.read_cstring(dest) + interp.memory.read_cstring(src)
    interp.memory.write_cstring(dest, combined)
    return (CHAR_PTR, dest), []


def _builtin_sprintf(interp, args):
    dest = int(args[0][1])
    fmt = interp.memory.read_cstring(int(args[1][1]))
    text = format_printf(interp.memory, fmt, args[2:])
    interp.memory.write_cstring(dest, text)
    return (INT, len(text)), []


def _builtin_atoi(interp, args):
    text = interp.memory.read_cstring(int(args[0][1])).strip()
    import re as _re

    match = _re.match(r"[+-]?\d+", text)
    return (INT, int(match.group(0)) if match else 0), []


def _builtin_memset(interp, args):
    address, byte, count = (int(a[1]) for a in args)
    interp.memory.write(address, bytes([byte & 0xFF]) * count)
    return (VOID_PTR, address), []


def _builtin_memcpy(interp, args):
    dest, src, count = (int(a[1]) for a in args)
    interp.memory.write(dest, interp.memory.read(src, count))
    return (VOID_PTR, dest), []


def _builtin_abs(interp, args):
    return (INT, abs(int(args[0][1]))), []


def _builtin_exit(interp, args):
    raise _ExitCalled(int(args[0][1]))


def _builtin_rand(interp, args):
    # Deterministic LCG (glibc constants) so runs are reproducible.
    interp.rand_state = (interp.rand_state * 1103515245 + 12345) & 0x7FFFFFFF
    return (INT, interp.rand_state), []


def _builtin_srand(interp, args):
    interp.rand_state = int(args[0][1]) & 0x7FFFFFFF
    return (VOID, None), []


def _builtin_assert(interp, args):
    if int(args[0][1]) == 0:
        raise CRuntimeError("assertion failed", code=134)
    return (VOID, None), []


class _ExitCalled(Exception):
    """Raised by the ``exit`` builtin to unwind the interpreter."""

    def __init__(self, code: int):
        super().__init__(f"exit({code})")
        self.code = code


BUILTINS: Dict[str, Builtin] = {
    builtin.name: builtin
    for builtin in [
        Builtin("printf", INT, _builtin_printf),
        Builtin("puts", INT, _builtin_puts),
        Builtin("putchar", INT, _builtin_putchar),
        Builtin("malloc", VOID_PTR, _builtin_malloc),
        Builtin("calloc", VOID_PTR, _builtin_calloc),
        Builtin("free", VOID, _builtin_free),
        Builtin("realloc", VOID_PTR, _builtin_realloc),
        Builtin("strlen", ULONG, _builtin_strlen),
        Builtin("strcpy", CHAR_PTR, _builtin_strcpy),
        Builtin("strcmp", INT, _builtin_strcmp),
        Builtin("strncmp", INT, _builtin_strncmp),
        Builtin("strcat", CHAR_PTR, _builtin_strcat),
        Builtin("sprintf", INT, _builtin_sprintf),
        Builtin("atoi", INT, _builtin_atoi),
        Builtin("memset", VOID_PTR, _builtin_memset),
        Builtin("memcpy", VOID_PTR, _builtin_memcpy),
        Builtin("abs", INT, _builtin_abs),
        Builtin("exit", VOID, _builtin_exit),
        Builtin("rand", INT, _builtin_rand),
        Builtin("srand", VOID, _builtin_srand),
        Builtin("assert", VOID, _builtin_assert),
    ]
}
