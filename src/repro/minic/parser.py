"""Recursive-descent parser for mini-C.

Produces the :mod:`repro.minic.ast` tree. The supported language is the C
subset that teaching programs use (all of the paper's examples fit): scalar
types, pointers (including function pointers), arrays, structs, brace
initializers, the full expression grammar with C precedence, and the usual
statements, plus ``enum``, ``switch`` (with fallthrough) and ``typedef``.
The preprocessor is out of scope; ``#include`` lines are ignored because
the interpreter provides its own standard library.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.errors import ProgramLoadError
from repro.minic import ast
from repro.minic.ctypes import (
    BASIC_TYPES,
    CType,
    FunctionType,
    ArrayType,
    PointerType,
    StructType,
    VOID,
)
from repro.minic.lexer import Token, tokenize


class ParseError(ProgramLoadError):
    """Source text that is not valid mini-C."""


_TYPE_KEYWORDS = frozenset(
    {
        "enum",
        "void",
        "char",
        "short",
        "int",
        "long",
        "unsigned",
        "signed",
        "float",
        "double",
        "struct",
        "const",
        "static",
    }
)

_ASSIGN_OPS = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}
)

# Binary operator precedence: higher binds tighter.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


def parse(source: str, filename: str = "<string>") -> ast.Program:
    """Parse mini-C source text into a :class:`repro.minic.ast.Program`."""
    return _Parser(tokenize(source, filename), filename).parse_program()


class _Parser:
    def __init__(self, tokens: List[Token], filename: str):
        self.tokens = tokens
        self.pos = 0
        self.filename = filename
        self.structs: dict = {}
        self.typedefs: dict = {}
        self.enum_constants: dict = {}

    # ------------------------------------------------------------------
    # Token stream helpers
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def _match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self._check(kind, text):
            want = text or kind
            raise self._error(f"expected {want!r}, found {self.current.text!r}")
        return self._advance()

    def _error(self, message: str) -> ParseError:
        return ParseError(f"{self.filename}:{self.current.line}: {message}")

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------

    def _at_type(self) -> bool:
        token = self.current
        if token.kind == "keyword" and token.text in _TYPE_KEYWORDS:
            return True
        return token.kind == "id" and token.text in self.typedefs

    def _parse_base_type(self) -> CType:
        """Parse the keyword sequence naming a base type (or struct ref)."""
        while self._match("keyword", "const") or self._match("keyword", "static"):
            pass
        if self._match("keyword", "struct"):
            tag = self._expect("id").text
            if self._check("op", "{"):
                return self._parse_struct_body(tag)
            if tag not in self.structs:
                raise self._error(f"unknown struct {tag!r}")
            return self.structs[tag]
        if self._match("keyword", "enum"):
            return self._parse_enum()
        if self.current.kind == "id" and self.current.text in self.typedefs:
            return self.typedefs[self._advance().text]
        words: List[str] = []
        while self.current.kind == "keyword" and self.current.text in (
            "void",
            "char",
            "short",
            "int",
            "long",
            "unsigned",
            "signed",
            "float",
            "double",
        ):
            words.append(self._advance().text)
        if not words:
            raise self._error(f"expected a type, found {self.current.text!r}")
        name = " ".join(w for w in words if w != "signed") or "int"
        # Normalize a few spellings ("long int" -> "long", ...).
        name = {
            "long int": "long",
            "short int": "short",
            "unsigned long int": "unsigned long",
            "long long": "long",
            "long long int": "long",
        }.get(name, name)
        if name not in BASIC_TYPES:
            raise self._error(f"unsupported type {' '.join(words)!r}")
        return BASIC_TYPES[name]

    def _parse_struct_body(self, tag: str) -> StructType:
        self._expect("op", "{")
        # Register the tag before parsing members so self-referential
        # structs (struct node { ...; struct node *next; }) resolve.
        struct = self.structs.get(tag)
        if struct is None:
            struct = StructType(tag, [])
            self.structs[tag] = struct
        members: List[Tuple[str, CType]] = []
        while not self._check("op", "}"):
            base = self._parse_base_type()
            while True:
                member_type, member_name = self._parse_declarator(base)
                if member_name is None:
                    raise self._error("struct member needs a name")
                if member_type is struct:
                    raise self._error(
                        f"struct {tag} cannot contain itself by value"
                    )
                members.append((member_name, member_type))
                if not self._match("op", ","):
                    break
            self._expect("op", ";")
        self._expect("op", "}")
        struct.set_members(members)
        return struct

    def _parse_enum(self) -> CType:
        """An enum specifier. Enumerators become int constants; the enum
        type itself is ``int``, as C guarantees for this subset."""
        self._match("id")  # optional tag, unused beyond documentation
        if self._match("op", "{"):
            next_value = 0
            while not self._check("op", "}"):
                name = self._expect("id").text
                if self._match("op", "="):
                    token = self._expect("int")
                    next_value = token.value
                self.enum_constants[name] = next_value
                next_value += 1
                if not self._match("op", ","):
                    break
            self._expect("op", "}")
        from repro.minic.ctypes import INT
        return INT

    def _parse_declarator(self, base: CType) -> Tuple[CType, Optional[str]]:
        """Parse ``*``s, a name, array suffixes, or a function-pointer form.

        Returns the full type and the declared name (``None`` for abstract
        declarators as in casts and ``sizeof``).
        """
        ctype = base
        while self._match("op", "*"):
            ctype = PointerType(ctype)
        # Function pointer: type (*name)(params)
        if self._check("op", "(") and self._peek(1).text == "*":
            self._advance()  # (
            self._advance()  # *
            name = self._match("id")
            self._expect("op", ")")
            self._expect("op", "(")
            params = self._parse_param_types()
            self._expect("op", ")")
            fn_type = FunctionType(ctype, params)
            return PointerType(fn_type), name.text if name else None
        name_token = self._match("id")
        name = name_token.text if name_token else None
        # Array suffixes, outermost dimension first.
        dimensions: List[int] = []
        while self._match("op", "["):
            if self._check("op", "]"):
                # Unsized arrays get length 0 here; initializers fix it up.
                dimensions.append(0)
            else:
                size_token = self._expect("int")
                dimensions.append(size_token.value)
            self._expect("op", "]")
        for dim in reversed(dimensions):
            ctype = ArrayType(ctype, dim)
        return ctype, name

    def _parse_param_types(self) -> List[CType]:
        params: List[CType] = []
        if self._check("op", ")"):
            return params
        while True:
            if self._match("op", "..."):
                break
            base = self._parse_base_type()
            ctype, _ = self._parse_declarator(base)
            if not isinstance(ctype, type(VOID)):
                params.append(ctype)
            if not self._match("op", ","):
                break
        return params

    def _parse_type_name(self) -> CType:
        """A type without a declared name, for casts and ``sizeof``."""
        base = self._parse_base_type()
        ctype, name = self._parse_declarator(base)
        if name is not None:
            raise self._error("unexpected name in type")
        return ctype

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program(
            line=1, globals=[], functions=[], structs=self.structs,
            enum_constants=self.enum_constants,
            filename=self.filename,
        )
        while not self._check("eof"):
            if self._match("keyword", "typedef"):
                base = self._parse_base_type()
                ctype, name = self._parse_declarator(base)
                if name is None:
                    raise self._error("typedef needs a name")
                self.typedefs[name] = ctype
                self._expect("op", ";")
                continue
            line = self.current.line
            if self._check("keyword", "struct") and self._peek(2).text == "{":
                # Bare struct definition: struct Tag { ... };
                self._advance()
                tag = self._expect("id").text
                self._parse_struct_body(tag)
                self._expect("op", ";")
                continue
            base = self._parse_base_type()
            if self._check("op", ";"):
                self._advance()
                continue
            ctype, name = self._parse_declarator(base)
            if name is None:
                raise self._error("expected a declaration name")
            if self._check("op", "("):
                program.functions.append(
                    self._parse_function(ctype, name, line)
                )
            else:
                self._parse_global_tail(program, base, ctype, name, line)
        return program

    def _parse_function(
        self, return_type: CType, name: str, line: int
    ) -> ast.FunctionDef:
        self._expect("op", "(")
        params: List[ast.Parameter] = []
        if not self._check("op", ")"):
            while True:
                if self._match("keyword", "void") and self._check("op", ")"):
                    break
                # "void" consumed above may actually be "void *x"; rewind not
                # needed because _parse_declarator handles the pointer case
                # when we pass VOID explicitly.
                if (
                    self.tokens[self.pos - 1].text == "void"
                    and self.tokens[self.pos - 1].kind == "keyword"
                ):
                    base: CType = VOID
                else:
                    base = self._parse_base_type()
                param_type, param_name = self._parse_declarator(base)
                if isinstance(param_type, ArrayType):
                    # Array parameters decay to pointers, as in C.
                    param_type = PointerType(param_type.element)
                if param_name is None:
                    raise self._error("parameter needs a name")
                params.append(ast.Parameter(param_name, param_type))
                if not self._match("op", ","):
                    break
        self._expect("op", ")")
        if self._match("op", ";"):
            # Forward declaration: record an empty body; a later definition
            # with the same name replaces it during interpretation.
            body = ast.Compound(line=line, body=[])
            return ast.FunctionDef(line, name, return_type, params, body, line)
        body = self._parse_compound()
        end_line = self.tokens[self.pos - 1].line
        return ast.FunctionDef(line, name, return_type, params, body, end_line)

    def _parse_global_tail(
        self,
        program: ast.Program,
        base: CType,
        first_type: CType,
        first_name: str,
        line: int,
    ) -> None:
        declarations = [(first_type, first_name)]
        initializers = [self._parse_optional_initializer()]
        while self._match("op", ","):
            ctype, name = self._parse_declarator(base)
            if name is None:
                raise self._error("expected a declaration name")
            declarations.append((ctype, name))
            initializers.append(self._parse_optional_initializer())
        self._expect("op", ";")
        for (ctype, name), init in zip(declarations, initializers):
            program.globals.append(
                ast.Declaration(line=line, name=name, ctype=ctype, init=init)
            )

    def _parse_optional_initializer(self):
        if self._match("op", "="):
            return self._parse_initializer()
        return None

    def _parse_initializer(self):
        if self._match("op", "{"):
            items = []
            if not self._check("op", "}"):
                while True:
                    items.append(self._parse_initializer())
                    if not self._match("op", ","):
                        break
                    if self._check("op", "}"):
                        break  # trailing comma
            self._expect("op", "}")
            return items
        return self._parse_assignment()

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _parse_compound(self) -> ast.Compound:
        open_brace = self._expect("op", "{")
        body: List[ast.Stmt] = []
        while not self._check("op", "}"):
            if self._check("eof"):
                raise self._error("unterminated block")
            body.append(self._parse_statement())
        self._expect("op", "}")
        return ast.Compound(line=open_brace.line, body=body)

    def _parse_statement(self) -> ast.Stmt:
        token = self.current
        if self._check("op", "{"):
            return self._parse_compound()
        if self._at_type():
            return self._parse_local_declaration()
        if self._check("keyword", "if"):
            return self._parse_if()
        if self._check("keyword", "while"):
            return self._parse_while()
        if self._check("keyword", "do"):
            return self._parse_do_while()
        if self._check("keyword", "for"):
            return self._parse_for()
        if self._check("keyword", "switch"):
            return self._parse_switch()
        if self._match("keyword", "return"):
            value = None
            if not self._check("op", ";"):
                value = self._parse_expression()
            self._expect("op", ";")
            return ast.Return(line=token.line, value=value)
        if self._match("keyword", "break"):
            self._expect("op", ";")
            return ast.Break(line=token.line)
        if self._match("keyword", "continue"):
            self._expect("op", ";")
            return ast.Continue(line=token.line)
        if self._match("op", ";"):
            return ast.Compound(line=token.line, body=[])
        expr = self._parse_expression()
        self._expect("op", ";")
        return ast.ExprStmt(line=token.line, expr=expr)

    def _parse_local_declaration(self) -> ast.Stmt:
        line = self.current.line
        base = self._parse_base_type()
        statements: List[ast.Stmt] = []
        while True:
            ctype, name = self._parse_declarator(base)
            if name is None:
                raise self._error("expected a declaration name")
            init = self._parse_optional_initializer()
            statements.append(
                ast.Declaration(line=line, name=name, ctype=ctype, init=init)
            )
            if not self._match("op", ","):
                break
        self._expect("op", ";")
        if len(statements) == 1:
            return statements[0]
        return ast.Compound(line=line, body=statements)

    def _parse_switch(self) -> ast.Switch:
        token = self._expect("keyword", "switch")
        self._expect("op", "(")
        expr = self._parse_expression()
        self._expect("op", ")")
        self._expect("op", "{")
        cases: List[ast.SwitchCase] = []
        while not self._check("op", "}"):
            if self._match("keyword", "case"):
                case_line = self.tokens[self.pos - 1].line
                match = self._parse_conditional()
                self._expect("op", ":")
                cases.append(ast.SwitchCase(match=match, body=[], line=case_line))
            elif self._match("keyword", "default"):
                case_line = self.tokens[self.pos - 1].line
                self._expect("op", ":")
                cases.append(ast.SwitchCase(match=None, body=[], line=case_line))
            else:
                if not cases:
                    raise self._error("statement before the first case label")
                cases[-1].body.append(self._parse_statement())
        self._expect("op", "}")
        return ast.Switch(line=token.line, expr=expr, cases=cases)

    def _parse_if(self) -> ast.If:
        token = self._expect("keyword", "if")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        then = self._parse_statement()
        other = None
        if self._match("keyword", "else"):
            other = self._parse_statement()
        return ast.If(line=token.line, cond=cond, then=then, other=other)

    def _parse_while(self) -> ast.While:
        token = self._expect("keyword", "while")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        body = self._parse_statement()
        return ast.While(line=token.line, cond=cond, body=body)

    def _parse_do_while(self) -> ast.DoWhile:
        token = self._expect("keyword", "do")
        body = self._parse_statement()
        self._expect("keyword", "while")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.DoWhile(line=token.line, body=body, cond=cond)

    def _parse_for(self) -> ast.For:
        token = self._expect("keyword", "for")
        self._expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self._check("op", ";"):
            if self._at_type():
                init = self._parse_local_declaration()
            else:
                expr = self._parse_expression()
                init = ast.ExprStmt(line=token.line, expr=expr)
                self._expect("op", ";")
        else:
            self._advance()
        cond = None
        if not self._check("op", ";"):
            cond = self._parse_expression()
        self._expect("op", ";")
        step = None
        if not self._check("op", ")"):
            step = self._parse_expression()
        self._expect("op", ")")
        body = self._parse_statement()
        return ast.For(
            line=token.line, init=init, cond=cond, step=step, body=body
        )

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        expr = self._parse_assignment()
        while self._match("op", ","):
            right = self._parse_assignment()
            expr = ast.Binary(line=expr.line, op=",", left=expr, right=right)
        return expr

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_conditional()
        if self.current.kind == "op" and self.current.text in _ASSIGN_OPS:
            op = self._advance().text
            right = self._parse_assignment()
            return ast.Assign(line=left.line, op=op, target=left, value=right)
        return left

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._match("op", "?"):
            then = self._parse_expression()
            self._expect("op", ":")
            other = self._parse_conditional()
            return ast.Conditional(
                line=cond.line, cond=cond, then=then, other=other
            )
        return cond

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self.current
            precedence = _BINARY_PRECEDENCE.get(
                token.text if token.kind == "op" else ""
            )
            if precedence is None or precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(
                line=left.line, op=token.text, left=left, right=right
            )

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.text in ("-", "+", "!", "~", "&", "*"):
            self._advance()
            operand = self._parse_unary()
            if token.text == "+":
                return operand
            return ast.Unary(line=token.line, op=token.text, operand=operand)
        if token.kind == "op" and token.text in ("++", "--"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(line=token.line, op=token.text, operand=operand)
        if self._check("keyword", "sizeof"):
            self._advance()
            if self._check("op", "(") and self._is_type_ahead(1):
                self._expect("op", "(")
                ctype = self._parse_type_name()
                self._expect("op", ")")
                return ast.SizeofType(line=token.line, ctype=ctype)
            operand = self._parse_unary()
            return ast.SizeofExpr(line=token.line, operand=operand)
        if self._check("op", "(") and self._is_type_ahead(1):
            self._advance()
            ctype = self._parse_type_name()
            self._expect("op", ")")
            operand = self._parse_unary()
            return ast.Cast(line=token.line, ctype=ctype, operand=operand)
        return self._parse_postfix()

    def _is_type_ahead(self, offset: int) -> bool:
        token = self._peek(offset)
        return token.kind == "keyword" and token.text in _TYPE_KEYWORDS

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._match("op", "("):
                args: List[ast.Expr] = []
                if not self._check("op", ")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._match("op", ","):
                            break
                self._expect("op", ")")
                expr = ast.Call(line=expr.line, callee=expr, args=args)
            elif self._match("op", "["):
                index = self._parse_expression()
                self._expect("op", "]")
                expr = ast.Index(line=expr.line, base=expr, index=index)
            elif self._match("op", "."):
                field = self._expect("id").text
                expr = ast.Member(
                    line=expr.line, base=expr, field=field, arrow=False
                )
            elif self._match("op", "->"):
                field = self._expect("id").text
                expr = ast.Member(
                    line=expr.line, base=expr, field=field, arrow=True
                )
            elif self.current.kind == "op" and self.current.text in ("++", "--"):
                op = self._advance().text
                expr = ast.Postfix(line=expr.line, op=op, operand=expr)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "int":
            self._advance()
            return ast.IntLiteral(line=token.line, value=token.value)
        if token.kind == "float":
            self._advance()
            return ast.FloatLiteral(line=token.line, value=token.value)
        if token.kind == "char":
            self._advance()
            return ast.CharLiteral(line=token.line, value=token.value)
        if token.kind == "string":
            self._advance()
            # Adjacent string literals concatenate, as in C.
            value = token.value
            while self.current.kind == "string":
                value += self._advance().value
            return ast.StringLiteral(line=token.line, value=value)
        if self._match("keyword", "NULL"):
            return ast.NullLiteral(line=token.line)
        if token.kind == "id":
            self._advance()
            return ast.Identifier(line=token.line, name=token.text)
        if self._match("op", "("):
            expr = self._parse_expression()
            self._expect("op", ")")
            return expr
        raise self._error(f"unexpected token {token.text!r} in expression")
