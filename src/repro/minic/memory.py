"""Flat byte-addressable memory for the mini-C interpreter.

Three segments mirror the conceptual memory of the paper's state model:

- **globals** at ``GLOBAL_BASE``,
- **stack** ending at ``STACK_TOP`` and growing downwards,
- **heap** at ``HEAP_BASE`` growing upwards, managed by a first-fit
  allocator that records every live block and its size.

The allocator's block registry is the reproduction of the paper's
``LD_PRELOAD`` interposition on ``malloc``/``free``/``calloc``/``realloc``:
it is what lets the debug tracker decide whether a pointer refers to a live
heap block and, if so, how many elements the block holds (e.g. to render a
``malloc``'d ``int*`` as an array).

Accessing an unmapped or freed address raises :class:`MemoryFault`, which
the tracker surfaces as an ``INVALID`` pointer value rather than crashing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.minic.ctypes import CType, decode_scalar, encode_scalar

GLOBAL_BASE = 0x0000_1000
HEAP_BASE = 0x0800_0000
STACK_TOP = 0x7FFF_0000

#: Address used for NULL; never mapped.
NULL = 0


class MemoryFault(Exception):
    """An access to unmapped, freed, or out-of-segment memory."""

    def __init__(self, address: int, size: int, operation: str):
        super().__init__(
            f"invalid {operation} of {size} byte(s) at {address:#x}"
        )
        self.address = address
        self.size = size
        self.operation = operation


class _Segment:
    """One contiguous mapped region."""

    def __init__(self, base: int, size: int):
        self.base = base
        self.data = bytearray(size)

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def contains(self, address: int, size: int) -> bool:
        return self.base <= address and address + size <= self.end

    def read(self, address: int, size: int) -> bytes:
        offset = address - self.base
        return bytes(self.data[offset : offset + size])

    def write(self, address: int, raw: bytes) -> None:
        offset = address - self.base
        self.data[offset : offset + len(raw)] = raw

    def grow(self, new_size: int) -> None:
        if new_size > len(self.data):
            self.data.extend(bytes(new_size - len(self.data)))


class HeapBlock:
    """A live (or freed) heap allocation."""

    def __init__(self, address: int, size: int):
        self.address = address
        self.size = size
        self.freed = False

    def __repr__(self) -> str:
        state = "freed" if self.freed else "live"
        return f"<HeapBlock {self.address:#x} size={self.size} {state}>"


class Memory:
    """The interpreter's address space: globals, stack, heap, allocator."""

    def __init__(
        self,
        global_size: int = 1 << 16,
        stack_size: int = 1 << 16,
        heap_size: int = 1 << 20,
    ):
        self.globals = _Segment(GLOBAL_BASE, global_size)
        self.stack = _Segment(STACK_TOP - stack_size, stack_size)
        self.heap = _Segment(HEAP_BASE, heap_size)
        self._heap_limit = HEAP_BASE + heap_size
        #: every allocation ever made, keyed by address (freed ones stay,
        #: marked freed, so dangling pointers are detectable)
        self.heap_blocks: Dict[int, HeapBlock] = {}
        self._free_list: List[Tuple[int, int]] = [(HEAP_BASE, heap_size)]
        self._global_brk = GLOBAL_BASE
        self.stack_pointer = STACK_TOP

    # ------------------------------------------------------------------
    # Mapping queries
    # ------------------------------------------------------------------

    def segment_of(self, address: int, size: int = 1) -> Optional[str]:
        """Name of the segment mapping [address, address+size), or ``None``."""
        if self.globals.contains(address, size):
            return "global"
        if self.stack.contains(address, size):
            return "stack"
        if self.heap.contains(address, size):
            return "heap"
        return None

    def is_valid(self, address: int, size: int = 1) -> bool:
        """Whether the range is mapped and (if heap) inside a live block."""
        segment = self.segment_of(address, size)
        if segment is None:
            return False
        if segment == "heap":
            block = self.block_containing(address)
            return (
                block is not None
                and not block.freed
                and address + size <= block.address + block.size
            )
        return True

    def block_containing(self, address: int) -> Optional[HeapBlock]:
        """The heap block whose range covers ``address`` (live or freed)."""
        for block in self.heap_blocks.values():
            if block.address <= address < block.address + block.size:
                return block
        return None

    # ------------------------------------------------------------------
    # Raw access
    # ------------------------------------------------------------------

    def read(self, address: int, size: int) -> bytes:
        segment = self._segment_obj(address, size, "read")
        return segment.read(address, size)

    def write(self, address: int, raw: bytes) -> None:
        segment = self._segment_obj(address, len(raw), "write")
        segment.write(address, raw)

    def _segment_obj(self, address: int, size: int, operation: str) -> _Segment:
        for segment in (self.globals, self.stack, self.heap):
            if segment.contains(address, size):
                return segment
        raise MemoryFault(address, size, operation)

    # ------------------------------------------------------------------
    # Typed access
    # ------------------------------------------------------------------

    def read_scalar(self, address: int, ctype: CType):
        return decode_scalar(ctype, self.read(address, ctype.size))

    def write_scalar(self, address: int, ctype: CType, value) -> None:
        self.write(address, encode_scalar(ctype, value))

    def read_cstring(self, address: int, limit: int = 4096) -> str:
        """Read a NUL-terminated string; stops at segment end or ``limit``."""
        chars: List[int] = []
        for offset in range(limit):
            if self.segment_of(address + offset, 1) is None:
                break
            byte = self.read(address + offset, 1)[0]
            if byte == 0:
                break
            chars.append(byte)
        return bytes(chars).decode("latin-1")

    def write_cstring(self, address: int, text: str) -> None:
        self.write(address, text.encode("latin-1") + b"\x00")

    # ------------------------------------------------------------------
    # Static allocation (globals, string literals)
    # ------------------------------------------------------------------

    def allocate_global(self, size: int, align: int = 8) -> int:
        """Reserve zero-initialized space in the globals segment."""
        address = _align_up(self._global_brk, align)
        if address + size > self.globals.end:
            raise MemoryFault(address, size, "global allocation")
        self._global_brk = address + size
        return address

    # ------------------------------------------------------------------
    # Stack allocation (per call frame)
    # ------------------------------------------------------------------

    def push_stack(self, size: int, align: int = 8) -> int:
        """Allocate ``size`` bytes on the stack (grows downwards)."""
        address = _align_down(self.stack_pointer - size, align)
        if address < self.stack.base:
            raise MemoryFault(address, size, "stack allocation (overflow)")
        self.stack_pointer = address
        return address

    def pop_stack_to(self, saved_pointer: int) -> None:
        """Restore the stack pointer on function return."""
        self.stack_pointer = saved_pointer

    # ------------------------------------------------------------------
    # Heap allocator: malloc / free / calloc / realloc
    # ------------------------------------------------------------------

    def malloc(self, size: int) -> int:
        """First-fit allocation; returns NULL for size 0 or exhaustion."""
        if size <= 0:
            return NULL
        needed = _align_up(size, 16)
        for index, (start, room) in enumerate(self._free_list):
            if room >= needed:
                self._free_list[index] = (start + needed, room - needed)
                if self._free_list[index][1] == 0:
                    del self._free_list[index]
                block = HeapBlock(start, size)
                self.heap_blocks[start] = block
                # malloc'd memory is uninitialized; poison to make reads of
                # uninitialized data visible in tools.
                self.heap.write(start, b"\xaa" * size)
                return start
        return NULL

    def calloc(self, count: int, size: int) -> int:
        total = count * size
        address = self.malloc(total)
        if address != NULL:
            self.heap.write(address, bytes(total))
            self.heap_blocks[address].size = total
        return address

    def free(self, address: int) -> None:
        """Release a block; double-free and bad-pointer free raise."""
        if address == NULL:
            return
        block = self.heap_blocks.get(address)
        if block is None:
            raise MemoryFault(address, 0, "free of non-allocated pointer")
        if block.freed:
            raise MemoryFault(address, block.size, "double free")
        block.freed = True
        # LIFO reuse: freed blocks go to the front so the next allocation
        # of the same size gets the same address (cache-friendly, and what
        # teaching examples expect to observe).
        self._free_list.insert(0, (block.address, _align_up(block.size, 16)))

    def realloc(self, address: int, size: int) -> int:
        if address == NULL:
            return self.malloc(size)
        block = self.heap_blocks.get(address)
        if block is None or block.freed:
            raise MemoryFault(address, size, "realloc of invalid pointer")
        new_address = self.malloc(size)
        if new_address != NULL:
            keep = min(block.size, size)
            self.heap.write(new_address, self.heap.read(address, keep))
            self.free(address)
        return new_address

    def live_blocks(self) -> Dict[int, int]:
        """Map of live heap-block address -> size (the tracker's heap map)."""
        return {
            block.address: block.size
            for block in self.heap_blocks.values()
            if not block.freed
        }


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


def _align_down(value: int, align: int) -> int:
    return value // align * align
