"""Execution events emitted by the mini-C interpreter and RISC-V machine.

The interpreters are *generators*: they yield one event per observable step
and the driver (the MI debug server, or a test) decides after each event
whether to keep running or to hold the generator — which is what "the
inferior is paused" means in this substrate. This gives the debug server
perfectly synchronous control without threads or signals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class Event:
    """Base class of all execution events."""


@dataclass
class LineEvent(Event):
    """About to execute the statement starting at ``line``."""

    line: int
    function: str
    depth: int


@dataclass
class CallEvent(Event):
    """A function frame was just set up (arguments bound, body not begun)."""

    function: str
    line: int
    depth: int


@dataclass
class ReturnEvent(Event):
    """A function is about to return; its frame is still inspectable."""

    function: str
    line: int
    depth: int
    #: rendered return value (None for void)
    value: Optional[str] = None


@dataclass
class AllocEvent(Event):
    """A heap-allocator call completed (the malloc-interposition analog)."""

    kind: str  # "malloc", "free", "calloc", "realloc"
    address: int
    size: int


@dataclass
class WriteEvent(Event):
    """A named variable was assigned (granularity: whole variables)."""

    name: str
    function: str
    depth: int


@dataclass
class OutputEvent(Event):
    """The inferior produced text on its standard output."""

    text: str


@dataclass
class ExitEvent(Event):
    """The inferior terminated."""

    code: int
    error: Optional[str] = None
