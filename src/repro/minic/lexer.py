"""Tokenizer for the mini-C language.

Supports the C subset used in teaching programs: all scalar types,
pointers, arrays, structs, the full operator set (including compound
assignment, increment/decrement, ternary), string/char literals with
escapes, decimal/hex/octal/float constants, and ``//`` + ``/* */``
comments. Tokens carry line/column for diagnostics and for the
line-stepping debugger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.core.errors import ProgramLoadError

KEYWORDS = frozenset(
    {
        "void",
        "char",
        "short",
        "int",
        "long",
        "unsigned",
        "signed",
        "float",
        "double",
        "struct",
        "if",
        "else",
        "while",
        "do",
        "for",
        "return",
        "break",
        "continue",
        "sizeof",
        "typedef",
        "const",
        "static",
        "NULL",
        "enum",
        "switch",
        "case",
        "default",
    }
)

# Longest-match-first operator table.
OPERATORS = [
    "<<=",
    ">>=",
    "...",
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "~",
    "&",
    "|",
    "^",
    "?",
    ":",
    ".",
    ",",
    ";",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
]

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
}


@dataclass
class Token:
    """One lexical token."""

    kind: str  # "id", "keyword", "int", "float", "string", "char", "op", "eof"
    text: str
    value: object
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


class LexError(ProgramLoadError):
    """A character sequence that is not mini-C."""


def tokenize(source: str, filename: str = "<string>") -> List[Token]:
    """Tokenize ``source`` into a list ending with an ``eof`` token."""
    return list(_Lexer(source, filename).run())


class _Lexer:
    def __init__(self, source: str, filename: str):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def run(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                yield self._token("eof", "", None)
                return
            char = self.source[self.pos]
            if char.isalpha() or char == "_":
                yield self._identifier()
            elif char.isdigit() or (
                char == "." and self._peek(1).isdigit()
            ):
                yield self._number()
            elif char == '"':
                yield self._string()
            elif char == "'":
                yield self._char()
            else:
                yield self._operator()

    # -- helpers -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _peek_in(self, chars: str, offset: int = 0) -> bool:
        """Membership test that is False at end of input.

        (``"" in chars`` is True for any ``chars``, so a bare ``in`` on
        ``_peek()`` would spin forever on a literal at EOF.)
        """
        char = self._peek(offset)
        return bool(char) and char in chars

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _token(self, kind: str, text: str, value: object) -> Token:
        return Token(kind, text, value, self.line, self.column)

    def _error(self, message: str) -> LexError:
        return LexError(f"{self.filename}:{self.line}: {message}")

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            char = self.source[self.pos]
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self.source[self.pos] == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    raise self._error("unterminated block comment")
                self._advance(2)
            elif char == "#":
                # Preprocessor lines (e.g. #include) are accepted and ignored:
                # the interpreter provides its own stdlib.
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            else:
                return

    # -- token classes ------------------------------------------------------

    def _identifier(self) -> Token:
        start_line, start_column = self.line, self.column
        start = self.pos
        while self.pos < len(self.source) and (
            self.source[self.pos].isalnum() or self.source[self.pos] == "_"
        ):
            self._advance()
        text = self.source[start : self.pos]
        kind = "keyword" if text in KEYWORDS else "id"
        return Token(kind, text, text, start_line, start_column)

    def _number(self) -> Token:
        start_line, start_column = self.line, self.column
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek_in("xX", 1):
            self._advance(2)
            while self._peek_in("0123456789abcdefABCDEF"):
                self._advance()
            text = self.source[start : self.pos]
            return Token("int", text, int(text, 16), start_line, start_column)
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek_in("eE") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek_in("+-"):
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        # Integer suffixes (L, U, UL...) are accepted and discarded.
        while self._peek_in("lLuUfF"):
            if self._peek_in("fF") and not is_float:
                break
            self._advance()
        full = self.source[start : self.pos]
        if is_float:
            return Token("float", full, float(text), start_line, start_column)
        base = 8 if text.startswith("0") and len(text) > 1 else 10
        return Token("int", full, int(text, base), start_line, start_column)

    def _string(self) -> Token:
        start_line, start_column = self.line, self.column
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated string literal")
            char = self.source[self.pos]
            if char == '"':
                self._advance()
                break
            if char == "\n":
                raise self._error("newline in string literal")
            if char == "\\":
                self._advance()
                escape = self._peek()
                if escape not in _ESCAPES:
                    raise self._error(f"unknown escape \\{escape}")
                chars.append(_ESCAPES[escape])
                self._advance()
            else:
                chars.append(char)
                self._advance()
        text = "".join(chars)
        return Token("string", f'"{text}"', text, start_line, start_column)

    def _char(self) -> Token:
        start_line, start_column = self.line, self.column
        self._advance()  # opening quote
        char = self._peek()
        if char == "\\":
            self._advance()
            escape = self._peek()
            if escape not in _ESCAPES:
                raise self._error(f"unknown escape \\{escape}")
            value = ord(_ESCAPES[escape])
            self._advance()
        elif char == "'":
            raise self._error("empty character literal")
        else:
            value = ord(char)
            self._advance()
        if self._peek() != "'":
            raise self._error("unterminated character literal")
        self._advance()
        return Token("char", f"'{chr(value)}'", value, start_line, start_column)

    def _operator(self) -> Token:
        start_line, start_column = self.line, self.column
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token("op", op, op, start_line, start_column)
        raise self._error(f"unexpected character {self.source[self.pos]!r}")
