"""Unparser: mini-C ASTs back to compilable source text.

Used by tooling that wants to display a *normalized* view of student code
(uniform indentation, one declarator per line, explicit braces) and by the
test suite as a strong parser oracle: ``parse(unparse(parse(src)))`` must
produce a structurally identical tree, and the unparsed text must behave
identically under the interpreter.

:func:`fingerprint` is the structural-identity helper: a nested tuple of
every semantically meaningful field, with source positions stripped.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields, is_dataclass
from typing import Any, List

from repro.minic import ast
from repro.minic.ctypes import (
    ArrayType,
    CType,
    FunctionType,
    PointerType,
    StructType,
)

_INDENT = "    "


def unparse(program: ast.Program) -> str:
    """Render a parsed program as compilable mini-C source."""
    chunks: List[str] = []
    emitted_structs = set()
    for struct in program.structs.values():
        chunks.append(_unparse_struct(struct))
        emitted_structs.add(struct.tag)
    if program.enum_constants:
        enumerators = ", ".join(
            f"{name} = {value}"
            for name, value in program.enum_constants.items()
        )
        chunks.append(f"enum {{ {enumerators} }};")
    for declaration in program.globals:
        chunks.append(_unparse_declaration(declaration, indent=0))
    for function in program.functions:
        if function.body.body:
            chunks.append(_unparse_function(function))
    return "\n\n".join(chunks) + "\n"


# ---------------------------------------------------------------------------
# Declarations and types
# ---------------------------------------------------------------------------


def _declarator(ctype: CType, name: str) -> str:
    """Render ``ctype name`` with C's inside-out declarator syntax."""
    suffix = ""
    while isinstance(ctype, ArrayType):
        suffix += f"[{ctype.length}]"
        ctype = ctype.element
    if isinstance(ctype, PointerType) and isinstance(ctype.target, FunctionType):
        signature = ctype.target
        params = ", ".join(p.name for p in signature.params) or "void"
        return f"{signature.return_type.name} (*{name})({params})"
    return f"{ctype.name} {name}{suffix}"


def _unparse_struct(struct: StructType) -> str:
    members = "".join(
        f"{_INDENT}{_declarator(field.ctype, field.name)};\n"
        for field in struct.fields.values()
    )
    return f"struct {struct.tag} {{\n{members}}};"


def _unparse_declaration(declaration: ast.Declaration, indent: int) -> str:
    pad = _INDENT * indent
    text = f"{pad}{_declarator(declaration.ctype, declaration.name)}"
    if declaration.init is not None:
        text += f" = {_unparse_init(declaration.init)}"
    return text + ";"


def _unparse_init(init: Any) -> str:
    if isinstance(init, list):
        return "{" + ", ".join(_unparse_init(item) for item in init) + "}"
    return unparse_expr(init)


def _unparse_function(function: ast.FunctionDef) -> str:
    params = ", ".join(
        _declarator(p.ctype, p.name) for p in function.params
    ) or "void"
    header = f"{function.return_type.name} {function.name}({params})"
    body = _unparse_block(function.body, indent=0)
    return f"{header} {body}"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


def _unparse_block(block: ast.Compound, indent: int) -> str:
    pad = _INDENT * indent
    inner = "".join(
        _unparse_statement(child, indent + 1) + "\n" for child in block.body
    )
    return f"{{\n{inner}{pad}}}"


def _unparse_statement(statement: ast.Stmt, indent: int) -> str:
    pad = _INDENT * indent
    if isinstance(statement, ast.Declaration):
        return _unparse_declaration(statement, indent)
    if isinstance(statement, ast.Compound):
        if statement.body and all(
            isinstance(child, ast.Declaration) for child in statement.body
        ):
            # The parser splits `int a = 1, b = 2;` into a Compound of
            # Declarations; emit them inline, not as a nested block (the
            # interpreter's locals are function-scoped, so this preserves
            # behaviour — and is valid C for the declarator-split case).
            return "\n".join(
                _unparse_declaration(child, indent) for child in statement.body
            )
        return f"{pad}{_unparse_block(statement, indent)}"
    if isinstance(statement, ast.ExprStmt):
        return f"{pad}{unparse_expr(statement.expr)};"
    if isinstance(statement, ast.If):
        text = f"{pad}if ({unparse_expr(statement.cond)}) "
        text += _inline_body(statement.then, indent)
        if statement.other is not None:
            text += f" else " + _inline_body(statement.other, indent)
        return text
    if isinstance(statement, ast.While):
        return (
            f"{pad}while ({unparse_expr(statement.cond)}) "
            + _inline_body(statement.body, indent)
        )
    if isinstance(statement, ast.DoWhile):
        return (
            f"{pad}do "
            + _inline_body(statement.body, indent)
            + f" while ({unparse_expr(statement.cond)});"
        )
    if isinstance(statement, ast.For):
        init = ""
        if statement.init is not None:
            init = _unparse_statement(statement.init, 0).strip()
            init = init.rstrip(";")
        cond = unparse_expr(statement.cond) if statement.cond else ""
        step = unparse_expr(statement.step) if statement.step else ""
        return (
            f"{pad}for ({init}; {cond}; {step}) "
            + _inline_body(statement.body, indent)
        )
    if isinstance(statement, ast.Switch):
        arms = ""
        for case in statement.cases:
            label = (
                f"case {unparse_expr(case.match)}:"
                if case.match is not None
                else "default:"
            )
            arms += f"{_INDENT * (indent + 1)}{label}\n"
            for child in case.body:
                arms += _unparse_statement(child, indent + 2) + "\n"
        return (
            f"{pad}switch ({unparse_expr(statement.expr)}) {{\n{arms}{pad}}}"
        )
    if isinstance(statement, ast.Return):
        if statement.value is None:
            return f"{pad}return;"
        return f"{pad}return {unparse_expr(statement.value)};"
    if isinstance(statement, ast.Break):
        return f"{pad}break;"
    if isinstance(statement, ast.Continue):
        return f"{pad}continue;"
    raise TypeError(f"cannot unparse {type(statement).__name__}")


def _inline_body(statement: ast.Stmt, indent: int) -> str:
    if isinstance(statement, ast.Compound):
        return _unparse_block(statement, indent)
    # Normalize single statements into explicit blocks.
    inner = _unparse_statement(statement, indent + 1)
    pad = _INDENT * indent
    return f"{{\n{inner}\n{pad}}}"


# ---------------------------------------------------------------------------
# Expressions (fully parenthesized — correctness over prettiness)
# ---------------------------------------------------------------------------


def unparse_expr(expr: ast.Expr) -> str:
    """Render one expression; parenthesized so precedence can't drift."""
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value)
    if isinstance(expr, ast.FloatLiteral):
        return repr(expr.value)
    if isinstance(expr, ast.CharLiteral):
        char = chr(expr.value)
        escapes = {"\n": "\\n", "\t": "\\t", "\0": "\\0", "'": "\\'",
                   "\\": "\\\\", "\r": "\\r"}
        return f"'{escapes.get(char, char)}'"
    if isinstance(expr, ast.StringLiteral):
        escaped = (
            expr.value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n").replace("\t", "\\t").replace("\0", "\\0")
            .replace("\r", "\\r")
        )
        return f'"{escaped}"'
    if isinstance(expr, ast.NullLiteral):
        return "NULL"
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.Unary):
        return f"({expr.op}{unparse_expr(expr.operand)})"
    if isinstance(expr, ast.Postfix):
        return f"({unparse_expr(expr.operand)}{expr.op})"
    if isinstance(expr, ast.Binary):
        return (
            f"({unparse_expr(expr.left)} {expr.op} {unparse_expr(expr.right)})"
        )
    if isinstance(expr, ast.Assign):
        return (
            f"{unparse_expr(expr.target)} {expr.op} {unparse_expr(expr.value)}"
        )
    if isinstance(expr, ast.Conditional):
        return (
            f"({unparse_expr(expr.cond)} ? {unparse_expr(expr.then)} "
            f": {unparse_expr(expr.other)})"
        )
    if isinstance(expr, ast.Call):
        arguments = ", ".join(unparse_expr(a) for a in expr.args)
        return f"{unparse_expr(expr.callee)}({arguments})"
    if isinstance(expr, ast.Index):
        return f"{unparse_expr(expr.base)}[{unparse_expr(expr.index)}]"
    if isinstance(expr, ast.Member):
        joiner = "->" if expr.arrow else "."
        return f"{unparse_expr(expr.base)}{joiner}{expr.field}"
    if isinstance(expr, ast.Cast):
        return f"(({expr.ctype.name}){unparse_expr(expr.operand)})"
    if isinstance(expr, ast.SizeofType):
        return f"sizeof({expr.ctype.name})"
    if isinstance(expr, ast.SizeofExpr):
        return f"sizeof({unparse_expr(expr.operand)})"
    raise TypeError(f"cannot unparse {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Structural identity
# ---------------------------------------------------------------------------

_POSITION_FIELDS = frozenset({"line", "end_line", "column", "filename"})


def fingerprint(node: Any) -> Any:
    """A nested-tuple identity of an AST, ignoring source positions.

    Two programs with the same fingerprint are structurally identical: same
    statements, expressions, names, types and constants — regardless of
    layout, comments, or declarator grouping.
    """
    if isinstance(node, CType):
        return ("ctype", node.name)
    if is_dataclass(node) and not isinstance(node, type):
        parts = [type(node).__name__]
        for field in dataclass_fields(node):
            if field.name in _POSITION_FIELDS:
                continue
            parts.append(fingerprint(getattr(node, field.name)))
        return tuple(parts)
    if isinstance(node, (list, tuple)):
        return tuple(fingerprint(item) for item in node)
    if isinstance(node, dict):
        return tuple(
            (key, fingerprint(value)) for key, value in node.items()
        )
    return node
