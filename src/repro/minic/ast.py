"""AST node definitions for mini-C.

All nodes are plain dataclasses carrying the source line they start on,
which is what the debug server uses for line breakpoints and stepping.
Expressions and statements are separate hierarchies (:class:`Expr`,
:class:`Stmt`); a translation unit is a :class:`Program` of struct
definitions, global declarations, and function definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.minic.ctypes import CType


@dataclass
class Node:
    line: int


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLiteral(Expr):
    value: int


@dataclass
class FloatLiteral(Expr):
    value: float


@dataclass
class CharLiteral(Expr):
    value: int


@dataclass
class StringLiteral(Expr):
    value: str


@dataclass
class NullLiteral(Expr):
    pass


@dataclass
class Identifier(Expr):
    name: str


@dataclass
class Unary(Expr):
    """Prefix unary: ``- ! ~ & *`` plus prefix ``++``/``--``."""

    op: str
    operand: Expr


@dataclass
class Postfix(Expr):
    """Postfix ``++``/``--``."""

    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Assign(Expr):
    """``=`` and compound assignments; ``op`` is ``"="``, ``"+="``, ..."""

    op: str
    target: Expr
    value: Expr


@dataclass
class Conditional(Expr):
    """The ternary ``cond ? then : other``."""

    cond: Expr
    then: Expr
    other: Expr


@dataclass
class Call(Expr):
    callee: Expr
    args: List[Expr]


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    """``base.field`` (``arrow`` False) or ``base->field`` (``arrow`` True)."""

    base: Expr
    field: str
    arrow: bool


@dataclass
class Cast(Expr):
    ctype: CType
    operand: Expr


@dataclass
class SizeofType(Expr):
    ctype: CType


@dataclass
class SizeofExpr(Expr):
    operand: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Declaration(Stmt):
    """A local or global variable declaration, with optional initializer.

    ``init`` is an :class:`Expr`, or a nested list structure of expressions
    for brace initializers (arrays and structs).
    """

    name: str
    ctype: CType
    init: Optional[object] = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Compound(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class SwitchCase:
    """One ``case CONST:`` (or ``default:`` when ``match`` is None) arm."""

    match: Optional[Expr]
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Switch(Stmt):
    """A ``switch`` statement with C fallthrough semantics."""

    expr: Expr
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Parameter:
    name: str
    ctype: CType


@dataclass
class FunctionDef(Node):
    name: str
    return_type: CType
    params: List[Parameter]
    body: Compound
    end_line: int = 0


@dataclass
class Program(Node):
    """A translation unit: globals, struct types, and functions."""

    globals: List[Declaration] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
    structs: dict = field(default_factory=dict)
    #: enumerator name -> int value (enum constants are ints in C)
    enum_constants: dict = field(default_factory=dict)
    filename: str = "<string>"

    def function(self, name: str) -> Optional[FunctionDef]:
        for function in self.functions:
            if function.name == name:
                return function
        return None
