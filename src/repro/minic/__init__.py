"""The mini-C substrate: lexer, parser, typed memory, interpreter.

This package is the reproduction's stand-in for "a compiled C program under
GDB": a from-scratch C interpreter over a flat byte-addressable memory whose
observable surface (line stepping, frames, typed locals, real addresses,
heap blocks, invalid pointers) matches what the paper's GDB tracker
extracts from native inferiors.
"""

from repro.minic.ctypes import (
    ArrayType,
    BASIC_TYPES,
    CHAR,
    CHAR_PTR,
    CType,
    DOUBLE,
    FLOAT,
    FloatType,
    FunctionType,
    INT,
    IntType,
    LONG,
    PointerType,
    StructType,
    UINT,
    ULONG,
    VOID,
    VOID_PTR,
    VoidType,
    decode_scalar,
    encode_scalar,
)
from repro.minic.events import (
    AllocEvent,
    CallEvent,
    Event,
    ExitEvent,
    LineEvent,
    OutputEvent,
    ReturnEvent,
    WriteEvent,
)
from repro.minic.interpreter import CFrame, Interpreter, LValue
from repro.minic.lexer import LexError, Token, tokenize
from repro.minic.memory import (
    GLOBAL_BASE,
    HEAP_BASE,
    HeapBlock,
    Memory,
    MemoryFault,
    NULL,
    STACK_TOP,
)
from repro.minic.parser import ParseError, parse
from repro.minic.unparse import fingerprint, unparse, unparse_expr
from repro.minic.stdlib import BUILTINS, CRuntimeError

__all__ = [
    "ArrayType",
    "AllocEvent",
    "BASIC_TYPES",
    "BUILTINS",
    "CFrame",
    "CHAR",
    "CHAR_PTR",
    "CRuntimeError",
    "CType",
    "CallEvent",
    "DOUBLE",
    "Event",
    "ExitEvent",
    "FLOAT",
    "FloatType",
    "FunctionType",
    "GLOBAL_BASE",
    "HEAP_BASE",
    "HeapBlock",
    "INT",
    "IntType",
    "Interpreter",
    "LValue",
    "LONG",
    "LexError",
    "LineEvent",
    "Memory",
    "MemoryFault",
    "NULL",
    "OutputEvent",
    "ParseError",
    "PointerType",
    "ReturnEvent",
    "STACK_TOP",
    "StructType",
    "Token",
    "UINT",
    "ULONG",
    "VOID",
    "VOID_PTR",
    "VoidType",
    "WriteEvent",
    "decode_scalar",
    "encode_scalar",
    "fingerprint",
    "parse",
    "tokenize",
    "unparse",
    "unparse_expr",
]
