"""Tree-walking interpreter for mini-C with generator-based stepping.

Every C object lives at a real address in a :class:`repro.minic.memory.Memory`
instance; reads and writes go through encoded bytes, so pointers, aliasing,
padding, dangling references and heap blocks behave observably like compiled
C — which is the whole point of this substrate: it is what the debug server
controls in place of a GDB-managed native process.

:meth:`Interpreter.run` is a generator yielding :mod:`repro.minic.events`
events (one per executed statement line, per call, per return, per allocator
call, per output). Holding the generator *is* pausing the inferior; the MI
debug server builds all of GDB's run control on top of this single
primitive.

Deviations from ISO C (documented, all irrelevant to teaching programs):
intermediate expression arithmetic is unbounded (wrapping happens at stores
and explicit casts); a line with several declarators yields one event per
declarator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.minic import ast
from repro.minic.ctypes import (
    ArrayType,
    CHAR,
    CHAR_PTR,
    CType,
    DOUBLE,
    FloatType,
    FunctionType,
    INT,
    IntType,
    LONG,
    PointerType,
    StructType,
    ULONG,
    VOID,
    VoidType,
)
from repro.minic.events import (
    AllocEvent,
    CallEvent,
    Event,
    ExitEvent,
    LineEvent,
    OutputEvent,
    ReturnEvent,
    WriteEvent,
)
from repro.minic.memory import Memory, MemoryFault, NULL
from repro.minic.stdlib import BUILTINS, CRuntimeError, _ExitCalled

#: Fake code-segment base where function "addresses" live; lets function
#: pointers round-trip through integer casts like data pointers do.
CODE_BASE = 0x0040_0000

#: Byte used to poison uninitialized stack memory, so reading a fresh local
#: shows garbage (and an uninitialized pointer decodes to an invalid address).
POISON = 0xCC

RValue = Tuple[CType, object]


@dataclass
class LValue:
    """A typed location: the result of evaluating an lvalue expression."""

    ctype: CType
    address: int


@dataclass
class CFrame:
    """One mini-C call frame: name, locals (name -> address/type), position."""

    name: str
    depth: int
    locals: Dict[str, Tuple[int, CType]] = field(default_factory=dict)
    saved_stack_pointer: int = 0
    line: int = 0
    arg_names: tuple = ()


class _Return(Exception):
    def __init__(self, value: Optional[RValue]):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class Interpreter:
    """Executes a parsed mini-C :class:`~repro.minic.ast.Program`.

    Args:
        program: the parsed translation unit.
        memory: optionally a preconfigured address space.
        args: command-line arguments, surfaced as ``argc``/``argv`` when the
            program's ``main`` declares parameters.
        max_steps: statement budget before the run is aborted (protects the
            debug server from runaway inferiors).
    """

    def __init__(
        self,
        program: ast.Program,
        memory: Optional[Memory] = None,
        args: Optional[List[str]] = None,
        max_steps: int = 5_000_000,
        max_call_depth: int = 200,
    ):
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.args = list(args or [])
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self.call_stack: List[CFrame] = []
        self.globals: Dict[str, Tuple[int, CType]] = {}
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.function_addresses: Dict[str, int] = {}
        self.address_to_function: Dict[int, str] = {}
        self.rand_state = 1
        self.exit_code: Optional[int] = None
        self.error: Optional[str] = None
        self._string_literals: Dict[str, int] = {}
        self._steps = 0
        self._register_functions()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _register_functions(self) -> None:
        for index, function in enumerate(self.program.functions):
            if function.body.body or function.name not in self.functions:
                self.functions[function.name] = function
            address = CODE_BASE + 16 * index
            if function.name not in self.function_addresses:
                self.function_addresses[function.name] = address
                self.address_to_function[address] = function.name

    def _intern_string(self, text: str) -> int:
        if text not in self._string_literals:
            address = self.memory.allocate_global(len(text) + 1, align=1)
            self.memory.write_cstring(address, text)
            self._string_literals[text] = address
        return self._string_literals[text]

    def _allocate_globals(self) -> None:
        for declaration in self.program.globals:
            ctype = declaration.ctype
            address = self.memory.allocate_global(
                max(ctype.size, 1), max(ctype.align, 1)
            )
            self.globals[declaration.name] = (address, ctype)
            if declaration.init is not None:
                self._init_location(
                    LValue(ctype, address), declaration.init, const_only=True
                )

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------

    def run(self) -> Iterator[Event]:
        """Execute the program, yielding events; sets :attr:`exit_code`."""
        import sys

        # Each mini-C call nests ~a dozen host generator frames, so the
        # host recursion limit must exceed max_call_depth comfortably for
        # the stack-overflow check below to fire first.
        needed = 1000 + 20 * self.max_call_depth
        if sys.getrecursionlimit() < needed:
            sys.setrecursionlimit(needed)
        try:
            self._allocate_globals()
            main = self.functions.get("main")
            if main is None or not main.body.body:
                raise CRuntimeError("no main function defined")
            main_args = self._build_main_args(main)
            result = yield from self._call_user(main, main_args, main.line)
            code = 0
            if result is not None and isinstance(result[0], IntType):
                code = int(result[1]) & 0xFF
            self.exit_code = code
        except _ExitCalled as called:
            self.exit_code = called.code & 0xFF
        except MemoryFault as fault:
            self.exit_code = 139  # the SIGSEGV analog
            self.error = str(fault)
        except CRuntimeError as error:
            self.exit_code = error.code & 0xFF if error.code else 1
            self.error = str(error)
        yield ExitEvent(code=self.exit_code, error=self.error)

    def _build_main_args(self, main: ast.FunctionDef) -> List[RValue]:
        if not main.params:
            return []
        argv_strings = [self.program.filename] + self.args
        pointer_array = self.memory.allocate_global(8 * (len(argv_strings) + 1))
        for index, text in enumerate(argv_strings):
            address = self._intern_string(text)
            self.memory.write_scalar(pointer_array + 8 * index, CHAR_PTR, address)
        self.memory.write_scalar(
            pointer_array + 8 * len(argv_strings), CHAR_PTR, NULL
        )
        return [
            (INT, len(argv_strings)),
            (PointerType(CHAR_PTR), pointer_array),
        ]

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _call_user(
        self,
        function: ast.FunctionDef,
        arg_values: List[RValue],
        call_line: int,
    ) -> Iterator[Event]:
        if len(arg_values) != len(function.params):
            raise CRuntimeError(
                f"{function.name} expects {len(function.params)} argument(s), "
                f"got {len(arg_values)}",
                line=call_line,
            )
        if len(self.call_stack) >= self.max_call_depth:
            # The C-world stack overflow (SIGSEGV); raised here so runaway
            # recursion never exhausts the *host* interpreter's stack.
            raise CRuntimeError(
                f"stack overflow: call depth exceeded {self.max_call_depth}",
                line=call_line,
                code=139,
            )
        frame = CFrame(
            name=function.name,
            depth=len(self.call_stack),
            saved_stack_pointer=self.memory.stack_pointer,
            line=function.line,
            arg_names=tuple(p.name for p in function.params),
        )
        for parameter, value in zip(function.params, arg_values):
            address = self.memory.push_stack(
                max(parameter.ctype.size, 1), max(parameter.ctype.align, 1)
            )
            frame.locals[parameter.name] = (address, parameter.ctype)
            self._store(
                LValue(parameter.ctype, address),
                self._convert(value, parameter.ctype, call_line),
            )
        self.call_stack.append(frame)
        yield CallEvent(
            function=function.name, line=function.line, depth=frame.depth
        )
        result: Optional[RValue] = None
        try:
            yield from self._exec(function.body, frame)
        except _Return as returned:
            result = returned.value
        if result is None and not isinstance(function.return_type, VoidType):
            # Falling off the end of a non-void function: C leaves the value
            # undefined; we pick 0 so teaching programs remain deterministic.
            result = (function.return_type, 0)
        rendered = None
        if result is not None and not isinstance(result[0], VoidType):
            rendered = self._render_rvalue(result)
        yield ReturnEvent(
            function=function.name,
            line=frame.line,
            depth=frame.depth,
            value=rendered,
        )
        self.call_stack.pop()
        self.memory.pop_stack_to(frame.saved_stack_pointer)
        if result is not None and not isinstance(function.return_type, VoidType):
            result = self._convert(result, function.return_type, frame.line)
        return result

    def _call_builtin(self, name: str, arg_values: List[RValue], line: int):
        builtin = BUILTINS[name]
        try:
            result, raw_events = builtin.handler(self, arg_values)
        except CRuntimeError as error:
            if error.line is None:
                error.line = line
            raise
        events: List[Event] = []
        for raw in raw_events:
            if raw[0] == "output":
                events.append(OutputEvent(text=raw[1]))
            elif raw[0] == "alloc":
                events.append(
                    AllocEvent(kind=raw[1], address=raw[2], size=raw[3])
                )
        return result, events

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _exec(self, statement: ast.Stmt, frame: CFrame) -> Iterator[Event]:
        if isinstance(statement, ast.Compound):
            for child in statement.body:
                yield from self._exec(child, frame)
            return
        yield self._tick(frame, statement.line)
        yield from self._exec_inner(statement, frame)

    def _tick(self, frame: CFrame, line: int) -> LineEvent:
        """Account one executed statement/iteration against the budget."""
        self._steps += 1
        if self._steps > self.max_steps:
            raise CRuntimeError(
                f"statement budget of {self.max_steps} exceeded "
                "(infinite loop in the inferior?)"
            )
        frame.line = line
        return LineEvent(line=line, function=frame.name, depth=frame.depth)

    def _exec_inner(self, statement: ast.Stmt, frame: CFrame) -> Iterator[Event]:
        if isinstance(statement, ast.Declaration):
            yield from self._exec_declaration(statement, frame)
        elif isinstance(statement, ast.ExprStmt):
            yield from self._eval(statement.expr, frame)
        elif isinstance(statement, ast.If):
            cond = yield from self._eval(statement.cond, frame)
            if self._truthy(cond):
                yield from self._exec(statement.then, frame)
            elif statement.other is not None:
                yield from self._exec(statement.other, frame)
        elif isinstance(statement, ast.While):
            yield from self._exec_while(statement, frame)
        elif isinstance(statement, ast.DoWhile):
            yield from self._exec_do_while(statement, frame)
        elif isinstance(statement, ast.For):
            yield from self._exec_for(statement, frame)
        elif isinstance(statement, ast.Switch):
            yield from self._exec_switch(statement, frame)
        elif isinstance(statement, ast.Return):
            value = None
            if statement.value is not None:
                value = yield from self._eval(statement.value, frame)
            raise _Return(value)
        elif isinstance(statement, ast.Break):
            raise _Break()
        elif isinstance(statement, ast.Continue):
            raise _Continue()
        else:  # pragma: no cover - parser produces no other nodes
            raise CRuntimeError(f"cannot execute {type(statement).__name__}")

    def _exec_declaration(
        self, declaration: ast.Declaration, frame: CFrame
    ) -> Iterator[Event]:
        ctype = declaration.ctype
        if (
            isinstance(ctype, ArrayType)
            and ctype.length == 0
            and declaration.init is not None
        ):
            ctype = _size_array_from_init(ctype, declaration.init)
        address = self.memory.push_stack(
            max(ctype.size, 1), max(ctype.align, 1)
        )
        self.memory.write(address, bytes([POISON]) * max(ctype.size, 1))
        frame.locals[declaration.name] = (address, ctype)
        if declaration.init is not None:
            yield from self._init_location_gen(
                LValue(ctype, address), declaration.init, frame
            )
            yield WriteEvent(
                name=declaration.name, function=frame.name, depth=frame.depth
            )

    def _exec_switch(self, statement: ast.Switch, frame: CFrame) -> Iterator[Event]:
        selector = yield from self._eval(statement.expr, frame)
        selected = int(selector[1])
        start = None
        default = None
        for index, case in enumerate(statement.cases):
            if case.match is None:
                default = index
                continue
            match = self._const_eval(case.match)
            if int(match[1]) == selected:
                start = index
                break
        if start is None:
            start = default
        if start is None:
            return
        try:
            # C fallthrough: run from the matched arm through the rest.
            for case in statement.cases[start:]:
                for child in case.body:
                    yield from self._exec(child, frame)
        except _Break:
            return

    def _exec_while(self, statement: ast.While, frame: CFrame) -> Iterator[Event]:
        first = True
        while True:
            if not first:
                yield self._tick(frame, statement.line)
            first = False
            cond = yield from self._eval(statement.cond, frame)
            if not self._truthy(cond):
                return
            try:
                yield from self._exec(statement.body, frame)
            except _Break:
                return
            except _Continue:
                continue

    def _exec_do_while(
        self, statement: ast.DoWhile, frame: CFrame
    ) -> Iterator[Event]:
        while True:
            try:
                yield from self._exec(statement.body, frame)
            except _Break:
                return
            except _Continue:
                pass
            yield self._tick(frame, statement.line)
            cond = yield from self._eval(statement.cond, frame)
            if not self._truthy(cond):
                return

    def _exec_for(self, statement: ast.For, frame: CFrame) -> Iterator[Event]:
        if statement.init is not None:
            yield from self._exec_inner(statement.init, frame)
        first = True
        while True:
            if not first:
                yield self._tick(frame, statement.line)
            first = False
            if statement.cond is not None:
                cond = yield from self._eval(statement.cond, frame)
                if not self._truthy(cond):
                    return
            try:
                yield from self._exec(statement.body, frame)
            except _Break:
                return
            except _Continue:
                pass
            if statement.step is not None:
                yield from self._eval(statement.step, frame)

    # ------------------------------------------------------------------
    # Initializers
    # ------------------------------------------------------------------

    def _init_location(self, location: LValue, init, const_only: bool) -> None:
        """Initialize globals with constant expressions (no events)."""
        generator = self._init_location_gen(location, init, frame=None)
        for _ in generator:  # pragma: no cover - const init yields nothing
            raise CRuntimeError("global initializers must be constant")

    def _init_location_gen(
        self, location: LValue, init, frame: Optional[CFrame]
    ) -> Iterator[Event]:
        ctype = location.ctype
        if isinstance(init, list):
            if isinstance(ctype, ArrayType):
                if len(init) > ctype.length:
                    raise CRuntimeError(
                        f"too many initializers for {ctype.name}"
                    )
                for index, item in enumerate(init):
                    element = LValue(
                        ctype.element,
                        location.address + index * ctype.element.size,
                    )
                    yield from self._init_location_gen(element, item, frame)
                return
            if isinstance(ctype, StructType):
                for item, struct_field in zip(init, ctype.fields.values()):
                    member = LValue(
                        struct_field.ctype, location.address + struct_field.offset
                    )
                    yield from self._init_location_gen(member, item, frame)
                return
            raise CRuntimeError(f"brace initializer for scalar {ctype.name}")
        if (
            isinstance(ctype, ArrayType)
            and isinstance(ctype.element, IntType)
            and ctype.element.size == 1
            and isinstance(init, ast.StringLiteral)
        ):
            text = init.value
            if len(text) + 1 > ctype.length:
                raise CRuntimeError("string too long for char array")
            self.memory.write_cstring(location.address, text)
            return
        if frame is None:
            value = self._const_eval(init)
        else:
            value = yield from self._eval(init, frame)
        self._store(location, self._convert(value, ctype, init.line))

    def _const_eval(self, expr: ast.Expr) -> RValue:
        if isinstance(expr, ast.Identifier) and (
            expr.name in self.program.enum_constants
        ):
            return (INT, self.program.enum_constants[expr.name])
        if isinstance(expr, ast.IntLiteral):
            return (INT if abs(expr.value) < 1 << 31 else LONG, expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return (DOUBLE, expr.value)
        if isinstance(expr, ast.CharLiteral):
            return (INT, expr.value)
        if isinstance(expr, ast.NullLiteral):
            return (PointerType(VOID), NULL)
        if isinstance(expr, ast.StringLiteral):
            return (CHAR_PTR, self._intern_string(expr.value))
        if isinstance(expr, ast.SizeofType):
            return (ULONG, expr.ctype.size)
        if isinstance(expr, ast.Unary) and expr.op == "-":
            ctype, value = self._const_eval(expr.operand)
            return (ctype, -value)
        if isinstance(expr, ast.Binary):
            left = self._const_eval(expr.left)
            right = self._const_eval(expr.right)
            return self._binary_arith(expr.op, left, right, expr.line)
        raise CRuntimeError(
            "global initializers must be constant expressions", line=expr.line
        )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _eval(self, expr: ast.Expr, frame: CFrame) -> Iterator[Event]:
        if isinstance(expr, ast.IntLiteral):
            return (INT if abs(expr.value) < 1 << 31 else LONG, expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return (DOUBLE, expr.value)
        if isinstance(expr, ast.CharLiteral):
            return (INT, expr.value)
        if isinstance(expr, ast.StringLiteral):
            return (CHAR_PTR, self._intern_string(expr.value))
        if isinstance(expr, ast.NullLiteral):
            return (PointerType(VOID), NULL)
        if isinstance(expr, ast.Identifier):
            return self._eval_identifier(expr, frame)
        if isinstance(expr, ast.Unary):
            return (yield from self._eval_unary(expr, frame))
        if isinstance(expr, ast.Postfix):
            return (yield from self._eval_postfix(expr, frame))
        if isinstance(expr, ast.Binary):
            return (yield from self._eval_binary(expr, frame))
        if isinstance(expr, ast.Assign):
            return (yield from self._eval_assign(expr, frame))
        if isinstance(expr, ast.Conditional):
            cond = yield from self._eval(expr.cond, frame)
            if self._truthy(cond):
                return (yield from self._eval(expr.then, frame))
            return (yield from self._eval(expr.other, frame))
        if isinstance(expr, ast.Call):
            return (yield from self._eval_call(expr, frame))
        if isinstance(expr, ast.Index) or isinstance(expr, ast.Member):
            lvalue = yield from self._eval_lvalue(expr, frame)
            return self._load(lvalue)
        if isinstance(expr, ast.Cast):
            value = yield from self._eval(expr.operand, frame)
            return self._cast(value, expr.ctype, expr.line)
        if isinstance(expr, ast.SizeofType):
            return (ULONG, expr.ctype.size)
        if isinstance(expr, ast.SizeofExpr):
            ctype = yield from self._type_of(expr.operand, frame)
            return (ULONG, ctype.size)
        raise CRuntimeError(
            f"cannot evaluate {type(expr).__name__}", line=expr.line
        )

    def _eval_identifier(self, expr: ast.Identifier, frame: CFrame) -> RValue:
        location = self._lookup(expr.name, frame, expr.line)
        if location is None:
            if expr.name in self.program.enum_constants:
                return (INT, self.program.enum_constants[expr.name])
            if expr.name in self.function_addresses:
                function_type = self._function_pointer_type(expr.name)
                return (function_type, self.function_addresses[expr.name])
            raise CRuntimeError(
                f"undefined variable {expr.name!r}", line=expr.line
            )
        return self._load(LValue(location[1], location[0]))

    def _function_pointer_type(self, name: str) -> PointerType:
        definition = self.functions.get(name)
        if definition is None:
            return PointerType(FunctionType(INT, []))
        return PointerType(
            FunctionType(
                definition.return_type, [p.ctype for p in definition.params]
            )
        )

    def _eval_unary(self, expr: ast.Unary, frame: CFrame) -> Iterator[Event]:
        op = expr.op
        if op == "&":
            if (
                isinstance(expr.operand, ast.Identifier)
                and self._lookup(expr.operand.name, frame, expr.line) is None
                and expr.operand.name in self.function_addresses
            ):
                name = expr.operand.name
                return (
                    self._function_pointer_type(name),
                    self.function_addresses[name],
                )
            lvalue = yield from self._eval_lvalue(expr.operand, frame)
            return (PointerType(lvalue.ctype), lvalue.address)
        if op == "*":
            lvalue = yield from self._eval_lvalue(expr, frame)
            return self._load(lvalue)
        if op in ("++", "--"):
            lvalue = yield from self._eval_lvalue(expr.operand, frame)
            old = self._load(lvalue)
            one: RValue = (INT, 1)
            new = self._binary_arith(
                "+" if op == "++" else "-", old, one, expr.line
            )
            converted = self._convert(new, lvalue.ctype, expr.line)
            self._store(lvalue, converted)
            if isinstance(expr.operand, ast.Identifier):
                yield WriteEvent(
                    name=expr.operand.name, function=frame.name, depth=frame.depth
                )
            return converted
        operand = yield from self._eval(expr.operand, frame)
        ctype, value = operand
        if op == "-":
            return (ctype if ctype.is_scalar() else INT, -value)
        if op == "!":
            return (INT, 0 if self._truthy(operand) else 1)
        if op == "~":
            return (ctype if ctype.is_integer() else INT, ~int(value))
        raise CRuntimeError(f"unknown unary {op}", line=expr.line)

    def _eval_postfix(self, expr: ast.Postfix, frame: CFrame) -> Iterator[Event]:
        lvalue = yield from self._eval_lvalue(expr.operand, frame)
        old = self._load(lvalue)
        one: RValue = (INT, 1)
        new = self._binary_arith(
            "+" if expr.op == "++" else "-", old, one, expr.line
        )
        self._store(lvalue, self._convert(new, lvalue.ctype, expr.line))
        if isinstance(expr.operand, ast.Identifier):
            yield WriteEvent(
                name=expr.operand.name, function=frame.name, depth=frame.depth
            )
        return old

    def _eval_binary(self, expr: ast.Binary, frame: CFrame) -> Iterator[Event]:
        if expr.op == "&&":
            left = yield from self._eval(expr.left, frame)
            if not self._truthy(left):
                return (INT, 0)
            right = yield from self._eval(expr.right, frame)
            return (INT, 1 if self._truthy(right) else 0)
        if expr.op == "||":
            left = yield from self._eval(expr.left, frame)
            if self._truthy(left):
                return (INT, 1)
            right = yield from self._eval(expr.right, frame)
            return (INT, 1 if self._truthy(right) else 0)
        if expr.op == ",":
            yield from self._eval(expr.left, frame)
            return (yield from self._eval(expr.right, frame))
        left = yield from self._eval(expr.left, frame)
        right = yield from self._eval(expr.right, frame)
        return self._binary_arith(expr.op, left, right, expr.line)

    def _eval_assign(self, expr: ast.Assign, frame: CFrame) -> Iterator[Event]:
        lvalue = yield from self._eval_lvalue(expr.target, frame)
        if expr.op == "=":
            value = yield from self._eval(expr.value, frame)
        else:
            old = self._load(lvalue)
            increment = yield from self._eval(expr.value, frame)
            value = self._binary_arith(
                expr.op[:-1], old, increment, expr.line
            )
        converted = self._convert(value, lvalue.ctype, expr.line)
        self._store(lvalue, converted)
        # WriteEvents give the debug server cheap variable-granularity change
        # notification for simple assignments. Writes through pointers are
        # caught by the server's per-line watch evaluation instead.
        if isinstance(expr.target, ast.Identifier):
            yield WriteEvent(
                name=expr.target.name, function=frame.name, depth=frame.depth
            )
        return converted

    def _eval_call(self, expr: ast.Call, frame: CFrame) -> Iterator[Event]:
        arg_values: List[RValue] = []
        for argument in expr.args:
            value = yield from self._eval(argument, frame)
            arg_values.append(value)
        # Direct call by name.
        if isinstance(expr.callee, ast.Identifier):
            name = expr.callee.name
            local = self._lookup(name, frame, expr.line)
            if local is None:
                if name in self.functions and self.functions[name].body.body:
                    return (
                        yield from self._call_user(
                            self.functions[name], arg_values, expr.line
                        )
                    )
                if name in BUILTINS:
                    result, events = self._call_builtin(name, arg_values, expr.line)
                    for event in events:
                        yield event
                    return result
                raise CRuntimeError(
                    f"call to undefined function {name!r}", line=expr.line
                )
        # Indirect call through a function pointer value.
        callee = yield from self._eval(expr.callee, frame)
        address = int(callee[1])
        target = self.address_to_function.get(address)
        if target is None:
            raise MemoryFault(address, 0, "call through invalid function pointer")
        if target in self.functions and self.functions[target].body.body:
            return (
                yield from self._call_user(
                    self.functions[target], arg_values, expr.line
                )
            )
        result, events = self._call_builtin(target, arg_values, expr.line)
        for event in events:
            yield event
        return result

    # ------------------------------------------------------------------
    # Lvalues
    # ------------------------------------------------------------------

    def _eval_lvalue(self, expr: ast.Expr, frame: CFrame) -> Iterator[Event]:
        if isinstance(expr, ast.Identifier):
            location = self._lookup(expr.name, frame, expr.line)
            if location is None:
                raise CRuntimeError(
                    f"undefined variable {expr.name!r}", line=expr.line
                )
            return LValue(location[1], location[0])
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer = yield from self._eval(expr.operand, frame)
            ctype = pointer[0]
            if isinstance(ctype, PointerType):
                target = ctype.target
            elif isinstance(ctype, ArrayType):
                target = ctype.element
            else:
                raise CRuntimeError(
                    f"cannot dereference {ctype.name}", line=expr.line
                )
            address = int(pointer[1])
            self._check_address(address, target, expr.line)
            return LValue(target, address)
        if isinstance(expr, ast.Index):
            base_type = yield from self._type_of(expr.base, frame)
            if isinstance(base_type, ArrayType):
                base_lvalue = yield from self._eval_lvalue(expr.base, frame)
                element = base_type.element
                base_address = base_lvalue.address
            else:
                base_value = yield from self._eval(expr.base, frame)
                if not isinstance(base_value[0], PointerType):
                    raise CRuntimeError(
                        f"cannot index {base_value[0].name}", line=expr.line
                    )
                element = base_value[0].target
                base_address = int(base_value[1])
            index = yield from self._eval(expr.index, frame)
            address = base_address + int(index[1]) * element.size
            self._check_address(address, element, expr.line)
            return LValue(element, address)
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base = yield from self._eval(expr.base, frame)
                if not isinstance(base[0], PointerType):
                    raise CRuntimeError(
                        f"-> on non-pointer {base[0].name}", line=expr.line
                    )
                struct = base[0].target
                base_address = int(base[1])
            else:
                base_lvalue = yield from self._eval_lvalue(expr.base, frame)
                struct = base_lvalue.ctype
                base_address = base_lvalue.address
            if not isinstance(struct, StructType):
                raise CRuntimeError(
                    f"member access on non-struct {struct.name}", line=expr.line
                )
            try:
                struct_field = struct.field(expr.field)
            except KeyError as error:
                raise CRuntimeError(str(error), line=expr.line) from None
            address = base_address + struct_field.offset
            self._check_address(address, struct_field.ctype, expr.line)
            return LValue(struct_field.ctype, address)
        raise CRuntimeError(
            f"{type(expr).__name__} is not an lvalue", line=expr.line
        )

    def _check_address(self, address: int, ctype: CType, line: int) -> None:
        size = max(ctype.size, 1)
        if not self.memory.is_valid(address, size):
            raise MemoryFault(address, size, "access")

    def _type_of(self, expr: ast.Expr, frame: CFrame) -> Iterator[Event]:
        """Static-ish type of an expression (for sizeof and array detection).

        Implemented as a generator for uniformity; never actually executes
        calls — sizeof of a call uses the declared return type.
        """
        if isinstance(expr, ast.Identifier):
            location = self._lookup(expr.name, frame, expr.line)
            if location is not None:
                return location[1]
            if expr.name in self.function_addresses:
                return self._function_pointer_type(expr.name)
            raise CRuntimeError(
                f"undefined variable {expr.name!r}", line=expr.line
            )
        if isinstance(expr, ast.Index):
            base = yield from self._type_of(expr.base, frame)
            if isinstance(base, ArrayType):
                return base.element
            if isinstance(base, PointerType):
                return base.target
            raise CRuntimeError(f"cannot index {base.name}", line=expr.line)
        if isinstance(expr, ast.Member):
            base = yield from self._type_of(expr.base, frame)
            if expr.arrow and isinstance(base, PointerType):
                base = base.target
            if isinstance(base, StructType):
                return base.field(expr.field).ctype
            raise CRuntimeError("member access on non-struct", line=expr.line)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            base = yield from self._type_of(expr.operand, frame)
            if isinstance(base, (PointerType, ArrayType)):
                return base.target if isinstance(base, PointerType) else base.element
            raise CRuntimeError("dereference of non-pointer", line=expr.line)
        if isinstance(expr, ast.Call) and isinstance(expr.callee, ast.Identifier):
            name = expr.callee.name
            if name in self.functions:
                return self.functions[name].return_type
            if name in BUILTINS:
                return BUILTINS[name].return_type
        if isinstance(expr, ast.Cast):
            return expr.ctype
        if isinstance(expr, ast.StringLiteral):
            return CHAR_PTR
        # Fall back to evaluating (side effects allowed, as in C sizeof? no —
        # but these cases are only reached for arithmetic expressions).
        value = yield from self._eval(expr, frame)
        return value[0]

    # ------------------------------------------------------------------
    # Loads, stores, conversions, arithmetic
    # ------------------------------------------------------------------

    def _lookup(
        self, name: str, frame: Optional[CFrame], line: int
    ) -> Optional[Tuple[int, CType]]:
        if frame is not None and name in frame.locals:
            return frame.locals[name]
        if name in self.globals:
            return self.globals[name]
        return None

    def _load(self, lvalue: LValue) -> RValue:
        ctype = lvalue.ctype
        if isinstance(ctype, ArrayType):
            # Array-to-pointer decay.
            return (PointerType(ctype.element), lvalue.address)
        if isinstance(ctype, StructType):
            return (ctype, self.memory.read(lvalue.address, ctype.size))
        return (ctype, self.memory.read_scalar(lvalue.address, ctype))

    def _store(self, lvalue: LValue, value: RValue) -> None:
        ctype = lvalue.ctype
        if isinstance(ctype, StructType):
            raw = value[1]
            if not isinstance(raw, (bytes, bytearray)):
                raise CRuntimeError(f"cannot assign to {ctype.name}")
            self.memory.write(lvalue.address, bytes(raw[: ctype.size]))
            return
        self.memory.write_scalar(lvalue.address, ctype, value[1])

    def _convert(self, value: RValue, target: CType, line: int) -> RValue:
        ctype, raw = value
        if isinstance(target, IntType):
            return (target, target.wrap(int(raw)))
        if isinstance(target, FloatType):
            return (target, float(raw))
        if isinstance(target, (PointerType, FunctionType)):
            return (target, int(raw) & (1 << 64) - 1)
        if isinstance(target, StructType):
            if isinstance(ctype, StructType) and ctype.tag == target.tag:
                return (target, raw)
            raise CRuntimeError(
                f"cannot convert {ctype.name} to {target.name}", line=line
            )
        if isinstance(target, VoidType):
            return (target, None)
        raise CRuntimeError(
            f"cannot convert {ctype.name} to {target.name}", line=line
        )

    def _cast(self, value: RValue, target: CType, line: int) -> RValue:
        return self._convert(value, target, line)

    def _binary_arith(
        self, op: str, left: RValue, right: RValue, line: int
    ) -> RValue:
        left_type, left_value = left
        right_type, right_value = right
        # Pointer arithmetic.
        if isinstance(left_type, PointerType) and right_type.is_integer():
            if op == "+":
                return (left_type, int(left_value) + int(right_value) * left_type.target.size)
            if op == "-":
                return (left_type, int(left_value) - int(right_value) * left_type.target.size)
        if isinstance(right_type, PointerType) and left_type.is_integer() and op == "+":
            return (right_type, int(right_value) + int(left_value) * right_type.target.size)
        if isinstance(left_type, PointerType) and isinstance(right_type, PointerType):
            if op == "-":
                return (LONG, (int(left_value) - int(right_value)) // max(left_type.target.size, 1))
            if op in ("==", "!=", "<", ">", "<=", ">="):
                return (INT, _compare(op, int(left_value), int(right_value)))
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return (INT, _compare(op, left_value, right_value))
        use_float = left_type.is_float() or right_type.is_float()
        if use_float:
            left_number, right_number = float(left_value), float(right_value)
            result_type: CType = DOUBLE
            if op == "+":
                return (result_type, left_number + right_number)
            if op == "-":
                return (result_type, left_number - right_number)
            if op == "*":
                return (result_type, left_number * right_number)
            if op == "/":
                if right_number == 0.0:
                    raise CRuntimeError("floating division by zero", line, code=136)
                return (result_type, left_number / right_number)
            raise CRuntimeError(f"invalid float operation {op}", line=line)
        left_int, right_int = int(left_value), int(right_value)
        result_type = LONG if LONG in (left_type, right_type) else INT
        if op == "+":
            return (result_type, left_int + right_int)
        if op == "-":
            return (result_type, left_int - right_int)
        if op == "*":
            return (result_type, left_int * right_int)
        if op == "/":
            if right_int == 0:
                raise CRuntimeError("integer division by zero", line, code=136)
            return (result_type, _c_div(left_int, right_int))
        if op == "%":
            if right_int == 0:
                raise CRuntimeError("integer modulo by zero", line, code=136)
            return (result_type, left_int - _c_div(left_int, right_int) * right_int)
        if op == "<<":
            return (result_type, left_int << (right_int & 63))
        if op == ">>":
            return (result_type, left_int >> (right_int & 63))
        if op == "&":
            return (result_type, left_int & right_int)
        if op == "|":
            return (result_type, left_int | right_int)
        if op == "^":
            return (result_type, left_int ^ right_int)
        raise CRuntimeError(f"unknown operator {op}", line=line)

    @staticmethod
    def _truthy(value: RValue) -> bool:
        return value[1] is not None and value[1] != 0

    def _render_rvalue(self, value: RValue) -> str:
        ctype, raw = value
        if isinstance(ctype, FloatType):
            return repr(float(raw))
        if isinstance(ctype, PointerType):
            return f"{int(raw):#x}"
        if isinstance(ctype, StructType):
            return f"<{ctype.name}>"
        if raw is None:
            return "void"
        return str(raw)


def _compare(op: str, left, right) -> int:
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "<":
        return int(left < right)
    if op == ">":
        return int(left > right)
    if op == "<=":
        return int(left <= right)
    return int(left >= right)


def _c_div(a: int, b: int) -> int:
    """C integer division: truncation toward zero."""
    quotient = abs(a) // abs(b)
    return quotient if (a < 0) == (b < 0) else -quotient


def _size_array_from_init(ctype: ArrayType, init) -> ArrayType:
    if isinstance(init, list):
        return ArrayType(ctype.element, len(init))
    if isinstance(init, ast.StringLiteral):
        return ArrayType(ctype.element, len(init.value) + 1)
    return ctype
