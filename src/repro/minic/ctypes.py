"""The mini-C type system: sizes, alignment, struct layout.

The interpreter stores every C object in a flat byte-addressable memory
(:mod:`repro.minic.memory`), so types carry genuine LP64 sizes and
alignments (int 4, long 8, float 4, double 8, char 1, pointers 8) and
struct layout follows the usual alignment/padding rules. This is what lets
the debug tracker show real addresses, pointer arithmetic and padding — the
observable surface a teaching tool needs from compiled C.
"""

from __future__ import annotations

import struct as _struct
from typing import Dict, List, Optional, Tuple


class CType:
    """Base class of all mini-C types."""

    #: size in bytes
    size: int = 0
    #: required alignment in bytes
    align: int = 1
    #: type name in C syntax (the model's ``language_type``)
    name: str = "void"

    def is_scalar(self) -> bool:
        return False

    def is_integer(self) -> bool:
        return False

    def is_float(self) -> bool:
        return False

    def is_pointer(self) -> bool:
        return False

    def is_aggregate(self) -> bool:
        return False

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<ctype {self.name}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CType) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)


class VoidType(CType):
    """The ``void`` type (function returns and ``void*`` targets)."""

    name = "void"
    size = 0
    align = 1


class IntType(CType):
    """Integer types: ``char``, ``short``, ``int``, ``long`` (and unsigned)."""

    def __init__(self, name: str, size: int, signed: bool = True):
        self.name = name
        self.size = size
        self.align = size
        self.signed = signed

    def is_scalar(self) -> bool:
        return True

    def is_integer(self) -> bool:
        return True

    def bounds(self) -> Tuple[int, int]:
        """Inclusive (min, max) representable values."""
        bits = self.size * 8
        if self.signed:
            return -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        return 0, (1 << bits) - 1

    def wrap(self, value: int) -> int:
        """Wrap a Python int into this type's range (two's complement)."""
        bits = self.size * 8
        value &= (1 << bits) - 1
        if self.signed and value >= 1 << (bits - 1):
            value -= 1 << bits
        return value


class FloatType(CType):
    """Floating-point types: ``float`` (4 bytes) and ``double`` (8 bytes)."""

    def __init__(self, name: str, size: int):
        self.name = name
        self.size = size
        self.align = size

    def is_scalar(self) -> bool:
        return True

    def is_float(self) -> bool:
        return True


class PointerType(CType):
    """A pointer to ``target`` (8 bytes, LP64)."""

    size = 8
    align = 8

    def __init__(self, target: CType):
        self.target = target
        self.name = f"{target.name}*"

    def is_scalar(self) -> bool:
        return True

    def is_pointer(self) -> bool:
        return True


class ArrayType(CType):
    """A fixed-length array of ``element`` (decays to a pointer in rvalues)."""

    def __init__(self, element: CType, length: int):
        self.element = element
        self.length = length
        self.size = element.size * length
        self.align = element.align
        self.name = f"{element.name}[{length}]"

    def is_aggregate(self) -> bool:
        return True


class StructField:
    """One field of a struct: name, type, byte offset within the struct."""

    def __init__(self, name: str, ctype: CType, offset: int):
        self.name = name
        self.ctype = ctype
        self.offset = offset


class StructType(CType):
    """A ``struct`` with standard C layout (alignment + tail padding).

    Supports the C incomplete-type idiom: construct with no members (so
    ``struct node *next`` inside ``struct node`` can reference it), then
    call :meth:`set_members` to fill in the layout.
    """

    def __init__(self, tag: str, members: List[Tuple[str, CType]]):
        self.tag = tag
        self.name = f"struct {tag}"
        self.fields: Dict[str, StructField] = {}
        self.align = 1
        self.size = 0
        if members:
            self.set_members(members)

    def set_members(self, members: List[Tuple[str, CType]]) -> None:
        """Lay out the members (completing a forward-declared struct)."""
        self.fields = {}
        offset = 0
        max_align = 1
        for member_name, member_type in members:
            offset = _align_up(offset, member_type.align)
            self.fields[member_name] = StructField(member_name, member_type, offset)
            offset += member_type.size
            max_align = max(max_align, member_type.align)
        self.align = max_align
        self.size = _align_up(offset, max_align) if members else 0

    def is_aggregate(self) -> bool:
        return True

    def field(self, name: str) -> StructField:
        if name not in self.fields:
            raise KeyError(f"{self.name} has no field {name!r}")
        return self.fields[name]


class FunctionType(CType):
    """A function signature; function *pointers* wrap this in PointerType."""

    size = 8
    align = 8

    def __init__(self, return_type: CType, params: List[CType], varargs: bool = False):
        self.return_type = return_type
        self.params = params
        self.varargs = varargs
        param_names = ", ".join(p.name for p in params) or "void"
        if varargs:
            param_names += ", ..."
        self.name = f"{return_type.name} (*)({param_names})"


def _align_up(offset: int, align: int) -> int:
    return (offset + align - 1) // align * align


# Canonical instances ----------------------------------------------------

VOID = VoidType()
CHAR = IntType("char", 1)
UCHAR = IntType("unsigned char", 1, signed=False)
SHORT = IntType("short", 2)
INT = IntType("int", 4)
UINT = IntType("unsigned int", 4, signed=False)
LONG = IntType("long", 8)
ULONG = IntType("unsigned long", 8, signed=False)
FLOAT = FloatType("float", 4)
DOUBLE = FloatType("double", 8)
CHAR_PTR = PointerType(CHAR)
VOID_PTR = PointerType(VOID)

#: Types nameable with a single keyword sequence in declarations.
BASIC_TYPES: Dict[str, CType] = {
    "void": VOID,
    "char": CHAR,
    "unsigned char": UCHAR,
    "short": SHORT,
    "int": INT,
    "unsigned": UINT,
    "unsigned int": UINT,
    "long": LONG,
    "unsigned long": ULONG,
    "float": FLOAT,
    "double": DOUBLE,
}

_INT_FORMATS = {
    (1, True): "b",
    (1, False): "B",
    (2, True): "h",
    (2, False): "H",
    (4, True): "i",
    (4, False): "I",
    (8, True): "q",
    (8, False): "Q",
}


def encode_scalar(ctype: CType, value) -> bytes:
    """Encode a scalar value into its in-memory little-endian byte form."""
    if isinstance(ctype, IntType):
        format_ = _INT_FORMATS[(ctype.size, ctype.signed)]
        return _struct.pack("<" + format_, ctype.wrap(int(value)))
    if isinstance(ctype, FloatType):
        format_ = "f" if ctype.size == 4 else "d"
        return _struct.pack("<" + format_, float(value))
    if isinstance(ctype, (PointerType, FunctionType)):
        return _struct.pack("<Q", int(value) & (1 << 64) - 1)
    raise TypeError(f"cannot encode non-scalar type {ctype.name}")


def decode_scalar(ctype: CType, raw: bytes):
    """Decode the little-endian byte form of a scalar back to a Python value."""
    if isinstance(ctype, IntType):
        format_ = _INT_FORMATS[(ctype.size, ctype.signed)]
        return _struct.unpack("<" + format_, raw)[0]
    if isinstance(ctype, FloatType):
        format_ = "f" if ctype.size == 4 else "d"
        return _struct.unpack("<" + format_, raw)[0]
    if isinstance(ctype, (PointerType, FunctionType)):
        return _struct.unpack("<Q", raw)[0]
    raise TypeError(f"cannot decode non-scalar type {ctype.name}")
