"""Command-line front-end: the bundled tools as one ``repro`` command.

Subcommands map one-to-one onto the paper's tools::

    python -m repro step prog.py out/           # Listing 1 (Fig 6)
    python -m repro invariant prog.py arr i j   # Fig 1
    python -m repro rectree prog.py fib n       # Fig 8
    python -m repro riscv prog.s --base 0x20000000
    python -m repro game level.c                # Fig 9
    python -m repro trace prog.py trace.json --track f
    python -m repro equiv a.py b.c fact         # §V application
    python -m repro timeline record prog.py out.timeline.json
    python -m repro timeline scrub out.timeline.json scrub_out/
    python -m repro timeline record prog.py --tracedir run.tracedir --step
    python -m repro timeline query --tracedir run.tracedir "x changed"

The ``timeline`` sub-subcommands share one recording-source convention
(``--timeline PATH`` for a ``.timeline.json``, ``--tracedir PATH`` for a
disk-backed store; the old positional path still works) and one
``--format text|json|svg`` flag; an unknown format is a typed
``error: ...`` with exit status 2, like every other bad argument.

Each subcommand is a thin wrapper over the library API; anything beyond
these defaults is a few lines of Python against :mod:`repro` itself.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EasyTracker-reproduction tools "
        "(control and inspect Python / mini-C / RISC-V programs)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run",
        help="run a program to completion under a tracker; with --isolate "
        "the inferior runs in a sandboxed child interpreter",
    )
    run.add_argument("program")
    run.add_argument("args", nargs="*")
    run.add_argument(
        "--backend", default=None,
        help="tracker backend: python, python-mon (sys.monitoring, "
        "3.12+), python-subproc, GDB, pt, replay (default: chosen from "
        "the file extension)",
    )
    _add_isolation_arguments(run)
    run.add_argument(
        "--timeout", type=float, default=None,
        help="per-control-call deadline in seconds; a wedged inferior is "
        "interrupted instead of hanging the tool",
    )

    step = commands.add_parser(
        "step", help="one stack(-and-heap) diagram per executed line (Fig 6)"
    )
    step.add_argument("program")
    step.add_argument("output_dir")
    step.add_argument(
        "--mode", choices=("stack", "stack_heap"), default="stack_heap"
    )
    step.add_argument("--max-images", type=int, default=200)

    invariant = commands.add_parser(
        "invariant", help="array view with index markers (Fig 1)"
    )
    invariant.add_argument("program")
    invariant.add_argument("array")
    invariant.add_argument("indices", nargs="*")
    invariant.add_argument("--sorted-upto", default=None)
    invariant.add_argument("--function", default=None)
    invariant.add_argument("--output-dir", default="invariant_out")

    rectree = commands.add_parser(
        "rectree", help="recursive-call tree images (Fig 8)"
    )
    rectree.add_argument("program")
    rectree.add_argument("function")
    rectree.add_argument("args", nargs="*")
    rectree.add_argument("--output-dir", default="rectree_out")
    rectree.add_argument("--skip", type=int, default=0)

    riscv = commands.add_parser(
        "riscv", help="registers-and-memory viewer for .s programs (Fig 7)"
    )
    riscv.add_argument("program")
    riscv.add_argument("--base", type=lambda v: int(v, 0), default=0x2000_0000)
    riscv.add_argument("--size", type=int, default=64)
    riscv.add_argument("--output-dir", default=None)

    game = commands.add_parser(
        "game", help="play a debugging-game level (Fig 9)"
    )
    game.add_argument("level", nargs="?", default=None)
    game.add_argument(
        "--write-level", metavar="PATH",
        help="write the bundled buggy level to PATH and exit",
    )

    trace = commands.add_parser(
        "trace", help="record a Python Tutor trace (Fig 10)"
    )
    trace.add_argument("program")
    trace.add_argument("output")
    trace.add_argument("--track", action="append", default=None)
    trace.add_argument("--variables", action="append", default=None)

    player = commands.add_parser(
        "player", help="self-contained HTML step player for a program"
    )
    player.add_argument("program")
    player.add_argument("output", nargs="?", default="player.html")
    player.add_argument(
        "--mode", choices=("stack", "stack_heap"), default="stack_heap"
    )
    player.add_argument("--max-images", type=int, default=200)

    scopes = commands.add_parser(
        "scopes", help="scope/shadowing tables at a function boundary"
    )
    scopes.add_argument("program")
    scopes.add_argument("function")
    scopes.add_argument("--output-dir", default="scopes_out")

    equiv = commands.add_parser(
        "equiv", help="behavioral equivalence of two programs (§V)"
    )
    equiv.add_argument("program_a")
    equiv.add_argument("program_b")
    equiv.add_argument("function")
    equiv.add_argument("--function-b", default=None)
    equiv.add_argument("--args", action="append", default=None)

    timeline = commands.add_parser(
        "timeline",
        help="record, inspect, scrub, or query a recorded execution "
        "history (.timeline.json or a disk-backed .tracedir/)",
    )
    actions = timeline.add_subparsers(dest="timeline_action", required=True)

    # Options shared by every timeline sub-subcommand: one recording-path
    # convention and one output-format flag. Formats are validated by
    # hand (not argparse choices) so an unknown format is a typed
    # ``error: ...`` exit 2 like every other TrackerError.
    timeline_io = argparse.ArgumentParser(add_help=False)
    timeline_io.add_argument(
        "--timeline", default=None, metavar="PATH",
        help="path of a .timeline.json recording (or any registered "
        "timeline codec, e.g. a Python Tutor trace)",
    )
    timeline_io.add_argument(
        "--tracedir", default=None, metavar="PATH",
        help="path of a disk-backed .tracedir/ recording",
    )
    timeline_io.add_argument(
        "--format", default=None, metavar="FMT",
        help="output format: text, json, or svg (each action supports a "
        "subset; unknown formats are a typed error)",
    )

    record = actions.add_parser(
        "record", parents=[timeline_io],
        help="run a program to completion and save its timeline "
        "(--timeline/positional: one .timeline.json; --tracedir: an "
        "indexed disk-backed store that spills past --max-snapshots)",
    )
    record.add_argument("program")
    record.add_argument("output", nargs="?", default=None)
    record.add_argument(
        "--backend", default=None,
        help="tracker backend: python, python-mon (sys.monitoring, "
        "3.12+), python-subproc, GDB, pt, replay (default: chosen from "
        "the file extension)",
    )
    record.add_argument("--keyframe-interval", type=int, default=16)
    record.add_argument(
        "--max-snapshots", type=int, default=None,
        help="in-memory ring-buffer bound; beyond it, oldest snapshots "
        "are evicted (dropped, or spilled to disk with --tracedir)",
    )
    record.add_argument(
        "--step", action="store_true",
        help="pause (and snapshot) at every line instead of every stop",
    )
    record.add_argument(
        "--track", action="append", default=None, metavar="FUNC",
        help="also pause at entry/exit of FUNC (repeatable); entry/exit "
        "pauses are what give the trace index its call/return records, "
        "so 'timeline query \"FUNC() == ...\"' has data to answer from",
    )
    _add_isolation_arguments(record)

    info = actions.add_parser(
        "info", parents=[timeline_io],
        help="print stats and the pause listing of a saved recording "
        "(--format text|json)",
    )
    info.add_argument("path", nargs="?", default=None)

    scrub = actions.add_parser(
        "scrub", parents=[timeline_io],
        help="render scrub-strip images from a saved recording "
        "(--format svg)",
    )
    scrub.add_argument("path", nargs="?", default=None)
    scrub.add_argument("output_dir")
    scrub.add_argument("--max-images", type=int, default=50)

    query = actions.add_parser(
        "query", parents=[timeline_io],
        help="ask a question of a recording: 'x changed', "
        "'f() == INVALID', 'len(heap) > 100', 'x >= 7' "
        "(--format text|json)",
    )
    query.add_argument(
        "expression", nargs="+",
        help="the query expression (quoting is optional: "
        "bare words are joined with spaces)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the multiplexing tracker service: many debugging "
        "sessions over one event loop, drawn from a warm pool of "
        "pre-forked child interpreters",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address"
    )
    serve.add_argument(
        "--port", type=int, default=6300,
        help="TCP port (0 picks a free one; printed on startup)",
    )
    serve.add_argument(
        "--stdio", action="store_true",
        help="serve a single connection over stdin/stdout instead of TCP "
        "(drop-in for a dedicated child server; legacy MI clients work "
        "unchanged)",
    )
    serve.add_argument(
        "--pool", type=int, default=4, metavar="N",
        help="warm child servers to keep pre-forked (0 disables warming)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=16, metavar="N",
        help="concurrent-session bound (admission control)",
    )
    serve.add_argument(
        "--reject-when-full", action="store_true",
        help="reject session opens at capacity instead of queueing them",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="close sessions with no activity for this long",
    )
    serve.add_argument(
        "--detach-grace", type=float, default=30.0, metavar="SECONDS",
        help="keep a session alive this long after its connection drops "
        "so the client can reconnect and -session-attach (0 disables: "
        "a dropped connection closes its sessions immediately)",
    )
    serve.add_argument(
        "--token-file", default=None, metavar="PATH",
        help="require clients to authenticate with the shared secret "
        "read from this file (-service-auth <token> before anything "
        "else); without it, any connection is accepted",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=8, metavar="N",
        help="per-session in-flight command bound; excess commands get "
        "a typed retry-after rejection (0 disables)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="on SIGTERM, let in-flight commands finish for up to this "
        "long before closing sessions",
    )
    serve.add_argument(
        "--snapshot-dir", default=None, metavar="DIR",
        help="on drain, dump each recording session's timeline to "
        "DIR/<session>.timeline.json before closing it",
    )
    serve.add_argument(
        "--tls-cert", default=None, metavar="PEM",
        help="serve TLS with this certificate chain (requires --tls-key); "
        "non-loopback binds refuse to start without TLS or a token",
    )
    serve.add_argument(
        "--tls-key", default=None, metavar="PEM",
        help="private key for --tls-cert",
    )

    return parser


def _add_isolation_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--isolate", action="store_true",
        help="run a Python inferior out of process (backend "
        "python-subproc): a crash, os._exit or resource blow-up kills "
        "the child interpreter, never the tool",
    )
    parser.add_argument(
        "--limit-as", type=int, default=None, metavar="BYTES",
        help="cap the isolated child's address space (implies --isolate)",
    )
    parser.add_argument(
        "--limit-cpu", type=int, default=None, metavar="SECONDS",
        help="cap the isolated child's CPU time (implies --isolate)",
    )
    parser.add_argument(
        "--limit-fsize", type=int, default=None, metavar="BYTES",
        help="cap files written by the isolated child (implies --isolate)",
    )


def _make_tracker(options: argparse.Namespace):
    """Build the tracker a ``run``/``timeline record`` invocation asks for."""
    from repro.core.factory import init_tracker

    backend = options.backend
    if backend is None:
        backend = "python" if options.program.endswith(".py") else "GDB"
    isolate = options.isolate or any(
        value is not None
        for value in (options.limit_as, options.limit_cpu, options.limit_fsize)
    )
    if isolate and backend.lower() == "python":
        backend = "python-subproc"
    kwargs = {}
    if backend.lower() == "python-subproc":
        from repro.subproc.limits import ResourceLimits

        kwargs["resource_limits"] = ResourceLimits(
            address_space=options.limit_as,
            cpu_seconds=options.limit_cpu,
            file_size=options.limit_fsize,
        )
    return init_tracker(backend, **kwargs)


def _run_command(options: argparse.Namespace) -> int:
    """``repro run``: drive a program to completion, relay its output."""
    tracker = _make_tracker(options)
    if options.timeout is not None:
        tracker.default_timeout = options.timeout
    tracker.load_program(options.program, options.args)
    try:
        tracker.start()
        while tracker.get_exit_code() is None:
            tracker.resume()
        exit_code = tracker.get_exit_code()
        sys.stdout.write(tracker.get_output())
        error = getattr(tracker, "exit_error", None)
        if error:
            print(f"inferior error: {error}", file=sys.stderr)
    finally:
        tracker.terminate()
    return exit_code


def _serve_command(options: argparse.Namespace) -> int:
    """``repro serve``: the multiplexing tracker service (TCP or stdio)."""
    import asyncio

    from repro.service import ServiceConfig, TrackerService

    token = None
    if options.token_file is not None:
        try:
            with open(options.token_file) as handle:
                token = handle.read().strip()
        except OSError as error:
            print(f"cannot read token file: {error}", file=sys.stderr)
            return 2
        if not token:
            print(
                f"token file {options.token_file!r} is empty",
                file=sys.stderr,
            )
            return 2
    tls = bool(options.tls_cert or options.tls_key)
    if tls and not (options.tls_cert and options.tls_key):
        print(
            "TLS needs both --tls-cert and --tls-key",
            file=sys.stderr,
        )
        return 2
    loopback = options.host in ("127.0.0.1", "localhost", "::1")
    if not options.stdio and not loopback:
        if token is None and not tls:
            # A tokenless, plaintext, non-loopback bind means any host
            # that can reach the port runs arbitrary code — refuse, this
            # is never what anyone wants in production.
            print(
                f"refusing to bind {options.host} without --token-file or "
                "TLS (--tls-cert/--tls-key): any host that can reach this "
                "port could run arbitrary code",
                file=sys.stderr,
                flush=True,
            )
            return 2
        if token is None:
            print(
                f"warning: binding {options.host} with TLS but no "
                "--token-file — any client trusting the certificate can "
                "run arbitrary code",
                file=sys.stderr,
                flush=True,
            )

    config = ServiceConfig(
        host=options.host,
        port=options.port,
        pool_size=options.pool,
        max_sessions=options.max_sessions,
        queue=not options.reject_when_full,
        idle_timeout=options.idle_timeout,
        detach_grace=options.detach_grace or None,
        token=token,
        session_queue_limit=options.queue_limit,
        drain_deadline=options.drain_timeout,
        snapshot_dir=options.snapshot_dir,
        tls_cert=options.tls_cert,
        tls_key=options.tls_key,
    )
    service = TrackerService(config)

    if options.stdio:
        return asyncio.run(service.run_stdio())

    async def _serve_tcp() -> int:
        await service.start()
        host, port = service.address
        print(
            f"tracker service listening on {host}:{port} "
            f"(pool={config.pool_size}, max-sessions={config.max_sessions})",
            file=sys.stderr,
            flush=True,
        )
        try:
            await service.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - shutdown path
            pass
        finally:
            await service.close()
        return 0

    try:
        return asyncio.run(_serve_tcp())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        return 0


#: Every format any ``timeline`` action understands; per-action support
#: is a subset (``_resolve_format``).
_TIMELINE_FORMATS = ("text", "json", "svg")


def _resolve_format(
    options: argparse.Namespace, default: str, supported: tuple
) -> str:
    """Validate ``--format`` by hand so bad values are typed errors."""
    from repro.core.errors import TrackerError

    chosen = options.format or default
    if chosen not in _TIMELINE_FORMATS:
        raise TrackerError(
            f"unknown format {chosen!r} "
            f"(choose from {', '.join(_TIMELINE_FORMATS)})"
        )
    if chosen not in supported:
        raise TrackerError(
            f"format {chosen!r} is not supported by "
            f"'timeline {options.timeline_action}' "
            f"(supported: {', '.join(supported)})"
        )
    return chosen


def _recording_path(options: argparse.Namespace) -> str:
    """The one recording path an inspect-side action should open.

    Accepts the shared ``--timeline``/``--tracedir`` options or the
    legacy positional path; refuses ambiguity with a typed error.
    """
    from repro.core.errors import TrackerError

    given = [
        path
        for path in (
            getattr(options, "path", None),
            options.timeline,
            options.tracedir,
        )
        if path
    ]
    if not given:
        raise TrackerError(
            "no recording given: pass a path, --timeline PATH, or "
            "--tracedir PATH"
        )
    if len(set(given)) > 1:
        raise TrackerError(
            f"conflicting recording paths: {', '.join(sorted(set(given)))}"
        )
    return given[0]


def _timeline_command(options: argparse.Namespace) -> int:
    """``repro timeline`` sub-subcommands (record / info / scrub / query)."""
    from repro.core.errors import TrackerError

    if options.timeline_action == "record":
        return _timeline_record(options)

    if options.timeline_action == "query":
        return _timeline_query(options)

    from repro.core.timeline import load_timeline

    path = _recording_path(options)
    timeline = load_timeline(path)
    if options.timeline_action == "info":
        chosen = _resolve_format(options, "text", ("text", "json"))
        first = timeline.first_index
        if chosen == "json":
            import json as json_module

            pauses = []
            for index in range(first, len(timeline)):
                snapshot = timeline.snapshot(index)
                pauses.append(
                    {
                        "index": index,
                        "reason": (
                            snapshot.reason.type.name.lower()
                            if snapshot.reason
                            else "step"
                        ),
                        "line": snapshot.line,
                        "function": snapshot.func_name,
                    }
                )
            print(
                json_module.dumps(
                    {
                        "program": timeline.program or None,
                        "backend": timeline.backend or None,
                        "snapshots": len(timeline),
                        "first_index": first,
                        "retained": timeline.retained,
                        "pauses": pauses,
                    },
                    indent=2,
                )
            )
            return 0
        print(f"program:  {timeline.program or '<unknown>'}")
        print(f"backend:  {timeline.backend or '<unknown>'}")
        print(
            f"retained: {timeline.retained} snapshots "
            f"(global indexes {first}..{len(timeline) - 1})"
        )
        for index in range(first, len(timeline)):
            snapshot = timeline.snapshot(index)
            kind = (
                snapshot.reason.type.name.lower() if snapshot.reason else "step"
            )
            where = (
                f"line {snapshot.line}"
                if snapshot.line is not None
                else "(no line)"
            )
            func = f" in {snapshot.func_name}" if snapshot.func_name else ""
            print(f"  #{index:<4} {kind:<10} {where}{func}")
        return 0

    if options.timeline_action == "scrub":
        _resolve_format(options, "svg", ("svg",))
        from repro.tools.timeline_view import render_timeline

        images = render_timeline(
            timeline, options.output_dir, max_images=options.max_images
        )
        print(f"wrote {len(images)} scrub views to {options.output_dir}/")
        return 0

    raise TrackerError(
        f"unknown timeline action {options.timeline_action!r}"
    )  # pragma: no cover - argparse rejects first


def _timeline_record(options: argparse.Namespace) -> int:
    from repro.core.errors import TrackerError

    output = options.output or options.timeline
    tracedir = options.tracedir
    if output is None and tracedir is None:
        raise TrackerError(
            "no destination given: pass an output path (or --timeline "
            "PATH) for a .timeline.json, or --tracedir PATH for a "
            "disk-backed store"
        )
    tracker = _make_tracker(options)
    tracker.load_program(options.program)
    tracker.enable_recording(
        keyframe_interval=options.keyframe_interval,
        max_snapshots=options.max_snapshots,
        tracedir=tracedir,
    )
    tracker.start()
    for function in options.track or ():
        tracker.track_function(function)
    move = tracker.step if options.step else tracker.resume
    try:
        while tracker.get_exit_code() is None:
            move()
        timeline = tracker.timeline
        if output is not None:
            timeline.save(output)
    finally:
        tracker.terminate()  # seals the tracedir (manifest + index)
    window = f"[{timeline.first_index}..{len(timeline) - 1}]"
    destinations = " and ".join(
        name for name in (output, tracedir) if name is not None
    )
    print(
        f"recorded {timeline.retained} snapshots (window {window}) "
        f"to {destinations}"
    )
    return 0


def _timeline_query(options: argparse.Namespace) -> int:
    from repro.core.tracestore import TimelineView

    chosen = _resolve_format(options, "text", ("text", "json"))
    view = TimelineView.open(_recording_path(options))
    result = view.query(" ".join(options.expression))
    if chosen == "json":
        import json as json_module

        print(json_module.dumps(result.to_dict(), indent=2))
        return 0
    if result.kind == "calls":
        for match in result.matches:
            call = match.get("call_index")
            ret = match.get("return_index")
            span = f"#{call}" if call is not None else "#?"
            if ret is not None:
                span += f" -> #{ret}"
            print(
                f"  {span:<14} {match['function']}() "
                f"returned {match.get('returned')}"
            )
    else:
        for match in result.matches:
            where = (
                f"(line {match.get('line')}"
                + (
                    f" in {match['function']})"
                    if match.get("function")
                    else ")"
                )
            )
            print(
                f"  #{match['index']:<5} {match['variable']} = "
                f"{match.get('value')}  {where}"
            )
    count = len(result.matches)
    noun = "match" if count == 1 else "matches"
    print(f"{count} {noun} for: {result.text}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``; returns the exit status."""
    from repro.core.errors import TrackerError

    try:
        return _dispatch(build_parser().parse_args(argv))
    except TrackerError as error:
        # e.g. an unknown --backend (the message lists the registered
        # ones) or python-mon on an interpreter without sys.monitoring.
        print(f"error: {error}", file=sys.stderr)
        return 2


def _dispatch(options: argparse.Namespace) -> int:
    command = options.command

    if command == "run":
        return _run_command(options)

    if command == "serve":
        return _serve_command(options)

    if command == "step":
        from repro.tools.stepper import generate_diagrams

        images = generate_diagrams(
            options.program,
            options.output_dir,
            mode=options.mode,
            max_images=options.max_images,
        )
        print(f"wrote {len(images)} diagrams to {options.output_dir}/")
        return 0

    if command == "invariant":
        from repro.tools.array_invariant import ArrayInvariantTool

        tool = ArrayInvariantTool(
            options.program,
            array_name=options.array,
            index_names=options.indices,
            sorted_upto=options.sorted_upto,
            function=options.function,
        )
        images = tool.run(options.output_dir)
        print(f"wrote {len(images)} array views to {options.output_dir}/")
        return 0

    if command == "rectree":
        from repro.tools.recursion_tree import record_call_tree

        recording = record_call_tree(
            options.program,
            options.function,
            options.args,
            output_dir=options.output_dir,
            skip=options.skip,
        )
        root = recording.roots[0] if recording.roots else None
        if root is not None:
            print(
                f"{root.label(options.function)} -> {root.retval} "
                f"({recording.events} events, images in {options.output_dir}/)"
            )
        return 0

    if command == "riscv":
        from repro.tools.riscv_viewer import RiscvViewer

        viewer = RiscvViewer(options.program, options.base, options.size)
        if options.output_dir:
            states = viewer.run(options.output_dir)
            print(f"wrote {len(states)} views to {options.output_dir}/")
        else:
            print(viewer.run_text())
        return 0

    if command == "game":
        from repro.tools.debug_game import play_level, write_level

        if options.write_level:
            path = write_level(options.write_level)
            print(f"wrote the buggy level to {path}; edit it and replay")
            return 0
        if options.level is None:
            print("game: provide a level path or --write-level", file=sys.stderr)
            return 2
        result = play_level(options.level)
        print(result.frames[-1])
        for hint in result.hints:
            print(f"hint: {hint}")
        print("WON!" if result.won else "the door stayed closed — keep debugging")
        return 0 if result.won else 1

    if command == "trace":
        from repro.pytutor import record_trace

        mode = "tracked" if options.track else "full"
        trace = record_trace(
            options.program,
            mode=mode,
            track=options.track,
            variables=options.variables,
        )
        trace.save(options.output)
        print(
            f"recorded {len(trace.steps)} steps "
            f"({len(trace.dumps())} bytes) to {options.output}"
        )
        return 0

    if command == "player":
        from repro.tools.html_report import record_execution_player

        output = record_execution_player(
            options.program, options.output, mode=options.mode,
            max_images=options.max_images,
        )
        print(f"wrote {output} (open it in a browser; arrow keys step)")
        return 0

    if command == "scopes":
        from repro.tools.scope_view import ScopeViewTool

        images = ScopeViewTool(options.program, options.function).run(
            options.output_dir
        )
        print(f"wrote {len(images)} scope tables to {options.output_dir}/")
        return 0

    if command == "equiv":
        from repro.tools.equivalence import check_equivalence

        report = check_equivalence(
            options.program_a,
            options.program_b,
            options.function,
            function_b=options.function_b,
            argument_names=options.args,
        )
        print(report.explain())
        return 0 if report.equivalent else 1

    if command == "timeline":
        return _timeline_command(options)

    raise AssertionError(f"unhandled command {command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
