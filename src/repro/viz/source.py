"""Source-listing rendering: the code pane of the paper's figures.

Figures 1, 7 and 8 all show the inferior's source with the current line
highlighted. :func:`render_source` draws a numbered listing as SVG with an
arrow and highlight on the line about to execute; :func:`render_source_text`
produces the same thing as plain text for terminal tools (the Fig. 7 viewer
uses a split terminal).
"""

from __future__ import annotations

from typing import List, Optional

from repro.viz.svg import LINE_HEIGHT, SVGCanvas, text_width

HIGHLIGHT = "#fff3b0"
ARROW_COLOR = "#c0392b"
NUMBER_COLOR = "#888888"


def render_source(
    lines: List[str],
    current_line: Optional[int] = None,
    last_line: Optional[int] = None,
    title: str = "",
) -> SVGCanvas:
    """Render a source listing with the current line highlighted.

    Args:
        lines: source text, one string per line (1-based indexing below).
        current_line: the line about to execute (highlighted + arrow).
        last_line: the previously executed line (dimmer highlight).
        title: optional heading above the listing.

    Returns:
        The drawn canvas (call ``.save(path)`` on it).
    """
    canvas = SVGCanvas()
    top = 8
    if title:
        canvas.text(16, top + 14, title, size=15, bold=True)
        top += 26
    gutter = 46
    widest = max((text_width(line) for line in lines), default=100)
    for index, content in enumerate(lines, start=1):
        y = top + (index - 1) * LINE_HEIGHT
        if index == current_line:
            canvas.rect(
                gutter - 4, y, widest + 16, LINE_HEIGHT,
                fill=HIGHLIGHT, stroke="none",
            )
        elif index == last_line:
            canvas.rect(
                gutter - 4, y, widest + 16, LINE_HEIGHT,
                fill="#f2f2f2", stroke="none",
            )
        baseline = y + LINE_HEIGHT - 5
        if index == current_line:
            canvas.text(6, baseline, "->", size=13, fill=ARROW_COLOR, bold=True)
        canvas.text(22, baseline, str(index), size=12, fill=NUMBER_COLOR)
        canvas.text(gutter, baseline, content, size=14)
    return canvas


def render_source_text(
    lines: List[str],
    current_line: Optional[int] = None,
    context: Optional[int] = None,
) -> str:
    """A plain-text listing with a ``=>`` marker on the current line.

    Args:
        lines: source text, one string per line.
        current_line: 1-based line to mark.
        context: if given, only show this many lines around the marker.
    """
    start, end = 1, len(lines)
    if context is not None and current_line is not None:
        start = max(1, current_line - context)
        end = min(len(lines), current_line + context)
    rendered = []
    for index in range(start, end + 1):
        marker = "=>" if index == current_line else "  "
        rendered.append(f"{marker} {index:4d}  {lines[index - 1]}")
    return "\n".join(rendered)
