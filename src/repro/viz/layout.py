"""Tree layout for call-tree visualizations (the ``dot`` stand-in).

A simple bottom-up tidy layout: each leaf gets a unit-width slot, each
internal node is centered over its children, and levels map to rows. This
is all the recursion visualizer (paper Fig. 8) needs from graphviz.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class TreeNode:
    """A node of a layout tree; ``payload`` is caller-defined."""

    label: str
    payload: object = None
    children: List["TreeNode"] = field(default_factory=list)
    #: filled by :func:`layout_tree`
    x: float = 0.0
    y: float = 0.0
    width: float = 0.0
    height: float = 0.0

    def add(self, child: "TreeNode") -> "TreeNode":
        self.children.append(child)
        return child

    def walk(self) -> List["TreeNode"]:
        """All nodes, depth-first preorder."""
        nodes = [self]
        for child in self.children:
            nodes.extend(child.walk())
        return nodes


def layout_tree(
    root: TreeNode,
    node_width: float = 110,
    node_height: float = 48,
    h_gap: float = 24,
    v_gap: float = 42,
    measure=None,
) -> Tuple[float, float]:
    """Assign x/y/width/height to every node; return the canvas size.

    Args:
        root: the tree to lay out.
        node_width: default node width (used when ``measure`` is None).
        node_height: node height.
        h_gap: horizontal gap between sibling subtrees.
        v_gap: vertical gap between levels.
        measure: optional callable ``measure(node) -> width`` for
            content-dependent node widths.

    Returns:
        (total width, total height) of the laid-out drawing.
    """
    widths: Dict[int, float] = {}

    def node_w(node: TreeNode) -> float:
        return measure(node) if measure else node_width

    def subtree_width(node: TreeNode) -> float:
        key = id(node)
        if key in widths:
            return widths[key]
        own = node_w(node)
        if not node.children:
            widths[key] = own
            return own
        total = sum(subtree_width(child) for child in node.children)
        total += h_gap * (len(node.children) - 1)
        widths[key] = max(own, total)
        return widths[key]

    max_depth = 0

    def place(node: TreeNode, left: float, depth: int) -> None:
        nonlocal max_depth
        max_depth = max(max_depth, depth)
        own = node_w(node)
        span = subtree_width(node)
        node.width = own
        node.height = node_height
        node.x = left + span / 2 - own / 2
        node.y = depth * (node_height + v_gap)
        child_left = left + (span - _children_span(node)) / 2
        for child in node.children:
            place(child, child_left, depth + 1)
            child_left += subtree_width(child) + h_gap

    def _children_span(node: TreeNode) -> float:
        if not node.children:
            return 0.0
        total = sum(subtree_width(child) for child in node.children)
        return total + h_gap * (len(node.children) - 1)

    place(root, 0.0, 0)
    total_width = subtree_width(root)
    total_height = (max_depth + 1) * node_height + max_depth * v_gap
    return total_width, total_height
