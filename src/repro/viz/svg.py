"""A small SVG document builder.

The bundled tools render stack diagrams, heap graphs, call trees and source
listings as standalone ``.svg`` files. This module provides the primitive
layer: shapes, text, arrows, groups, automatic canvas sizing, and XML
escaping. No external renderer is needed — the files open in any browser.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Default monospace metrics used for text measurement (px per char at 14px).
CHAR_WIDTH = 8.4
LINE_HEIGHT = 18


@dataclass
class _Element:
    tag: str
    attributes: dict
    text: Optional[str] = None
    children: List["_Element"] = field(default_factory=list)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        attrs = "".join(
            f' {name.replace("_", "-")}="{value}"'
            for name, value in self.attributes.items()
            if value is not None
        )
        if self.text is None and not self.children:
            return f"{pad}<{self.tag}{attrs}/>"
        parts = [f"{pad}<{self.tag}{attrs}>"]
        if self.text is not None:
            parts[-1] += html.escape(self.text) + f"</{self.tag}>"
            return "".join(parts)
        for child in self.children:
            parts.append(child.render(indent + 1))
        parts.append(f"{pad}</{self.tag}>")
        return "\n".join(parts)


class SVGCanvas:
    """Accumulates shapes; tracks the bounding box; serializes to SVG.

    All coordinates are in pixels; the canvas grows to fit whatever is
    drawn (plus ``margin``).
    """

    def __init__(self, margin: int = 12, background: str = "white"):
        self.margin = margin
        self.background = background
        self._elements: List[_Element] = []
        self._max_x = 0.0
        self._max_y = 0.0

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------

    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        fill: str = "none",
        stroke: str = "black",
        stroke_width: float = 1,
        rx: float = 0,
    ) -> None:
        """An axis-aligned rectangle."""
        self._track(x + width, y + height)
        self._elements.append(
            _Element(
                "rect",
                {
                    "x": _fmt(x),
                    "y": _fmt(y),
                    "width": _fmt(width),
                    "height": _fmt(height),
                    "fill": fill,
                    "stroke": stroke,
                    "stroke_width": _fmt(stroke_width),
                    "rx": _fmt(rx) if rx else None,
                },
            )
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: int = 14,
        fill: str = "black",
        bold: bool = False,
        anchor: str = "start",
        family: str = "monospace",
    ) -> None:
        """A text run; ``y`` is the baseline."""
        width = len(content) * CHAR_WIDTH * size / 14.0
        self._track(x + (width if anchor == "start" else width / 2), y)
        self._elements.append(
            _Element(
                "text",
                {
                    "x": _fmt(x),
                    "y": _fmt(y),
                    "font_size": size,
                    "fill": fill,
                    "font_family": family,
                    "font_weight": "bold" if bold else None,
                    "text_anchor": anchor if anchor != "start" else None,
                },
                text=content,
            )
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "black",
        stroke_width: float = 1,
        dashed: bool = False,
    ) -> None:
        """A straight segment."""
        self._track(max(x1, x2), max(y1, y2))
        self._elements.append(
            _Element(
                "line",
                {
                    "x1": _fmt(x1),
                    "y1": _fmt(y1),
                    "x2": _fmt(x2),
                    "y2": _fmt(y2),
                    "stroke": stroke,
                    "stroke_width": _fmt(stroke_width),
                    "stroke_dasharray": "5,3" if dashed else None,
                },
            )
        )

    def arrow(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "black",
        stroke_width: float = 1.2,
        dashed: bool = False,
    ) -> None:
        """A segment with an arrowhead at (x2, y2) — the reference arrow."""
        self.line(x1, y1, x2, y2, stroke, stroke_width, dashed)
        # Arrowhead: two short strokes back from the tip.
        import math

        angle = math.atan2(y2 - y1, x2 - x1)
        size = 7
        for spread in (math.pi / 7, -math.pi / 7):
            self.line(
                x2,
                y2,
                x2 - size * math.cos(angle - spread),
                y2 - size * math.sin(angle - spread),
                stroke,
                stroke_width,
            )

    def cross(
        self, x: float, y: float, size: float = 6, stroke: str = "#c0392b"
    ) -> None:
        """The paper's invalid-pointer marker: a small ✕."""
        self.line(x - size, y - size, x + size, y + size, stroke, 2)
        self.line(x - size, y + size, x + size, y - size, stroke, 2)

    def curve(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        bend: float = 30,
        stroke: str = "black",
        stroke_width: float = 1.2,
        arrow: bool = True,
    ) -> None:
        """A quadratic curve (used for back edges in call trees)."""
        self._track(max(x1, x2) + abs(bend), max(y1, y2))
        mid_x = (x1 + x2) / 2 + bend
        mid_y = (y1 + y2) / 2
        self._elements.append(
            _Element(
                "path",
                {
                    "d": f"M {_fmt(x1)} {_fmt(y1)} Q {_fmt(mid_x)} {_fmt(mid_y)} "
                    f"{_fmt(x2)} {_fmt(y2)}",
                    "fill": "none",
                    "stroke": stroke,
                    "stroke_width": _fmt(stroke_width),
                },
            )
        )
        if arrow:
            import math

            angle = math.atan2(y2 - mid_y, x2 - mid_x)
            size = 7
            for spread in (math.pi / 7, -math.pi / 7):
                self.line(
                    x2,
                    y2,
                    x2 - size * math.cos(angle - spread),
                    y2 - size * math.sin(angle - spread),
                    stroke,
                    stroke_width,
                )

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def _track(self, x: float, y: float) -> None:
        self._max_x = max(self._max_x, x)
        self._max_y = max(self._max_y, y)

    @property
    def width(self) -> float:
        return self._max_x + self.margin

    @property
    def height(self) -> float:
        return self._max_y + self.margin

    def render(self) -> str:
        """The complete SVG document as a string."""
        width = _fmt(self.width)
        height = _fmt(self.height)
        lines = [
            '<?xml version="1.0" encoding="UTF-8"?>',
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">',
        ]
        if self.background != "none":
            lines.append(
                f'  <rect x="0" y="0" width="{width}" height="{height}" '
                f'fill="{self.background}"/>'
            )
        for element in self._elements:
            lines.append(element.render(1))
        lines.append("</svg>")
        return "\n".join(lines)

    def save(self, path: str) -> None:
        """Write the SVG document to ``path``."""
        with open(path, "w", encoding="utf-8") as output:
            output.write(self.render())


def text_width(content: str, size: int = 14) -> float:
    """Measured width of a monospace text run at the given font size."""
    return len(content) * CHAR_WIDTH * size / 14.0


def _fmt(value: float) -> str:
    rounded = round(value, 2)
    if rounded == int(rounded):
        return str(int(rounded))
    return str(rounded)
