"""Visualization substrate: SVG writer, tree layout, source listings."""

from repro.viz.layout import TreeNode, layout_tree
from repro.viz.source import render_source, render_source_text
from repro.viz.svg import LINE_HEIGHT, SVGCanvas, text_width

__all__ = [
    "LINE_HEIGHT",
    "SVGCanvas",
    "TreeNode",
    "layout_tree",
    "render_source",
    "render_source_text",
    "text_width",
]
