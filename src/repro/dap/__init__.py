"""Debug Adapter Protocol server over the tracker API (Table II bridge)."""

from repro.dap.adapter import DebugAdapter, serve
from repro.dap.protocol import (
    make_event,
    make_request,
    make_response,
    read_message,
    write_message,
)

__all__ = [
    "DebugAdapter",
    "make_event",
    "make_request",
    "make_response",
    "read_message",
    "serve",
    "write_message",
]
