"""Debug Adapter Protocol wire format.

DAP (the protocol behind vs-code's debugger UI, discussed in the paper's
Table II) frames JSON messages with an HTTP-ish header::

    Content-Length: 119\\r\\n
    \\r\\n
    {"seq": 1, "type": "request", "command": "initialize", ...}

This module provides the three message constructors (request / response /
event) and blocking read/write over binary streams. The adapter itself is
in :mod:`repro.dap.adapter`.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO, Dict, Optional

from repro.core.errors import ProtocolError


def make_request(
    seq: int, command: str, arguments: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    message: Dict[str, Any] = {"seq": seq, "type": "request", "command": command}
    if arguments is not None:
        message["arguments"] = arguments
    return message


def make_response(
    seq: int,
    request: Dict[str, Any],
    body: Optional[Dict[str, Any]] = None,
    success: bool = True,
    message: Optional[str] = None,
) -> Dict[str, Any]:
    response: Dict[str, Any] = {
        "seq": seq,
        "type": "response",
        "request_seq": request.get("seq", 0),
        "command": request.get("command", ""),
        "success": success,
    }
    if body is not None:
        response["body"] = body
    if message is not None:
        response["message"] = message
    return response


def make_event(
    seq: int, event: str, body: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    message: Dict[str, Any] = {"seq": seq, "type": "event", "event": event}
    if body is not None:
        message["body"] = body
    return message


def write_message(stream: BinaryIO, message: Dict[str, Any]) -> None:
    """Frame and write one DAP message."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    stream.write(f"Content-Length: {len(payload)}\r\n\r\n".encode("ascii"))
    stream.write(payload)
    stream.flush()


def read_message(stream: BinaryIO) -> Optional[Dict[str, Any]]:
    """Read one framed DAP message; ``None`` at end of stream."""
    content_length: Optional[int] = None
    while True:
        line = stream.readline()
        if not line:
            return None
        line = line.strip()
        if not line:
            break
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            try:
                content_length = int(value.strip())
            except ValueError as error:
                raise ProtocolError(f"bad Content-Length: {value!r}") from error
    if content_length is None:
        raise ProtocolError("DAP message without Content-Length header")
    payload = stream.read(content_length)
    if len(payload) < content_length:
        raise ProtocolError("truncated DAP message")
    try:
        return json.loads(payload.decode("utf-8"))
    except json.JSONDecodeError as error:
        raise ProtocolError(f"unparsable DAP payload: {error}") from error
