"""A Debug Adapter Protocol server over the tracker API.

The paper's Table II discusses DAP as the one debugger machine interface
with broad front-end adoption, but notes it is still low-level and lacks
the teaching-oriented features. This adapter closes the loop from the
other side: because the tracker API is a *superset* of what DAP's core
requests need, any tracker backend (Python, mini-C, RISC-V assembly, or a
recorded PT trace) can sit behind a standard DAP front-end.

``DebugAdapter.handle(request)`` is pure — a request dict in, a list of
response/event dicts out — so every request is unit-testable;
:func:`serve` adds the framed stdio loop for real clients.

Implemented requests: initialize, launch, setBreakpoints,
setFunctionBreakpoints, configurationDone, threads, stackTrace, scopes,
variables, continue, next, stepIn, stepOut, evaluate, disconnect, plus the
non-standard ``trackerStats`` (the engine's observability counters).
"""

from __future__ import annotations

from typing import Any, BinaryIO, Dict, List, Optional

from repro.core.errors import (
    BackendUnavailableError,
    ControlTimeout,
    TrackerError,
)
from repro.core.factory import init_tracker
from repro.core.pause import PauseReasonType
from repro.core.state import AbstractType, Value, Variable
from repro.core.tracker import Tracker
from repro.dap import protocol

#: The default DAP thread id. Tracker thread indexes are 0-based; DAP
#: requires positive ids, so index ``n`` is exposed as thread ``n + 1``.
THREAD_ID = 1

_STOP_REASONS = {
    PauseReasonType.BREAKPOINT: "breakpoint",
    PauseReasonType.WATCH: "data breakpoint",
    PauseReasonType.CALL: "function breakpoint",
    PauseReasonType.RETURN: "function breakpoint",
    PauseReasonType.STEP: "step",
    PauseReasonType.INTERRUPT: "pause",
    PauseReasonType.DEADLOCK_SUSPECTED: "deadlock",
}


class DebugAdapter:
    """One DAP session over one tracker."""

    def __init__(self) -> None:
        self.tracker: Optional[Tracker] = None
        self._seq = 0
        self._program: Optional[str] = None
        self._stop_on_entry = True
        self._started = False
        self._terminated_sent = False
        #: variablesReference -> list of model Variables
        self._variable_scopes: Dict[int, List[Variable]] = {}
        self._next_reference = 1

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def handle(self, request: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Process one request; return the response plus any events."""
        command = request.get("command", "")
        handler = getattr(self, "_req_" + command, None)
        if handler is None:
            return [self._error(request, f"unsupported request {command!r}")]
        try:
            return handler(request)
        except TrackerError as error:
            return [self._error(request, str(error))]

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _ok(self, request, body: Optional[Dict[str, Any]] = None):
        return protocol.make_response(self._next_seq(), request, body)

    def _error(self, request, message: str):
        return protocol.make_response(
            self._next_seq(), request, success=False, message=message
        )

    def _event(self, name: str, body: Optional[Dict[str, Any]] = None):
        return protocol.make_event(self._next_seq(), name, body)

    # ------------------------------------------------------------------
    # Lifecycle requests
    # ------------------------------------------------------------------

    def _req_initialize(self, request):
        body = {
            "supportsConfigurationDoneRequest": True,
            "supportsFunctionBreakpoints": True,
            "supportsEvaluateForHovers": True,
            # Serviced by replaying the recorded timeline (launch with
            # "record": true); covers stepBack and reverseContinue.
            "supportsStepBack": True,
        }
        return [self._ok(request, body), self._event("initialized")]

    def _req_launch(self, request):
        arguments = request.get("arguments", {})
        program = arguments.get("program")
        if not program:
            return [self._error(request, "launch needs a 'program' argument")]
        self._program = program
        self._stop_on_entry = bool(arguments.get("stopOnEntry", True))
        # Any registered factory name works here — e.g. "python-mon"
        # selects the sys.monitoring (3.12+) fast backend; an unavailable
        # one surfaces as a DAP error response listing the alternatives.
        backend = arguments.get(
            "backend", "python" if program.endswith(".py") else "GDB"
        )
        kwargs = {}
        # "isolate": true runs a Python inferior out of process, in a
        # sandboxed child interpreter; the limit arguments cap it.
        if arguments.get("isolate") and backend.lower() == "python":
            backend = "python-subproc"
        if backend.lower() == "python-subproc":
            from repro.subproc.limits import ResourceLimits

            limits = ResourceLimits(
                address_space=arguments.get("limitAddressSpace"),
                cpu_seconds=arguments.get("limitCpuSeconds"),
                file_size=arguments.get("limitFileSize"),
            )
            kwargs["resource_limits"] = limits
        self.tracker = init_tracker(backend, **kwargs)
        timeout = arguments.get("controlTimeout")
        if timeout is not None:
            self.tracker.default_timeout = float(timeout)
        self.tracker.load_program(program, arguments.get("args"))
        record = arguments.get("record")
        if record:
            options = record if isinstance(record, dict) else {}
            self.tracker.enable_recording(
                keyframe_interval=int(options.get("keyframeInterval", 16)),
                max_snapshots=options.get("maxSnapshots"),
            )
        return [self._ok(request)]

    def _req_configurationDone(self, request):
        if self.tracker is None:
            return [self._error(request, "launch first")]
        self.tracker.start()
        self._started = True
        messages = [self._ok(request)]
        if self.tracker.get_exit_code() is not None:
            messages.extend(self._exit_events())
        elif self._stop_on_entry:
            messages.append(self._stopped_event("entry"))
        else:
            messages.extend(self._run("resume"))
        return messages

    def _req_disconnect(self, request):
        if self.tracker is not None:
            self.tracker.terminate()
        return [self._ok(request)]

    # ------------------------------------------------------------------
    # Breakpoints
    # ------------------------------------------------------------------

    def _req_setBreakpoints(self, request):
        if self.tracker is None:
            return [self._error(request, "launch first")]
        arguments = request.get("arguments", {})
        requested = arguments.get("breakpoints", [])
        self.tracker.line_breakpoints.clear()
        verified = []
        for entry in requested:
            line = entry.get("line")
            self.tracker.break_before_line(line)
            verified.append({"verified": True, "line": line})
        self.tracker._control_points_changed()
        return [self._ok(request, {"breakpoints": verified})]

    def _req_setFunctionBreakpoints(self, request):
        if self.tracker is None:
            return [self._error(request, "launch first")]
        arguments = request.get("arguments", {})
        self.tracker.function_breakpoints.clear()
        verified = []
        for entry in arguments.get("breakpoints", []):
            name = entry.get("name")
            self.tracker.break_before_func(name)
            verified.append({"verified": True})
        self.tracker._control_points_changed()
        return [self._ok(request, {"breakpoints": verified})]

    # ------------------------------------------------------------------
    # Execution requests
    # ------------------------------------------------------------------

    def _req_continue(self, request):
        return [self._ok(request, {"allThreadsContinued": True})] + self._run(
            "resume"
        )

    def _req_next(self, request):
        return [self._ok(request)] + self._run("next")

    def _req_stepIn(self, request):
        return [self._ok(request)] + self._run("step")

    def _req_stepOut(self, request):
        return [self._ok(request)] + self._run("finish")

    def _req_stepBack(self, request):
        return [self._ok(request)] + self._run_backward("step")

    def _req_reverseContinue(self, request):
        return [self._ok(request)] + self._run_backward("resume")

    def _run_backward(self, mode: str) -> List[Dict[str, Any]]:
        """Rewind over the recorded timeline and report where we landed.

        Unlike :meth:`_run` there is no exit path — rewinding away from
        the end of the program clears the exit state by definition — and
        no supervision drain: reverse calls never touch the inferior.
        """
        if self.tracker is None or not self._started:
            return []
        self.tracker._backward(mode)
        self._variable_scopes.clear()
        reason = self.tracker.pause_reason
        dap_reason = _STOP_REASONS.get(
            reason.type if reason else PauseReasonType.STEP, "step"
        )
        return [self._stopped_event(dap_reason)]

    def _run(self, control: str) -> List[Dict[str, Any]]:
        if self.tracker is None or not self._started:
            return []
        try:
            getattr(self.tracker, control)()
        except ControlTimeout as error:
            return self._supervision_messages() + [
                self._output_event(f"control timeout: {error}\n")
            ]
        except BackendUnavailableError as error:
            return (
                self._supervision_messages()
                + [self._output_event(f"backend unavailable: {error}\n")]
                + [self._event("terminated")]
            )
        self._variable_scopes.clear()
        messages = self._supervision_messages()
        if self.tracker.get_exit_code() is not None:
            return messages + self._exit_events()
        reason = self.tracker.pause_reason
        dap_reason = _STOP_REASONS.get(
            reason.type if reason else PauseReasonType.STEP, "step"
        )
        return messages + [self._stopped_event(dap_reason)]

    def _supervision_messages(self) -> List[Dict[str, Any]]:
        """Drained supervision events, surfaced as DAP output events."""
        if self.tracker is None:
            return []
        return [
            self._output_event(f"[{event.kind}] {event.message}\n")
            for event in self.tracker.drain_supervision_events()
        ]

    def _output_event(self, text: str):
        return self._event(
            "output", {"category": "console", "output": text}
        )

    def _stopped_event(self, reason: str):
        pause = self.tracker.pause_reason if self.tracker else None
        thread_id = THREAD_ID
        body = {
            "reason": reason,
            "threadId": thread_id,
            "allThreadsStopped": True,
        }
        if pause is not None:
            if pause.thread is not None:
                body["threadId"] = pause.thread + 1
            if pause.type is PauseReasonType.DEADLOCK_SUSPECTED:
                waits = (pause.details or {}).get("threads", [])
                body["description"] = (
                    "suspected deadlock: all "
                    f"{len(waits)} inferior thread(s) blocked on locks"
                )
        return self._event("stopped", body)

    def _exit_events(self) -> List[Dict[str, Any]]:
        if self._terminated_sent:
            return []
        self._terminated_sent = True
        return [
            self._event("exited", {"exitCode": self.tracker.get_exit_code()}),
            self._event("terminated"),
        ]

    # ------------------------------------------------------------------
    # Inspection requests
    # ------------------------------------------------------------------

    def _req_threads(self, request):
        threads = []
        try:
            infos = self.tracker.get_threads() if self.tracker else []
        except TrackerError:
            infos = []
        for info in infos:
            name = info.name or f"thread-{info.id}"
            threads.append(
                {"id": info.id + 1, "name": f"{name} [{info.state}]"}
            )
        if not threads:
            threads = [{"id": THREAD_ID, "name": "inferior"}]
        return [self._ok(request, {"threads": threads})]

    def _req_stackTrace(self, request):
        requested = request.get("arguments", {}).get("threadId")
        pause = self.tracker.pause_reason
        current = (pause.thread if pause and pause.thread is not None else 0) + 1
        if requested is not None and requested != current:
            # Another thread's stack is view-only: the frame ids are
            # deliberately out of the scopes/variables range.
            try:
                frames = self.tracker.get_thread_frames(requested - 1)
            except TrackerError:
                frames = []
            stack = [
                {
                    "id": 10_000 + index,
                    "name": frame.name,
                    "line": frame.line or 0,
                    "column": 1,
                    "source": {"path": frame.filename or self._program},
                }
                for index, frame in enumerate(frames)
            ]
            return [
                self._ok(
                    request,
                    {"stackFrames": stack, "totalFrames": len(stack)},
                )
            ]
        frames = []
        for index, frame in enumerate(self.tracker.get_frames()):
            frames.append(
                {
                    "id": index,
                    "name": frame.name,
                    "line": frame.line or 0,
                    "column": 1,
                    "source": {"path": frame.filename or self._program},
                }
            )
        return [
            self._ok(
                request, {"stackFrames": frames, "totalFrames": len(frames)}
            )
        ]

    def _req_scopes(self, request):
        frame_id = request.get("arguments", {}).get("frameId", 0)
        frames = self.tracker.get_frames()
        if not 0 <= frame_id < len(frames):
            return [self._error(request, f"no frame {frame_id}")]
        locals_reference = self._register(list(frames[frame_id].variables.values()))
        globals_reference = self._register(
            list(self.tracker.get_global_variables().values())
        )
        return [
            self._ok(
                request,
                {
                    "scopes": [
                        {
                            "name": "Locals",
                            "variablesReference": locals_reference,
                            "expensive": False,
                        },
                        {
                            "name": "Globals",
                            "variablesReference": globals_reference,
                            "expensive": False,
                        },
                    ]
                },
            )
        ]

    def _req_variables(self, request):
        reference = request.get("arguments", {}).get("variablesReference", 0)
        variables = self._variable_scopes.get(reference)
        if variables is None:
            return [self._error(request, f"unknown variablesReference {reference}")]
        rendered = [self._render_variable(variable) for variable in variables]
        return [self._ok(request, {"variables": rendered})]

    def _req_trackerStats(self, request):
        """Non-standard extension: the tracker's observability counters."""
        if self.tracker is None:
            return [self._error(request, "launch first")]
        return [self._ok(request, self.tracker.get_stats().to_dict())]

    def _req_evaluate(self, request):
        expression = request.get("arguments", {}).get("expression", "")
        function = None
        name = expression
        if ":" in expression:
            function, name = expression.split(":", 1)
        variable = self.tracker.get_variable(name, function)
        if variable is None:
            return [self._error(request, f"cannot evaluate {expression!r}")]
        chased = _chase(variable.value)
        return [
            self._ok(
                request,
                {
                    "result": chased.render(),
                    "type": chased.language_type,
                    "variablesReference": self._children_reference(chased),
                },
            )
        ]

    # ------------------------------------------------------------------
    # Value rendering with nested references
    # ------------------------------------------------------------------

    def _register(self, variables: List[Variable]) -> int:
        reference = self._next_reference
        self._next_reference += 1
        self._variable_scopes[reference] = variables
        return reference

    def _render_variable(self, variable: Variable) -> Dict[str, Any]:
        value = _chase(variable.value)
        return {
            "name": variable.name,
            "value": value.render(),
            "type": value.language_type,
            "variablesReference": self._children_reference(value),
        }

    def _children_reference(self, value: Value) -> int:
        """Structured values get a reference expanding to their children."""
        children: List[Variable] = []
        if value.abstract_type is AbstractType.LIST:
            children = [
                Variable(name=str(index), value=element)
                for index, element in enumerate(value.content)
            ]
        elif value.abstract_type is AbstractType.STRUCT:
            children = [
                Variable(name=name, value=element)
                for name, element in value.content.items()
            ]
        elif value.abstract_type is AbstractType.DICT:
            children = [
                Variable(name=key.render(), value=element)
                for key, element in value.content.items()
            ]
        if not children:
            return 0
        return self._register(children)


def _chase(value: Value) -> Value:
    while value.abstract_type is AbstractType.REF:
        value = value.content
    return value


def serve(input_stream: BinaryIO, output_stream: BinaryIO) -> None:
    """The framed stdio loop: run one DAP session until disconnect/EOF."""
    adapter = DebugAdapter()
    while True:
        request = protocol.read_message(input_stream)
        if request is None:
            break
        for message in adapter.handle(request):
            protocol.write_message(output_stream, message)
        if request.get("command") == "disconnect":
            break


def main() -> int:  # pragma: no cover - exercised via tests on handle()
    import sys

    serve(sys.stdin.buffer, sys.stdout.buffer)
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
