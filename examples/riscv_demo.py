#!/usr/bin/env python3
"""Fig. 7: the RISC-V registers-and-memory viewer.

Steps an assembly program that sums an array, showing the source next to
the CPU registers (pc and sp emphasized) and raw memory as a 1-D word
array — the compiler-course view of the machine. State is read through the
GDB-tracker-specific ``get_registers_gdb`` / ``get_value_at_gdb`` calls.

Run: ``python examples/riscv_demo.py [output_dir]``
"""

import os
import sys
import tempfile

from repro.riscv.assembler import DATA_BASE
from repro.tools.riscv_viewer import RiscvViewer

INFERIOR = """\
    .data
arr:    .word 3, 1, 4, 1, 5
n:      .word 5
    .text
main:
    la   t0, arr        # t0 = &arr[0]
    lw   t1, n          # t1 = n
    li   t2, 0          # t2 = sum
loop:
    beqz t1, done
    lw   t3, 0(t0)
    add  t2, t2, t3
    addi t0, t0, 4
    addi t1, t1, -1
    j    loop
done:
    mv   a0, t2         # print the sum
    li   a7, 1
    ecall
    li   a7, 93
    li   a0, 0
    ecall
"""


def main() -> None:
    output_dir = sys.argv[1] if len(sys.argv) >= 2 else None
    with tempfile.TemporaryDirectory() as workdir:
        program = os.path.join(workdir, "sum.s")
        with open(program, "w", encoding="utf-8") as output:
            output.write(INFERIOR)
        viewer = RiscvViewer(program, memory_base=DATA_BASE, memory_size=32)
        if output_dir:
            states = viewer.run(output_dir)
            print(f"wrote {len(states)} register/memory views to {output_dir}/")
        # Terminal rendering (the paper's split-pane view), last pane only:
        panes = viewer.run_text(max_steps=200)
        print(panes.rsplit("=" * 72, 1)[-1])


if __name__ == "__main__":
    main()
