#!/usr/bin/env python3
"""Fig. 10 / Section III-E: Python Tutor trace export and replay.

Three parts:
1. Record a *full* PT trace (a step per line) of a recursive program.
2. Record a *partial* trace — only entry/exit of the tracked function,
   only the chosen variables — and compare sizes (the paper reports a
   ~10x reduction on its Fig. 8 example).
3. Replay the partial trace behind the full tracker API with the PT
   tracker, including reverse stepping.

Run: ``python examples/pt_export_demo.py``
"""

import os
import tempfile

from repro.api import init_tracker, PauseReasonType
from repro.pytutor import record_trace

INFERIOR = """\
def subsets(items, chosen):
    if not items:
        return [list(chosen)]
    head, tail = items[0], items[1:]
    without = subsets(tail, chosen)
    chosen.append(head)
    with_head = subsets(tail, chosen)
    chosen.pop()
    return without + with_head

result = subsets([1, 2, 3, 4], [])
print(len(result), "subsets")
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        program = os.path.join(workdir, "subsets.py")
        with open(program, "w", encoding="utf-8") as output:
            output.write(INFERIOR)

        full = record_trace(program, mode="full")
        partial = record_trace(
            program, mode="tracked", track=["subsets"], variables=["items", "chosen"]
        )
        full_bytes = len(full.dumps())
        partial_bytes = len(partial.dumps())
        print(f"full trace:    {len(full.steps):4d} steps, {full_bytes:7d} bytes")
        print(f"partial trace: {len(partial.steps):4d} steps, {partial_bytes:7d} bytes")
        print(f"reduction: {full_bytes / partial_bytes:.1f}x")

        trace_path = os.path.join(workdir, "partial.json")
        partial.save(trace_path)

        # Replay the partial trace behind the same tracker API.
        tracker = init_tracker("pt")
        tracker.load_program(trace_path)
        tracker.track_function("subsets")
        tracker.start()
        calls = 0
        while tracker.get_exit_code() is None:
            tracker.resume()
            if tracker.pause_reason.type is PauseReasonType.CALL:
                calls += 1
        print(f"replayed the trace: saw {calls} calls of subsets()")
        tracker.step_back()  # recorded execution: reverse stepping works
        print("stepped backwards to line", tracker.next_lineno)
        tracker.terminate()


if __name__ == "__main__":
    main()
