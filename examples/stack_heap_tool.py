#!/usr/bin/env python3
"""The paper's Listing 1: the language-agnostic stack-and-heap tool.

Steps through the inferior and generates one SVG diagram per executed line.
Only the tracker-initialization line is language-specific; the same loop
drives Python and mini-C inferiors.

Run: ``python examples/stack_heap_tool.py [program.{py,c}] [output_dir]``
(with no arguments, demo inferiors in both languages are generated).
"""

import os
import sys
import tempfile

from repro.api import init_tracker
from repro.tools.stack_diagram import draw_stack_heap

PYTHON_DEMO = """\
def pair_up(items):
    pairs = [(item, item * 2) for item in items]
    return pairs

values = [1, 2, 3]
result = pair_up(values)
alias = result
"""

C_DEMO = """\
#include <stdlib.h>

struct point { int x; int y; };

int main(void) {
    int a = 5;
    int *p = &a;                      /* pointer into the stack */
    int *h = malloc(3 * sizeof(int)); /* pointer into the heap */
    h[0] = 10; h[1] = 20; h[2] = 30;
    struct point pt;
    pt.x = 1; pt.y = 2;
    int *dangling;                    /* uninitialized: drawn as a cross */
    free(h);                          /* now h dangles too */
    return 0;
}
"""


def run_tool(inferior: str, output_dir: str) -> int:
    """The body of the paper's Listing 1."""
    tracker = init_tracker("python" if inferior.endswith(".py") else "GDB")
    tracker.load_program(inferior)
    tracker.start()
    os.makedirs(output_dir, exist_ok=True)
    image_count = 1
    while tracker.get_exit_code() is None:
        frame = tracker.get_current_frame()
        heap_blocks = (
            tracker.get_heap_blocks()
            if hasattr(tracker, "get_heap_blocks")
            else None
        )
        canvas = draw_stack_heap(
            frame, tracker.get_global_variables(), heap_blocks
        )
        canvas.save(os.path.join(output_dir, f"{image_count:03d}-stack_heap.svg"))
        tracker.step()
        image_count += 1
    tracker.terminate()
    return image_count - 1


def main() -> None:
    if len(sys.argv) >= 2:
        inferior = sys.argv[1]
        output_dir = sys.argv[2] if len(sys.argv) >= 3 else "stack_heap_out"
        count = run_tool(inferior, output_dir)
        print(f"wrote {count} diagrams to {output_dir}/")
        return
    with tempfile.TemporaryDirectory() as workdir:
        for name, source in (("demo.py", PYTHON_DEMO), ("demo.c", C_DEMO)):
            program = os.path.join(workdir, name)
            with open(program, "w", encoding="utf-8") as output:
                output.write(source)
            output_dir = os.path.join(workdir, name.replace(".", "_") + "_out")
            count = run_tool(program, output_dir)
            print(f"{name}: wrote {count} stack-and-heap diagrams "
                  f"(e.g. {output_dir}/001-stack_heap.svg)")


if __name__ == "__main__":
    main()
