#!/usr/bin/env python3
"""Quickstart: control and inspect a Python program in ~20 lines.

Loads a small inferior, tracks a function, watches a variable, and prints
where and why the execution pauses — the minimal shape of every tool built
on the library.

Run: ``python examples/quickstart.py``
"""

import os
import tempfile

from repro.api import init_tracker, PauseReasonType

INFERIOR = """\
def factorial(n):
    if n <= 1:
        return 1
    return n * factorial(n - 1)

result = factorial(5)
print("5! =", result)
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        program = os.path.join(workdir, "factorial.py")
        with open(program, "w", encoding="utf-8") as output:
            output.write(INFERIOR)

        tracker = init_tracker("python")
        tracker.load_program(program)
        tracker.track_function("factorial")  # pause at every entry and exit
        tracker.watch("result")              # pause when `result` is assigned
        tracker.start()

        while tracker.get_exit_code() is None:
            tracker.resume()
            reason = tracker.pause_reason
            if reason.type is PauseReasonType.CALL:
                frame = tracker.get_current_frame()
                n = frame.variables["n"].value.content.content
                print(f"-> entered factorial(n={n}) at depth {frame.depth}")
            elif reason.type is PauseReasonType.RETURN:
                print(f"<- factorial returns {reason.return_value.render()}")
            elif reason.type is PauseReasonType.WATCH:
                print(f"** {reason.variable} changed to {reason.new_value}")

        print("inferior exited with code", tracker.get_exit_code())
        tracker.terminate()


if __name__ == "__main__":
    main()
