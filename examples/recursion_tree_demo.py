#!/usr/bin/env python3
"""Fig. 8: visualize the dynamic call tree of a recursive function.

Tracks ``merge_sort`` and draws the call tree as it grows: red nodes are
live calls, gray nodes have returned, blue back edges carry return values.
Each node shows the argument values at call time — even though ``arr`` is a
shared reference whose content changes during the run, the snapshot
semantics keep the call-time values.

Run: ``python examples/recursion_tree_demo.py [output_dir]``
"""

import os
import sys
import tempfile

from repro.tools.recursion_tree import record_call_tree

INFERIOR = """\
def merge_sort(arr):
    if len(arr) <= 1:
        return arr
    mid = len(arr) // 2
    left = merge_sort(arr[:mid])
    right = merge_sort(arr[mid:])
    merged = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged

data = [6, 2, 9, 4]
print(merge_sort(data))
"""


def main() -> None:
    output_dir = sys.argv[1] if len(sys.argv) >= 2 else "recursion_out"
    with tempfile.TemporaryDirectory() as workdir:
        program = os.path.join(workdir, "msort.py")
        with open(program, "w", encoding="utf-8") as output:
            output.write(INFERIOR)
        recording = record_call_tree(
            program, "merge_sort", ["arr"], output_dir=output_dir
        )
    root = recording.roots[0]
    print(f"recorded {recording.events} call/return events")
    print(f"root call: {root.label('merge_sort')} -> {root.retval}")
    print(f"wrote {len(recording.images)} snapshots to {output_dir}/ "
          "(open the last rec-*.svg to see the full tree)")


if __name__ == "__main__":
    main()
