#!/usr/bin/env python3
"""Fig. 9: the game for learning debugging, played end to end.

A mini-C level moves a character toward the exit, but the level contains a
bug (``check_key`` forgets to pick up the key), so the door stays closed.
The game controller runs the level under the GDB tracker and generates
hints live from inspecting the level's variables; after "the player edits
the source" (scripted here), the replay wins.

Run: ``python examples/debug_game_demo.py``
"""

import os
import tempfile

from repro.tools.debug_game import LEVEL1_FIXED, fix_and_replay, write_level


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        level = write_level(os.path.join(workdir, "level1.c"))
        before, after = fix_and_replay(level, LEVEL1_FIXED)

    print("=== first run (buggy level) ===")
    print(before.frames[-1])
    print(f"reached exit: {before.reached_exit}, door opened: {before.door_opened}")
    print("hints generated while the level ran:")
    for hint in before.hints:
        print(f"  * {hint}")

    print()
    print("=== after fixing check_key() ===")
    print(after.frames[-1])
    print(f"won: {after.won} (path: {after.path})")


if __name__ == "__main__":
    main()
