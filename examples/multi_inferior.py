#!/usr/bin/env python3
"""Simultaneous control of multiple inferiors (paper's future-work list).

Runs a Python producer and a mini-C consumer side by side, stepping them in
lockstep and printing a merged view — the shape of a client/server or
distributed-programming visualization. Each tracker is independent, so a
tool can hold as many as it needs.

Run: ``python examples/multi_inferior.py``
"""

import os
import tempfile

from repro.api import init_tracker

PRODUCER_PY = """\
queue = []
for item in range(3):
    queue.append(item * item)
total = sum(queue)
"""

CONSUMER_C = """\
int consumed = 0;

int take(int value) {
    return value + 1;
}

int main(void) {
    for (int i = 0; i < 3; i++) {
        consumed = consumed + take(i * i);
    }
    return 0;
}
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        producer_path = os.path.join(workdir, "producer.py")
        consumer_path = os.path.join(workdir, "consumer.c")
        with open(producer_path, "w", encoding="utf-8") as output:
            output.write(PRODUCER_PY)
        with open(consumer_path, "w", encoding="utf-8") as output:
            output.write(CONSUMER_C)

        producer = init_tracker("python")
        consumer = init_tracker("GDB")
        producer.load_program(producer_path)
        consumer.load_program(consumer_path)
        producer.start()
        consumer.start()

        step = 1
        while (
            producer.get_exit_code() is None
            or consumer.get_exit_code() is None
        ):
            producer_state = consumer_state = "(exited)"
            if producer.get_exit_code() is None:
                variable = producer.get_variable("queue")
                producer_state = (
                    f"line {producer.next_lineno:2d} queue="
                    f"{variable.value.render() if variable else '?'}"
                )
                producer.step()
            if consumer.get_exit_code() is None:
                variable = consumer.get_variable("consumed")
                consumer_state = (
                    f"line {consumer.next_lineno:2d} consumed="
                    f"{variable.value.render() if variable else '?'}"
                )
                consumer.step()
            print(f"step {step:2d} | python: {producer_state:30s} "
                  f"| mini-C: {consumer_state}")
            step += 1
            if step > 60:
                break

        producer.terminate()
        consumer.terminate()
        print("both inferiors done")


if __name__ == "__main__":
    main()
