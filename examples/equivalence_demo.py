#!/usr/bin/env python3
"""Program-equivalence testing via contextual traces (paper §V).

Checks whether a Python and a mini-C implementation of the same recursive
function are *behaviorally* equivalent: tracking the function in both
programs must produce the same sequence of (arguments, return value) pairs.
A buggy variant is detected with the exact first point of divergence.

Run: ``python examples/equivalence_demo.py``
"""

import os
import tempfile

from repro.tools.equivalence import check_equivalence

PY_GCD = """\
def gcd(a, b):
    if b == 0:
        return a
    return gcd(b, a % b)

result = gcd(252, 105)
done = 1
"""

C_GCD = """\
int gcd(int a, int b) {
    if (b == 0) {
        return a;
    }
    return gcd(b, a % b);
}

int main(void) {
    int result = gcd(252, 105);
    return 0;
}
"""

C_GCD_BUGGY = C_GCD.replace("gcd(b, a % b)", "gcd(b, a - b)")


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        py_path = os.path.join(workdir, "gcd.py")
        c_path = os.path.join(workdir, "gcd.c")
        bad_path = os.path.join(workdir, "gcd_buggy.c")
        for path, source in (
            (py_path, PY_GCD), (c_path, C_GCD), (bad_path, C_GCD_BUGGY)
        ):
            with open(path, "w", encoding="utf-8") as output:
                output.write(source)

        report = check_equivalence(py_path, c_path, "gcd",
                                   argument_names=["a", "b"])
        print(f"Python gcd vs mini-C gcd: {report.explain()}")

        report = check_equivalence(py_path, bad_path, "gcd",
                                   argument_names=["a", "b"])
        print(f"Python gcd vs buggy C variant: {report.explain()}")


if __name__ == "__main__":
    main()
