#!/usr/bin/env python3
"""Fig. 1: the loop-invariant array visualizer on insertion sort.

Generates one (source, array) image pair per executed line: index markers
``i`` and ``j`` point under their cells and the already-sorted prefix is
drawn darker — the invariant students should see.

Run: ``python examples/array_invariant_demo.py [output_dir]``
"""

import os
import sys
import tempfile

from repro.tools.array_invariant import ArrayInvariantTool

INFERIOR = """\
def insertion_sort(arr):
    for i in range(1, len(arr)):
        j = i
        while j > 0 and arr[j - 1] > arr[j]:
            arr[j - 1], arr[j] = arr[j], arr[j - 1]
            j -= 1
    return arr

data = [5, 2, 8, 1, 9, 3, 7, 4]
insertion_sort(data)
"""


def main() -> None:
    output_dir = sys.argv[1] if len(sys.argv) >= 2 else "invariant_out"
    with tempfile.TemporaryDirectory() as workdir:
        program = os.path.join(workdir, "isort.py")
        with open(program, "w", encoding="utf-8") as output:
            output.write(INFERIOR)
        tool = ArrayInvariantTool(
            program,
            array_name="arr",
            index_names=["i", "j"],
            sorted_upto="i",
            function="insertion_sort",
        )
        images = tool.run(output_dir)
    print(f"wrote {len(images)} array snapshots (plus source listings) "
          f"to {output_dir}/")
    print("open them in order to watch the sorted prefix grow")


if __name__ == "__main__":
    main()
